"""The shard coordinator: scatter store partitions, gather partials.

Three entry points, one per out-of-core execution path:

* :func:`scatter_gather_canvases` — the bounded path.  Survivors are
  split into contiguous grid-key shards; each forked shard streams its
  partitions through the *same* filter → project → scatter code the
  serial scan runs, into a private canvas; the parent merges canvases
  in shard order (additive kinds add, min/max reduce).
* :func:`scatter_gather_tiles` — the tiled path.  Tiles (not
  partitions) shard contiguously; each shard folds its tile range into
  a private :class:`~repro.core.aggregates.PartialAggregate` + mass
  vectors, and the parent merges region vectors in shard order.
* :func:`prescatter_blocks` — the pyramid path.  Blocks that neither
  the cache nor a 2x2 child reduction can serve are sharded across
  workers; each returns its freshly scattered planes (the block-cache
  *delta*) and the parent installs them, so the subsequent assembly
  finds every block hot.

**Equality discipline.**  Within a shard, partitions accumulate in
manifest order with unbuffered ufunc.at ops — the serial reference
fold, bit for bit.  Merging per-shard partials in shard order is
exact for COUNT (integer-valued partials), order-free for MIN/MAX,
and bitwise for SUM whenever the values are integer-valued; float SUM
and AVG reassociate within <= 1e-12, the same contract the in-memory
parallel scan documents.

Workers fork over the parent's mmap'd partitions (copy-on-write,
nothing pickled but the task tuples), and each shard runs a
:class:`~repro.shard.prefetch.PartitionPrefetcher` so the kernel pages
in partition *i+1* while partition *i* scatters.  Without ``fork``
support every entry point degrades to an in-process loop over the
identical shard code path — same answers, no processes.
"""

from __future__ import annotations

import os
import time

import numpy as np

from ..core.aggregates import BOUNDABLE_AGGREGATES, COUNT, PartialAggregate
from ..core.parallel import _even_ranges, _fork_map
from ..core.tiling import fold_tile_join
from ..errors import QueryCancelled
from ..obs.trace import graft, span
from .prefetch import PartitionPrefetcher


def _scan_helpers():
    """The serial scan's primitives (imported lazily: ``repro.store``
    imports this module, so a top-level import would be circular)."""
    from ..store.execute import (
        _accumulate,
        _empty_canvases,
        _project_partition,
    )
    return _accumulate, _empty_canvases, _project_partition


# -- shard assignment --------------------------------------------------------


def assign_shards(dataset, survivors, n_shards: int) -> list[list[int]]:
    """Split surviving manifest indices into contiguous grid-key shards.

    The writer lays partitions out sorted by grid key, so survivors
    (manifest order) group into runs of equal spatial cell; a cell's
    partitions are never split across shards — a shard owns whole
    cells, which keeps its page touches spatially local.  Cells are
    packed into ``n_shards`` contiguous chunks balanced by row count
    (a cell is assigned by its row-midpoint, so assignment is
    monotonic and shards stay contiguous in manifest order).  Shards
    may come back empty when fewer cells survive than shards asked
    for — callers must treat an empty shard as an identity merge.
    """
    n_shards = max(1, int(n_shards))
    if not survivors:
        return [[] for _ in range(n_shards)]
    infos = dataset.partitions
    groups: list[tuple[list[int], int]] = []
    last_cell = object()
    for index in survivors:
        info = infos[index]
        cell = info.key[0] if info.key else None
        if groups and cell == last_cell:
            groups[-1][0].append(index)
            groups[-1] = (groups[-1][0], groups[-1][1] + info.rows)
        else:
            groups.append(([index], info.rows))
        last_cell = cell
    total = sum(rows for _, rows in groups)
    shards: list[list[int]] = [[] for _ in range(n_shards)]
    if total == 0:
        for (lo, hi), shard in zip(_even_ranges(len(groups), n_shards),
                                   shards):
            for indices, _ in groups[lo:hi]:
                shard.extend(indices)
        return shards
    cum = 0
    for indices, rows in groups:
        mid = cum + rows / 2.0
        slot = min(n_shards - 1, int(mid * n_shards / total))
        shards[slot].extend(indices)
        cum += rows
    return shards


def merge_canvases(dst: dict, src: dict, kinds) -> None:
    """Merge one shard's canvases into the accumulator (in shard
    order): additive kinds add, min/max reduce elementwise."""
    for kind in kinds:
        if kind == "min":
            np.minimum(dst[kind], src[kind], out=dst[kind])
        elif kind == "max":
            np.maximum(dst[kind], src[kind], out=dst[kind])
        else:
            dst[kind] += src[kind]


def _shard_summary(shards, per_shard, pooled, depth) -> dict:
    issued = sum(s["prefetch"]["issued"] for s in per_shard)
    advised = sum(s["prefetch"]["advised"] for s in per_shard)
    return {
        "count": len(shards),
        "pooled": pooled,
        "prefetch_depth": depth,
        "prefetch_issued": issued,
        "prefetch_hit_fraction": (advised / issued) if issued else 0.0,
        "per_shard": per_shard,
    }


# -- bounded path ------------------------------------------------------------


def scatter_gather_canvases(dataset, survivors, query, viewport, kinds,
                            decision, cancel
                            ) -> tuple[dict, dict, bool]:
    """Sharded bounded scan: per-shard canvases merged in shard order.

    Returns ``(canvases, stats, pooled)`` shaped like the serial scan's
    output plus ``stats["shards"]`` (per-shard timings and prefetch
    counters).
    """
    _accumulate, _empty_canvases, _project_partition = _scan_helpers()
    shards = assign_shards(dataset, survivors, decision["shards"])
    depth = int(decision.get("prefetch_depth", 1))
    infos = dataset.partitions
    parent_pid = os.getpid()

    def run_shard(shard_id: int, indices: list[int]):
        if os.getpid() != parent_pid:
            dataset._after_fork()
        t0 = time.perf_counter()
        # Fork children inherit the live trace context copy-on-write, so
        # this span nests under the parent's scan span — but its appends
        # land in the child's memory.  The subtree rides home serialized
        # in the merge payload and the parent grafts it (pooled runs
        # only; in-process it attached to the live tree directly).
        with span("shard.scan", shard=shard_id) as sp:
            prefetcher = PartitionPrefetcher(dataset, indices, depth)
            canvases = _empty_canvases(kinds, viewport.num_pixels)
            after_filter = in_viewport = rows = 0
            for pos, index in enumerate(indices):
                if cancel is not None and cancel.is_set():
                    raise QueryCancelled(
                        "sharded scan cancelled between partitions")
                prefetcher.advance(pos)
                table = dataset.partition_table(index)
                pixel_ids, values, n_filter = _project_partition(
                    table, query, viewport)
                after_filter += n_filter
                in_viewport += len(pixel_ids)
                rows += infos[index].rows
                _accumulate(canvases, pixel_ids, values)
        sp.set(partitions=len(indices), rows=rows, pid=os.getpid())
        return canvases, {
            "shard": shard_id, "partitions": len(indices), "rows": rows,
            "points_after_filter": after_filter,
            "points_in_viewport": in_viewport,
            "time_s": time.perf_counter() - t0,
            "prefetch": prefetcher.stats(),
            "trace": sp.to_dict(),
        }

    tasks = [(i, indices) for i, indices in enumerate(shards)]
    # The parent-side map span covers pool setup + the blocking wait,
    # so the fork/dispatch cost the child spans cannot see still lands
    # in the trace as a leaf.
    with span("shard.map", shards=len(tasks)):
        results, pooled = _fork_map(run_shard, tasks, len(tasks))

    merged = _empty_canvases(kinds, viewport.num_pixels)
    per_shard = []
    after_filter = in_viewport = 0
    for canvases, shard_stats in results:
        # The child-process span subtree: graft it under the live span
        # for pooled runs; in-process it already attached (grafting
        # would double-count), and either way the payload stays out of
        # the response stats.
        payload = shard_stats.pop("trace", None)
        if pooled:
            graft(payload)
        merge_canvases(merged, canvases, kinds)
        after_filter += shard_stats["points_after_filter"]
        in_viewport += shard_stats["points_in_viewport"]
        per_shard.append(shard_stats)
    stats = {
        "points_after_filter": after_filter,
        "points_in_viewport": in_viewport,
        "shards": _shard_summary(shards, per_shard, pooled, depth),
    }
    return merged, stats, pooled


# -- tiled path --------------------------------------------------------------


def scatter_gather_tiles(dataset, survivors, query, regions, viewport,
                         tiles, kinds, decision, cancel):
    """Sharded tiled scan: contiguous tile ranges per shard, region
    vectors merged in shard order.

    Each shard owns a contiguous slice of the tile list; within its
    slice it runs exactly the serial per-tile loop (bbox-pruned
    partition stream, manifest order, unbuffered accumulation) and
    folds into a private :class:`PartialAggregate` + mass vectors.
    The parent merges partials shard-by-shard — additive for
    counts/sums/mass, reduce for min/max — the same association the
    sharded bounded scan uses.

    Returns ``(part, mass_in, mass_out, stats, pooled)``.
    """
    _accumulate, _empty_canvases, _project_partition = _scan_helpers()
    agg = query.agg
    geometries = list(regions.geometries)
    geom_boxes = [g.bbox for g in geometries]
    infos = dataset.partitions
    n_shards = min(int(decision["shards"]), max(1, len(tiles)))
    ranges = _even_ranges(len(tiles), n_shards)
    depth = int(decision.get("prefetch_depth", 1))
    parent_pid = os.getpid()

    def run_shard(shard_id: int, lo: int, hi: int):
        if os.getpid() != parent_pid:
            dataset._after_fork()
        t0 = time.perf_counter()
        # See scatter_gather_canvases.run_shard: the span subtree rides
        # home serialized in the merge payload for pooled runs.
        with span("shard.scan", shard=shard_id, tiles=hi - lo) as sp:
            part = PartialAggregate.empty(agg, len(regions))
            mass_in = np.zeros(len(regions))
            mass_out = np.zeros(len(regions))
            paged = 0
            prefetch = {"depth": depth, "issued": 0, "advised": 0}
            for tile_vp, col0, row0 in tiles[lo:hi]:
                if cancel is not None and cancel.is_set():
                    raise QueryCancelled(
                        "sharded tiled scan cancelled between tiles")
                local_ids = [gid for gid, gb in enumerate(geom_boxes)
                             if gb.intersects(tile_vp.bbox)]
                if not local_ids:
                    continue
                touching = [
                    index for index in survivors
                    if infos[index].bbox is None
                    or infos[index].bbox.intersects(tile_vp.bbox)]
                prefetcher = PartitionPrefetcher(dataset, touching, depth)
                canvases = _empty_canvases(kinds, tile_vp.num_pixels)
                for pos, index in enumerate(touching):
                    prefetcher.advance(pos)
                    paged += 1
                    table = dataset.partition_table(index)
                    mask = query.filter_mask(table)
                    values = query.values_for(table)
                    x = table.x[mask]
                    y = table.y[mask]
                    if values is not None:
                        values = values[mask]
                    ix, iy = viewport.pixel_of(x, y)
                    sel = ((ix >= col0) & (ix < col0 + tile_vp.width)
                           & (iy >= row0) & (iy < row0 + tile_vp.height))
                    local_pix = ((iy[sel] - row0) * tile_vp.width
                                 + (ix[sel] - col0))
                    local_vals = (values[sel] if values is not None
                                  else None)
                    _accumulate(canvases, local_pix, local_vals)
                pstats = prefetcher.stats()
                prefetch["issued"] += pstats["issued"]
                prefetch["advised"] += pstats["advised"]
                mass = None
                if agg in BOUNDABLE_AGGREGATES:
                    mass = (canvases["count"] if agg == COUNT
                            else canvases["mass"])
                fold_tile_join(geometries, local_ids, query, tile_vp,
                               canvases, mass, part, mass_in, mass_out)
        sp.set(partitions_paged=paged, pid=os.getpid())
        return part, mass_in, mass_out, {
            "shard": shard_id, "tiles": hi - lo,
            "partitions_paged": paged,
            "time_s": time.perf_counter() - t0,
            "prefetch": prefetch,
            "trace": sp.to_dict(),
        }

    tasks = [(i, lo, hi) for i, (lo, hi) in enumerate(ranges)]
    with span("shard.map", shards=len(tasks)):
        results, pooled = _fork_map(run_shard, tasks, len(tasks))

    part = PartialAggregate.empty(agg, len(regions))
    mass_in = np.zeros(len(regions))
    mass_out = np.zeros(len(regions))
    per_shard = []
    paged = 0
    for shard_part, shard_in, shard_out, shard_stats in results:
        payload = shard_stats.pop("trace", None)
        if pooled:
            graft(payload)
        part.merge(shard_part)
        mass_in += shard_in
        mass_out += shard_out
        paged += shard_stats["partitions_paged"]
        per_shard.append(shard_stats)
    stats = {
        "partitions_paged": paged,
        "shards": _shard_summary([r for r in ranges], per_shard, pooled,
                                 depth),
    }
    return part, mass_in, mass_out, stats, pooled


# -- pyramid path ------------------------------------------------------------


def _blocks_needing_scatter(ctx, table, query, viewport,
                            derive_sums: bool) -> list[tuple]:
    """Peek-only probe: the blocks assembly would have to scatter.

    Mirrors :func:`~repro.core.pyramid.assemble_canvases`'s preference
    order without touching LRU state or counters — a block is listed
    only when its missing kinds can be served neither from the cache
    nor by a 2x2 reduction of four cached children.
    """
    from ..core.pyramid import (
        _ALWAYS_DERIVABLE,
        block_key,
        canvas_kinds,
        grid_block_tiles,
    )
    from ..core.cache import fingerprint

    grid = viewport.grid
    level = viewport.level
    kinds = canvas_kinds(query.agg)
    table_fp = fingerprint(table)
    cache = ctx.cache

    def key(kind, lvl, bx, by):
        return block_key(table_fp, query, kind, grid, lvl, bx, by)

    needs = []
    for bx, by, _view_sl, _block_sl in grid_block_tiles(viewport):
        missing = tuple(k for k in kinds
                        if cache.peek(key(k, level, bx, by)) is None)
        if not missing:
            continue
        if level > 0 and all(k in _ALWAYS_DERIVABLE or derive_sums
                             for k in missing):
            if all(cache.peek(key(k, level - 1, 2 * bx + rx,
                                  2 * by + ry)) is not None
                   for k in missing for ry in (0, 1) for rx in (0, 1)):
                continue  # assembly will derive it; nothing to scatter
        needs.append((bx, by, missing))
    return needs


def prescatter_blocks(ctx, dataset, table, query, viewport, scatter,
                      scanned, decision, cancel) -> dict | None:
    """Scatter uncovered pyramid blocks across shards, install deltas.

    Forked shards each scatter a contiguous slice of the
    missing-block list and hand the parent their fresh planes — the
    block-cache *delta* — which the parent installs under the same
    keys the serial scatter would have used, so the following
    :func:`~repro.core.pyramid.assemble_canvases` pass finds them hot.
    Each plane is produced by the same ``scatter`` closure the serial
    path runs, so the installed blocks are bitwise-identical.

    ``scanned`` is the scatter closure's accounting dict; the shards'
    local copies (fork children start from the parent's pristine
    state) merge back so ``points_after_filter`` stays truthful.
    Returns the ``stats["shards"]`` payload, or ``None`` when there
    was nothing to scatter.
    """
    needs = _blocks_needing_scatter(ctx, table, query, viewport,
                                    derive_sums=False)
    if not needs:
        return None
    from ..core.pyramid import block_key, fingerprint
    n_shards = min(int(decision["shards"]), len(needs))
    ranges = _even_ranges(len(needs), n_shards)
    parent_pid = os.getpid()

    def run_shard(shard_id: int, lo: int, hi: int):
        if os.getpid() != parent_pid:
            dataset._after_fork()
        t0 = time.perf_counter()
        # See scatter_gather_canvases.run_shard: the span subtree rides
        # home serialized in the merge payload for pooled runs.
        with span("shard.prescatter", shard=shard_id,
                  blocks=hi - lo) as sp:
            base_partitions = scanned["partitions"]
            out = []
            for bx, by, missing in needs[lo:hi]:
                if cancel is not None and cancel.is_set():
                    raise QueryCancelled(
                        "sharded block scatter cancelled between blocks")
                planes, points = scatter(bx, by, missing)
                out.append((bx, by, planes, points))
            # Delta relative to entry: in a fork child this is the
            # shard's own contribution (the parent's dict is
            # untouched); in the in-process fallback the shared closure
            # already accumulated it, and the parent must not add it
            # again.
            delta = scanned["partitions"] - base_partitions
        sp.set(pid=os.getpid())
        return out, dict(scanned["after_filter"]), delta, {
            "shard": shard_id, "blocks": hi - lo,
            "time_s": time.perf_counter() - t0,
            "prefetch": {"depth": 0, "issued": 0, "advised": 0},
            "trace": sp.to_dict(),
        }

    tasks = [(i, lo, hi) for i, (lo, hi) in enumerate(ranges)]
    with span("shard.map", shards=len(tasks)):
        results, pooled = _fork_map(run_shard, tasks, len(tasks))

    grid = viewport.grid
    level = viewport.level
    table_fp = fingerprint(table)
    per_shard = []
    blocks_installed = 0
    for out, after_filter, partitions, shard_stats in results:
        payload = shard_stats.pop("trace", None)
        if pooled:
            graft(payload)
        for bx, by, planes, _points in out:
            for kind, plane in planes.items():
                ctx.cache.put(
                    block_key(table_fp, query, kind, grid, level, bx, by),
                    plane)
            blocks_installed += 1
        if pooled:
            # A partition scanned by several shards records the same
            # surviving-row count in each — dict-merge keeps it once.
            scanned["after_filter"].update(after_filter)
            scanned["partitions"] += partitions
        per_shard.append(shard_stats)
    summary = _shard_summary(ranges, per_shard, pooled,
                             int(decision.get("prefetch_depth", 1)))
    summary["blocks_prescattered"] = blocks_installed
    return summary
