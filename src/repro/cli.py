"""Command-line interface.

Six subcommands cover the workflow around the library:

* ``generate`` — synthesize the demo city's data sets and region
  hierarchies into files (``.npz`` tables + ``.geojson`` regions);
* ``query``    — run a query in the paper's SQL dialect against those
  files — or, with ``--url``, against a running query server — and
  print (or CSV-export) the per-region results;
* ``compare``  — run one query through several backends and report
  latencies and agreement;
* ``session``  — replay a scripted interactive session and print the
  per-gesture latency log;
* ``serve``    — host data sets behind the concurrent query service
  (admission control, coalescing, progressive streaming); serves
  in-memory tables, out-of-core stores (``--store``), or a whole
  ``datasets.json`` manifest of lazily-mounted stores;
* ``store``    — build, inspect, and query out-of-core dataset stores
  (``store build`` / ``store inspect`` / ``store query``).

Run ``python -m repro <subcommand> --help`` for the options.
"""

from __future__ import annotations

import argparse
import csv
import sys
import time
from pathlib import Path

from .core import (
    METHODS,
    ParallelConfig,
    RegionSet,
    SpatialAggregation,
    SpatialAggregationEngine,
    parse_query,
)
from .errors import ExecutionError, ReproError
from .geometry import read_geojson, write_geojson
from .table import load_npz, save_npz


def _load_regions(path: Path, name: str | None = None) -> RegionSet:
    geometries, props = read_geojson(path)
    names = [p.get("name", f"region-{i}") for i, p in enumerate(props)]
    return RegionSet(name or path.stem, geometries, names)


# -- generate -----------------------------------------------------------------


def _cmd_generate(args) -> int:
    from .data import load_demo_workload

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    workload = load_demo_workload(
        seed=args.seed, taxi_rows=args.taxi_rows,
        complaint_rows=args.complaint_rows, crime_rows=args.crime_rows,
        months=args.months)
    for name, table in workload.datasets.items():
        path = out_dir / f"{name}.npz"
        save_npz(table, path)
        print(f"wrote {path}  ({len(table):,} rows)")
    for name, regions in workload.regions.items():
        path = out_dir / f"{name}.geojson"
        props = [{"name": n} for n in regions.region_names]
        write_geojson(path, list(regions.geometries), props)
        print(f"wrote {path}  ({len(regions)} regions)")
    return 0


# -- query --------------------------------------------------------------------


def _remote_query(args) -> int:
    """``repro query --url``: run the SQL against a query server."""
    from .serve import ServeClient

    client = ServeClient(args.url)
    t0 = time.perf_counter()
    result = client.query(None, None, sql=args.sql,
                          method=args.method,
                          deadline_ms=args.deadline_ms,
                          trace=bool(args.trace))
    elapsed = time.perf_counter() - t0
    print(f"-- remote {args.url}")
    print(f"-- method={result.method} regions={len(result.region_names)} "
          f"latency={elapsed * 1000:.1f}ms (network included)")
    if args.trace:
        from .obs import render

        trace_ref = result.stats.get("trace") or {}
        request_id = trace_ref.get("request_id")
        if request_id:
            payload = client.trace(request_id)
            print(f"-- trace {request_id}:")
            print(render(payload["trace"]))
    plan = result.stats.get("plan") or {}
    degraded = plan.get("degraded")
    if degraded and degraded.get("applied"):
        steps = ", ".join(s["step"] for s in degraded["steps"])
        print(f"-- degraded: {steps}")
    order = sorted(range(len(result.region_names)),
                   key=lambda i: -result.values[i])[:args.top]
    width = max((len(result.region_names[i]) for i in order), default=10)
    for i in order:
        print(f"{result.region_names[i]:<{width}}  "
              f"{float(result.values[i]):,.3f}")
    return 0


def _cmd_query(args) -> int:
    if args.url:
        return _remote_query(args)
    if not args.data or not args.regions:
        raise ReproError("--data and --regions are required "
                         "(or pass --url for a remote server)")
    parsed = parse_query(args.sql)
    table = load_npz(Path(args.data))
    regions = _load_regions(Path(args.regions), name=parsed.regions)
    engine = SpatialAggregationEngine(
        default_resolution=args.resolution,
        max_canvas_resolution=max(args.resolution, 4096),
        workers=args.workers,
        kernel=args.kernel)

    trace_root = None
    t0 = time.perf_counter()
    if args.trace:
        from .obs import Tracer

        # Entering the root span makes it the current context span, so
        # engine spans nest under it on this (the only) thread.
        trace_root = Tracer().start("query", sql=args.sql)
        with trace_root:
            result = engine.execute(table, regions, parsed.aggregation,
                                    method=args.method)
    else:
        result = engine.execute(table, regions, parsed.aggregation,
                                method=args.method)
    elapsed = time.perf_counter() - t0

    print(f"-- {parsed.describe()}")
    print(f"-- method={result.method} rows={len(table):,} "
          f"regions={len(regions)} latency={elapsed * 1000:.1f}ms")
    plan = result.stats.get("plan", {})
    decision = plan.get("decision") or {}
    if decision.get("planned"):
        inputs = plan.get("inputs") or {}
        print(f"-- plan: chosen={decision['chosen']} "
              f"(points={inputs.get('n_points'):,}, "
              f"regions={inputs.get('n_regions')}, "
              f"epsilon={inputs.get('epsilon')}, "
              f"exact={inputs.get('exact')})")
    degraded = plan.get("degraded")
    if degraded and degraded.get("applied"):
        steps = ", ".join(s["step"] for s in degraded["steps"])
        print(f"-- degraded: {steps} "
              f"(deadline={degraded['deadline_ms']:.0f}ms, "
              f"predicted={degraded['predicted_ms']:.1f}ms)")
    par = result.stats.get("parallel", {})
    if par:
        if par.get("mode") == "parallel":
            print(f"-- parallel: {par.get('workers')} workers")
        else:
            print(f"-- parallel: serial ({par.get('reason', 'n/a')})")
    kern = plan.get("kernel") or {}
    if kern:
        print(f"-- kernel: {kern.get('selected')} "
              f"(requested={kern.get('requested')}, "
              f"numba_available={kern.get('numba_available')})")
    acc = result.stats.get("accurate")
    if acc:
        print(f"-- accurate: {acc.get('full_pixels'):,} full / "
              f"{acc.get('partial_pixels'):,} partial px "
              f"({acc.get('partial_runs'):,} runs); "
              f"pip tested={acc.get('pip_points_tested'):,}, "
              f"skipped={acc.get('pip_points_skipped'):,}")
    cache = result.stats.get("cache", {})
    if cache:
        print(f"-- cache: {cache.get('query_hits', 0)} hits / "
              f"{cache.get('query_misses', 0)} misses this query, "
              f"{cache.get('entries', 0)} entries, "
              f"{cache.get('bytes', 0):,} bytes resident")
        blocks = cache.get("blocks", {})
        if blocks.get("hits", 0) or blocks.get("misses", 0) \
                or blocks.get("derived", 0):
            print(f"-- blocks: {blocks.get('hits', 0)} reused / "
                  f"{blocks.get('derived', 0)} derived / "
                  f"{blocks.get('misses', 0)} scattered, "
                  f"{blocks.get('reuse_fraction', 0.0) * 100:.0f}% of "
                  f"pixels assembled from cache")
    if trace_root is not None:
        from .obs import render

        print("-- trace:")
        print(render(trace_root))
    if args.csv:
        with open(args.csv, "w", newline="") as handle:
            writer = csv.writer(handle)
            header = ["region", "value"]
            if result.has_bounds:
                header += ["lower", "upper"]
            writer.writerow(header)
            for i, name in enumerate(regions.region_names):
                row = [name, repr(float(result.values[i]))]
                if result.has_bounds:
                    row += [repr(float(result.lower[i])),
                            repr(float(result.upper[i]))]
                writer.writerow(row)
        print(f"wrote {args.csv}")
    else:
        shown = result.top_k(args.top)
        width = max((len(n) for n, __ in shown), default=10)
        for name, value in shown:
            print(f"{name:<{width}}  {value:,.3f}")
    return 0


# -- compare --------------------------------------------------------------------


def _cmd_compare(args) -> int:
    parsed = parse_query(args.sql)
    table = load_npz(Path(args.data))
    regions = _load_regions(Path(args.regions), name=parsed.regions)
    engine = SpatialAggregationEngine(default_resolution=args.resolution,
                                      workers=args.workers,
                                      kernel=args.kernel)
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]

    results = {}
    print(f"-- {parsed.describe()}")
    print(f"{'method':<12} {'latency':>10}  note")
    for method in methods:
        try:
            engine.execute(table, regions, parsed.aggregation,
                           method=method)
            t0 = time.perf_counter()
            result = engine.execute(table, regions, parsed.aggregation,
                                    method=method)
            elapsed = time.perf_counter() - t0
        except ExecutionError as exc:
            # e.g. the cube cannot answer an unanticipated query — a
            # comparison data point in itself, not a failed run.
            print(f"{method:<12} {'n/a':>10}  cannot answer: {exc}")
            continue
        results[method] = result
        note = "exact" if result.exact else (
            f"bounds +/- {result.max_bound_width() / 2:.1f}"
            if result.has_bounds else "approximate")
        print(f"{method:<12} {elapsed * 1000:>8.1f}ms  {note}")

    exact = next((r for r in results.values() if r.exact), None)
    if exact is not None:
        for method, result in results.items():
            if result is exact or result.exact:
                continue
            err = result.compare_to(exact)["max_rel_error"]
            contained = (result.bounds_contain(exact)
                         if result.has_bounds else "n/a")
            print(f"-- {method}: max rel error "
                  f"{err * 100:.3f}% vs exact; bounds contain exact: "
                  f"{contained}")
    return 0


# -- session --------------------------------------------------------------------


def _cmd_session(args) -> int:
    from .urbane import DataManager, InteractiveSession

    table = load_npz(Path(args.data))
    regions = _load_regions(Path(args.regions))
    manager = DataManager(SpatialAggregationEngine(
        default_resolution=args.resolution, workers=args.workers))
    manager.add_dataset(table, "data")
    manager.add_region_set(regions, "regions")

    session = InteractiveSession(manager, "data", "regions",
                                 method=args.method,
                                 resolution=args.resolution,
                                 tcube=args.tcube)
    tvals = (table.values("t") if table.has_column("t") else None)
    if tvals is not None and len(tvals):
        t0, t1 = int(tvals.min()), int(tvals.max()) + 1
        third = max((t1 - t0) // 3, 1)
        if third > 86400:
            # Snap brush edges to the day, as Urbane's timeline widget
            # does — aligned gestures are what the temporal cube serves.
            third = third // 86400 * 86400
            t0 = t0 // 86400 * 86400
        session.brush_time(t0, t0 + third)
        session.brush_time(t0 + third, t0 + 2 * third)
        session.clear_time_brush()
    numeric = [c for c in table.column_names
               if table.column(c).kind == "numeric"]
    if numeric:
        session.set_aggregation(SpatialAggregation.avg_of(numeric[0]))
        session.set_aggregation(SpatialAggregation.count())
    # Map gestures: a short pan/zoom ladder over the canvas pyramid.
    # The first pan scatters blocks; every later gesture assembles
    # mostly (or entirely) from the cache.
    session.pan(0, 0)
    step = max(1, args.resolution // 8)
    session.pan(step, 0)
    session.pan(0, -step)
    session.zoom(2.0)
    session.zoom(0.5)
    session.pan(-step, step)
    print(session.report())
    cache = manager.cache_stats()
    print(f"-- engine cache: {cache['hits']} hits, {cache['misses']} "
          f"misses, {cache['evictions']} evictions, "
          f"{cache['bytes']:,} bytes resident")
    blocks = cache.get("blocks", {})
    print(f"-- block reuse: {blocks.get('hits', 0)} reused, "
          f"{blocks.get('derived', 0)} derived, "
          f"{blocks.get('misses', 0)} scattered "
          f"({blocks.get('reuse_fraction', 0.0) * 100:.0f}% of pixels "
          f"assembled)")
    return 0


# -- serve --------------------------------------------------------------------


def _parse_named(spec: str, default_name: str | None = None
                 ) -> tuple[str, Path]:
    """``name=path`` or bare ``path`` (name defaults to the file stem)."""
    if "=" in spec:
        name, _, path = spec.partition("=")
        return name, Path(path)
    path = Path(spec)
    return default_name or path.stem, path


def _cmd_serve(args) -> int:
    import asyncio

    from .serve import QueryServer, QueryService
    from .urbane import DataManager

    manager = DataManager(SpatialAggregationEngine(
        default_resolution=args.resolution, workers=args.workers,
        parallel=ParallelConfig(prefetch_depth=args.prefetch_depth),
        kernel=args.kernel))
    budget = (None if args.store_budget_mb is None
              else int(args.store_budget_mb * 1024 * 1024))
    for spec in args.data or ():
        name, path = _parse_named(spec)
        table = load_npz(path)
        manager.add_dataset(table, name)
        print(f"dataset {name!r}: {len(table):,} rows from {path}")
    for spec in args.store or ():
        name, path = _parse_named(spec)
        manager.add_store(path, name=name, memory_budget_bytes=budget)
        print(f"store {name!r}: lazy mount of {path}")
    for spec in args.regions or ():
        name, path = _parse_named(spec)
        regions = _load_regions(path, name=name)
        manager.add_region_set(regions, name)
        print(f"regions {name!r}: {len(regions)} regions from {path}")
    if args.datasets_json:
        from .serve import mount_datasets

        for line in mount_datasets(manager, args.datasets_json):
            print(line)
    if not manager.dataset_names or not manager.region_set_names:
        raise ReproError(
            "nothing to serve: give --data/--store and --regions "
            "(or a --datasets-json manifest providing them)")

    service = QueryService(
        manager, max_concurrency=args.max_concurrency,
        max_queue=args.max_queue,
        default_deadline_ms=args.deadline_ms,
        shards=args.shards,
        speculate=args.speculate,
        speculate_budget_ms=args.speculate_budget_ms,
        slow_query_ms=args.slow_query_ms,
        model_dir=args.model_dir)
    server = QueryServer(service, host=args.host, port=args.port)

    async def run() -> None:
        await server.start()
        spec = (f"speculate={args.speculate_budget_ms:g}ms"
                if args.speculate else "speculate=off")
        print(f"serving on {server.url}  "
              f"(concurrency={args.max_concurrency}, "
              f"queue={args.max_queue}, shards={service.workers.shards}, "
              f"{spec})")
        await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        # Persists the gesture model (--model-dir) and stops the
        # speculator/worker pool.
        service.close()
    return 0


# -- store --------------------------------------------------------------------


def _cmd_store_build(args) -> int:
    from .store import DatasetWriter, build_store_from_csv

    t0 = time.perf_counter()
    kwargs = dict(partition_rows=args.partition_rows, grid=args.grid,
                  time_column=args.time_column,
                  time_bucket_seconds=args.time_bucket_seconds,
                  name=args.name)
    if args.csv:
        dataset = build_store_from_csv(Path(args.csv), Path(args.out),
                                       chunk_rows=args.chunk_rows,
                                       **kwargs)
    else:
        table = load_npz(Path(args.data))
        with DatasetWriter(Path(args.out), **kwargs) as writer:
            writer.write_table(table)
        from .store import Dataset

        dataset = Dataset.open(Path(args.out))
    elapsed = time.perf_counter() - t0
    rate = len(dataset) / elapsed if elapsed > 0 else float("inf")
    print(f"built {dataset.describe()}")
    print(f"  {dataset.total_nbytes:,} column bytes in "
          f"{dataset.num_partitions} partitions; "
          f"{elapsed:.2f}s ({rate:,.0f} rows/s)")
    return 0


def _cmd_store_inspect(args) -> int:
    from .store import Dataset

    dataset = Dataset.open(Path(args.path))
    manifest = dataset.manifest
    print(dataset.describe())
    print(f"  partition_rows={manifest.partition_rows} "
          f"grid={manifest.grid_nx}x{manifest.grid_ny} "
          f"time_column={manifest.time_column!r} "
          f"bucket_s={manifest.time_bucket_seconds}")
    print(f"  {dataset.total_nbytes:,} column bytes on disk")
    if args.partitions:
        for info in manifest.partitions:
            bbox = ("none" if info.bbox is None else
                    f"({info.bbox.xmin:.4g},{info.bbox.ymin:.4g})-"
                    f"({info.bbox.xmax:.4g},{info.bbox.ymax:.4g})")
            print(f"  {info.directory}: rows={info.rows:,} "
                  f"key={info.key} bbox={bbox} bytes={info.nbytes:,}")
    return 0


def _cmd_store_query(args) -> int:
    from .store import Dataset

    parsed = parse_query(args.sql)
    budget = (None if args.budget_mb is None
              else int(args.budget_mb * 1024 * 1024))
    dataset = Dataset.open(Path(args.path), memory_budget_bytes=budget)
    regions = _load_regions(Path(args.regions), name=parsed.regions)
    engine = SpatialAggregationEngine(
        default_resolution=args.resolution,
        max_canvas_resolution=max(args.resolution, 4096),
        parallel=ParallelConfig(shards=args.shards,
                                prefetch_depth=args.prefetch_depth),
        kernel=args.kernel)

    t0 = time.perf_counter()
    result = engine.execute(dataset, regions, parsed.aggregation,
                            method=args.method)
    elapsed = time.perf_counter() - t0

    store = result.stats["store"]
    parts = store["partitions"]
    print(f"-- {parsed.describe()}")
    print(f"-- method={result.method} rows={len(dataset):,} "
          f"regions={len(regions)} latency={elapsed * 1000:.1f}ms")
    print(f"-- partitions: {parts['scanned']}/{parts['total']} scanned "
          f"({parts['pruned']} pruned: "
          f"{store['pruned_by']['viewport']} viewport, "
          f"{store['pruned_by']['filter']} filter, "
          f"{store['pruned_by']['empty']} empty); "
          f"{store['rows']['scanned']:,} rows, "
          f"{store['bytes_scanned']:,} bytes")
    mounted = store["mounted"]
    print(f"-- mounts: {mounted['mounts']} mapped "
          f"({mounted['hits']} hits, {mounted['evictions']} evictions, "
          f"{mounted['mapped_bytes']:,} bytes resident)")
    shards = result.stats.get("shards")
    if shards:
        times = ", ".join(f"{s['time_s'] * 1000:.0f}ms"
                          for s in shards["per_shard"])
        mode = "forked" if shards["pooled"] else "in-process"
        print(f"-- shards: {shards['count']} {mode}, prefetch depth "
              f"{shards['prefetch_depth']} "
              f"(hit {shards['prefetch_hit_fraction'] * 100:.0f}%), "
              f"per-shard [{times}]")
    else:
        decision = (result.stats.get("plan") or {}).get("shards") or {}
        if not decision.get("use", True):
            print(f"-- shards: serial "
                  f"({decision.get('reason', 'n/a')})")
    shown = result.top_k(args.top)
    width = max((len(n) for n, __ in shown), default=10)
    for name, value in shown:
        print(f"{name:<{width}}  {value:,.3f}")
    return 0


# -- entry point ------------------------------------------------------------------


def _add_kernel_arg(parser) -> None:
    parser.add_argument("--kernel", default="auto",
                        choices=("auto", "numpy", "numba"),
                        help="scatter/gather kernel implementation "
                             "('auto' uses numba when installed, NumPy "
                             "otherwise; results are identical)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Urbane / Raster Join reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesize demo data to files")
    gen.add_argument("--out-dir", default="demo-data")
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--taxi-rows", type=int, default=500_000)
    gen.add_argument("--complaint-rows", type=int, default=120_000)
    gen.add_argument("--crime-rows", type=int, default=80_000)
    gen.add_argument("--months", type=int, default=3)
    gen.set_defaults(func=_cmd_generate)

    qry = sub.add_parser("query",
                         help="run a SQL query against files or a server")
    qry.add_argument("sql", help="query in the paper's SQL dialect")
    qry.add_argument("--data", help="point table .npz")
    qry.add_argument("--regions", help="regions .geojson")
    qry.add_argument("--url", default=None,
                     help="query a running 'repro serve' endpoint instead "
                          "of local files (FROM clause names the served "
                          "dataset and region set)")
    qry.add_argument("--deadline-ms", type=float, default=None,
                     help="per-query latency budget; the planner degrades "
                          "precision to honor it")
    qry.add_argument("--method", default="auto", choices=METHODS,
                     help="execution backend; 'auto' runs the cost-based "
                          "planner (default)")
    qry.add_argument("--resolution", type=int, default=512)
    qry.add_argument("--workers", type=int, default=None,
                     help="worker processes for large inputs "
                          "(default: all cores; small inputs always "
                          "run serial)")
    _add_kernel_arg(qry)
    qry.add_argument("--trace", action="store_true",
                     help="record and print a hierarchical span tree "
                          "for the query (works locally and via --url)")
    qry.add_argument("--top", type=int, default=10,
                     help="print the top-N regions")
    qry.add_argument("--csv", help="write full results to this CSV")
    qry.set_defaults(func=_cmd_query)

    cmp_ = sub.add_parser("compare", help="run one query on many backends")
    cmp_.add_argument("sql")
    cmp_.add_argument("--data", required=True)
    cmp_.add_argument("--regions", required=True)
    cmp_.add_argument("--methods", default="bounded,accurate,grid",
                      help="comma-separated registered backends, e.g. "
                           "'bounded,grid,cube,auto'")
    cmp_.add_argument("--resolution", type=int, default=512)
    cmp_.add_argument("--workers", type=int, default=None,
                      help="worker processes for large inputs")
    _add_kernel_arg(cmp_)
    cmp_.set_defaults(func=_cmd_compare)

    ses = sub.add_parser("session",
                         help="replay a scripted interactive session")
    ses.add_argument("--data", required=True)
    ses.add_argument("--regions", required=True)
    ses.add_argument("--resolution", type=int, default=512)
    ses.add_argument("--workers", type=int, default=None,
                     help="worker processes for large inputs")
    ses.add_argument("--method", default="bounded", choices=METHODS,
                     help="backend for every gesture (or 'auto')")
    ses.add_argument("--no-tcube", dest="tcube", action="store_false",
                     default=True,
                     help="disable the temporal canvas cube for "
                          "time-brush gestures (always re-scatter)")
    ses.set_defaults(func=_cmd_session)

    srv = sub.add_parser("serve",
                         help="host data sets behind the query service")
    srv.add_argument("--data", action="append",
                     metavar="NAME=PATH",
                     help="point table .npz to serve (repeatable; bare "
                          "paths use the file stem as the name)")
    srv.add_argument("--store", action="append",
                     metavar="NAME=DIR",
                     help="out-of-core store directory to serve "
                          "(repeatable; mounted lazily on first query)")
    srv.add_argument("--datasets-json", default=None,
                     help="datasets.json manifest declaring stores/"
                          "tables/regions to mount (stores stay lazy)")
    srv.add_argument("--store-budget-mb", type=float, default=None,
                     help="per-store partition-mapping budget in MiB "
                          "(least-recently-scanned partitions unmap "
                          "first)")
    srv.add_argument("--regions", action="append",
                     metavar="NAME=PATH",
                     help="regions .geojson to serve (repeatable)")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8750)
    srv.add_argument("--resolution", type=int, default=512)
    srv.add_argument("--workers", type=int, default=None,
                     help="worker processes for large inputs")
    srv.add_argument("--shards", type=int, default=1,
                     help="serve-worker pool size: each worker owns a "
                          "private engine cache + coalescing map, and "
                          "queries route to workers by consistent hash "
                          "of their fingerprint")
    srv.add_argument("--prefetch-depth", type=int, default=1,
                     help="partitions of mmap readahead per shard in "
                          "out-of-core scans (0 disables)")
    srv.add_argument("--max-concurrency", type=int, default=4,
                     help="queries executing at once (thread pool size)")
    srv.add_argument("--max-queue", type=int, default=16,
                     help="admission queue depth before shedding load")
    srv.add_argument("--deadline-ms", type=float, default=None,
                     help="default per-query latency budget (requests "
                          "can override)")
    srv.add_argument("--speculate", dest="speculate", action="store_true",
                     default=True,
                     help="warm caches for each session's predicted next "
                          "gesture on idle slots (default on; shed first "
                          "under load, never blocks real queries)")
    srv.add_argument("--no-speculate", dest="speculate",
                     action="store_false",
                     help="disable gesture-speculative prefetch")
    srv.add_argument("--speculate-budget-ms", type=float, default=250.0,
                     help="predicted-cost budget per gesture for "
                          "speculative warm-up work")
    srv.add_argument("--slow-query-ms", type=float, default=None,
                     help="trace every request and keep a span-tree "
                          "dump of any slower than this threshold "
                          "(served at /v1/slow)")
    srv.add_argument("--model-dir", default=None,
                     help="directory persisting the gesture-transition "
                          "model across restarts (loaded on start, "
                          "saved on shutdown)")
    _add_kernel_arg(srv)
    srv.set_defaults(func=_cmd_serve)

    sto = sub.add_parser("store",
                         help="build / inspect / query out-of-core "
                              "dataset stores")
    sto_sub = sto.add_subparsers(dest="store_command", required=True)

    stb = sto_sub.add_parser("build",
                             help="ingest a table into a store directory")
    src = stb.add_mutually_exclusive_group(required=True)
    src.add_argument("--data", help="point table .npz to ingest")
    src.add_argument("--csv", help="x,y,... CSV to ingest in chunks")
    stb.add_argument("--out", required=True, help="store directory to create")
    stb.add_argument("--name", default=None, help="dataset name "
                     "(default: source file stem)")
    stb.add_argument("--partition-rows", type=int, default=65_536,
                     help="rows per partition (default 65536)")
    stb.add_argument("--grid", type=int, default=8,
                     help="spatial sort grid cells per axis (default 8)")
    stb.add_argument("--time-column", default=None,
                     help="timestamp column for temporal bucketing "
                          "(with --time-bucket-seconds)")
    stb.add_argument("--time-bucket-seconds", type=int, default=None,
                     help="temporal bucket width for the sort key")
    stb.add_argument("--chunk-rows", type=int, default=100_000,
                     help="CSV ingest chunk size (--csv only)")
    stb.set_defaults(func=_cmd_store_build)

    sti = sto_sub.add_parser("inspect", help="print a store's manifest")
    sti.add_argument("path", help="store directory")
    sti.add_argument("--partitions", action="store_true",
                     help="list every partition's zone-map summary")
    sti.set_defaults(func=_cmd_store_inspect)

    stq = sto_sub.add_parser("query",
                             help="run a SQL query out-of-core against "
                                  "a store")
    stq.add_argument("sql", help="query in the paper's SQL dialect")
    stq.add_argument("--store", dest="path", required=True,
                     help="store directory")
    stq.add_argument("--regions", required=True, help="regions .geojson")
    stq.add_argument("--method", default="auto",
                     choices=("auto", "bounded", "tiled"))
    stq.add_argument("--resolution", type=int, default=512)
    stq.add_argument("--shards", type=int, default=None,
                     help="partition-scan shard processes (default: "
                          "cpu count; the planner still stays serial "
                          "below the row threshold)")
    stq.add_argument("--prefetch-depth", type=int, default=1,
                     help="partitions of mmap readahead per shard "
                          "(0 disables)")
    stq.add_argument("--budget-mb", type=float, default=None,
                     help="partition-mapping memory budget in MiB")
    _add_kernel_arg(stq)
    stq.add_argument("--top", type=int, default=10,
                     help="print the top-N regions")
    stq.set_defaults(func=_cmd_store_query)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
