"""Scanline polygon rasterization (fragment generation).

This is the software stand-in for the GPU's triangle rasterizer: given a
polygon and a viewport it produces the *fragments* — flat pixel ids whose
centers are covered — using the same sample-at-pixel-center, even-odd
rule a GPU applies.  Everything is vectorized over edges and rows; the
per-polygon output feeds the raster join.

Two products per polygon:

* **coverage fragments** — pixels whose center lies inside the polygon
  (exterior minus holes, even-odd combined across all rings at once);
* **boundary pixels** — a conservative superset of pixels intersected by
  any ring edge (supersampled edge walk + 3x3 dilation, see
  :func:`boundary_pixels`).
"""

from __future__ import annotations

import numpy as np

from .. import kernels
from ..geometry.point import as_points
from ..geometry.polygon import Geometry
from .viewport import Viewport


def _ring_edges(rings: list[np.ndarray]):
    """Stack ring edges into flat (x1, y1, x2, y2) arrays."""
    xs1, ys1, xs2, ys2 = [], [], [], []
    for ring in rings:
        verts = as_points(ring)
        if len(verts) < 3:
            continue
        nxt = np.roll(verts, -1, axis=0)
        xs1.append(verts[:, 0])
        ys1.append(verts[:, 1])
        xs2.append(nxt[:, 0])
        ys2.append(nxt[:, 1])
    if not xs1:
        empty = np.empty(0, dtype=np.float64)
        return empty, empty, empty, empty
    return (np.concatenate(xs1), np.concatenate(ys1),
            np.concatenate(xs2), np.concatenate(ys2))


def coverage_fragments(geometry: Geometry, viewport: Viewport) -> np.ndarray:
    """Flat pixel ids whose centers are inside ``geometry``.

    Implements the even-odd scanline fill over *all* rings at once:
    crossing a hole edge toggles coverage off, so holes need no special
    casing.  Complexity O(E * R) in edges x bbox rows, all NumPy.
    """
    rings = list(geometry.rings())
    x1, y1, x2, y2 = _ring_edges(rings)
    if len(x1) == 0:
        return np.empty(0, dtype=np.int64)

    # Pixel rows whose centers fall inside the geometry's bbox (clipped
    # to the viewport).
    gb = geometry.bbox
    ph = viewport.pixel_height
    row_lo = max(0, int(np.floor((gb.ymin - viewport.bbox.ymin) / ph - 0.5)))
    row_hi = min(viewport.height - 1,
                 int(np.ceil((gb.ymax - viewport.bbox.ymin) / ph)))
    if row_lo > row_hi:
        return np.empty(0, dtype=np.int64)

    rows = np.arange(row_lo, row_hi + 1)
    yc = viewport.bbox.ymin + (rows + 0.5) * ph  # sample line per row

    # (E, R) crossing matrix: edge e crosses the sample line of row r
    # when one endpoint is strictly above and the other at-or-below.
    above1 = y1[:, None] > yc[None, :]
    above2 = y2[:, None] > yc[None, :]
    crosses = above1 != above2
    if not crosses.any():
        return np.empty(0, dtype=np.int64)

    e_idx, r_idx = np.nonzero(crosses)
    # NB: operation order mirrors predicates.points_in_ring bit-for-bit,
    # so a pixel center lying exactly on an edge classifies identically
    # here and in the exact test (the accurate join relies on agreement
    # only through boundary pixels, but tests compare globally).
    xint = (x1[e_idx]
            + (yc[r_idx] - y1[e_idx]) * (x2[e_idx] - x1[e_idx])
            / (y2[e_idx] - y1[e_idx]))

    # Sort crossings by (row, x); even-odd rule pairs consecutive
    # crossings within each row into filled spans.
    order = np.lexsort((xint, r_idx))
    r_sorted = r_idx[order]
    x_sorted = xint[order]

    # Crossing counts per row are even (closed rings); pair them up.
    span_lo = x_sorted[0::2]
    span_hi = x_sorted[1::2]
    span_row = r_sorted[0::2]
    # Sanity: both crossings of each pair must be in the same row.
    if not np.array_equal(span_row, r_sorted[1::2]):
        # Odd crossing counts can only arise from vertices landing
        # exactly on a sample line under the strict/non-strict rule;
        # the half-open convention above prevents it, but guard anyway.
        raise AssertionError("scanline pairing failed: odd crossing count")

    # Convert world-x spans to pixel-center columns: centers with
    # span_lo <= xc < span_hi.
    pw = viewport.pixel_width
    x0 = viewport.bbox.xmin
    col_lo = np.ceil((span_lo - x0) / pw - 0.5).astype(np.int64)
    col_hi = np.ceil((span_hi - x0) / pw - 0.5).astype(np.int64) - 1
    col_lo = np.maximum(col_lo, 0)
    col_hi = np.minimum(col_hi, viewport.width - 1)

    lengths = col_hi - col_lo + 1
    keep = lengths > 0
    if not keep.any():
        return np.empty(0, dtype=np.int64)
    col_lo = col_lo[keep]
    lengths = lengths[keep]
    span_rows = rows[span_row[keep]]

    # A span's flat pixel ids are consecutive within its row, so the
    # fill is one ragged-range expansion over (row * width + col_lo,
    # length) runs — dispatched to the selected kernel.
    return kernels.active().expand_ranges(
        span_rows * viewport.width + col_lo, lengths)


def boundary_pixels_sampled(geometry: Geometry, viewport: Viewport,
                            dilate: bool = True) -> np.ndarray:
    """Conservative boundary cover by edge supersampling + dilation.

    Every ring edge is supersampled at <= 0.45 pixel steps; touched
    pixels are collected and (by default) dilated by one pixel in all
    eight directions.  The sampling can only miss a pixel the edge clips
    near a corner, and any such pixel is 8-adjacent to a sampled one, so
    sampling + dilation is a true conservative cover.  Superseded by the
    ~3x tighter :func:`boundary_pixels` (exact grid traversal); kept for
    the ablation benchmarks.
    """
    x1, y1, x2, y2 = _ring_edges(list(geometry.rings()))
    if len(x1) == 0:
        return np.empty(0, dtype=np.int64)

    pw = viewport.pixel_width
    ph = viewport.pixel_height
    step = 0.45 * min(pw, ph)
    lengths = np.hypot(x2 - x1, y2 - y1)
    nsamples = np.maximum(2, np.ceil(lengths / step).astype(np.int64) + 1)

    total = int(nsamples.sum())
    edge_of_sample = np.repeat(np.arange(len(x1)), nsamples)
    cum = np.concatenate(([0], np.cumsum(nsamples)[:-1]))
    local = np.arange(total) - np.repeat(cum, nsamples)
    t = local / np.repeat(nsamples - 1, nsamples)

    sx = x1[edge_of_sample] + t * (x2 - x1)[edge_of_sample]
    sy = y1[edge_of_sample] + t * (y2 - y1)[edge_of_sample]

    ix = np.floor((sx - viewport.bbox.xmin) / pw).astype(np.int64)
    iy = np.floor((sy - viewport.bbox.ymin) / ph).astype(np.int64)

    if dilate:
        # 3x3 dilation before clipping so off-screen samples still mark
        # their on-screen neighbours.
        ix = (ix[:, None] + np.array([-1, 0, 1])).reshape(-1, 1)
        iy = np.repeat(iy, 3).reshape(-1, 1)
        ix = np.repeat(ix, 3, axis=0).ravel()
        iy = (iy + np.array([-1, 0, 1])).ravel()

    valid = (ix >= 0) & (ix < viewport.width) & (iy >= 0) & (iy < viewport.height)
    ids = iy[valid] * viewport.width + ix[valid]
    return np.unique(ids)


def _mark_with_gridline_neighbors(gx: np.ndarray, gy: np.ndarray,
                                  viewport: Viewport) -> np.ndarray:
    """Pixels containing points given in *grid units*, including both
    neighbors when a point lies exactly on a grid line (such a point
    sits on the shared closed edge of two pixels, and the boundary then
    touches both)."""
    ix = np.floor(gx).astype(np.int64)
    iy = np.floor(gy).astype(np.int64)
    on_v = gx == ix  # exactly on a vertical grid line
    on_h = gy == iy
    cols = [ix]
    rows = [iy]
    if on_v.any():
        cols.append(ix[on_v] - 1)
        rows.append(iy[on_v])
    if on_h.any():
        cols.append(ix[on_h])
        rows.append(iy[on_h] - 1)
    both = on_v & on_h
    if both.any():
        cols.append(ix[both] - 1)
        rows.append(iy[both] - 1)
    ix = np.concatenate(cols)
    iy = np.concatenate(rows)
    valid = ((ix >= 0) & (ix < viewport.width)
             & (iy >= 0) & (iy < viewport.height))
    return iy[valid] * viewport.width + ix[valid]


def _gridline_aligned_ids(line: np.ndarray, a1: np.ndarray, a2: np.ndarray,
                          horizontal: bool, viewport: Viewport) -> np.ndarray:
    """Pixel ids of axis-parallel edges lying exactly on a grid line.

    A horizontal edge at integer grid row ``j`` spanning grid-x
    ``[a, b]`` touches exactly the half-open pixels
    ``(floor(min), j) .. (floor(max), j)``: row ``j`` owns every point
    with y == j, and row ``j - 1`` contains only strictly-below points,
    so marking the neighbor row (as the generic machinery would) is
    pure over-marking.  Symmetric for vertical edges.
    """
    if len(line) == 0:
        return np.empty(0, dtype=np.int64)
    fixed = line.astype(np.int64)
    lo = np.floor(np.minimum(a1, a2)).astype(np.int64)
    hi = np.floor(np.maximum(a1, a2)).astype(np.int64)
    if horizontal:
        fixed_cap, span_cap = viewport.height, viewport.width
    else:
        fixed_cap, span_cap = viewport.width, viewport.height
    lo = np.maximum(lo, 0)
    hi = np.minimum(hi, span_cap - 1)
    keep = (hi >= lo) & (fixed >= 0) & (fixed < fixed_cap)
    if not keep.any():
        return np.empty(0, dtype=np.int64)
    fixed, lo, hi = fixed[keep], lo[keep], hi[keep]
    counts = hi - lo + 1
    expand = kernels.active().expand_ranges
    if horizontal:
        # Consecutive columns of one row are consecutive flat ids.
        return expand(fixed * viewport.width + lo, counts)
    rows = expand(lo, counts)
    return rows * viewport.width + np.repeat(fixed, counts)


def boundary_pixels(geometry: Geometry, viewport: Viewport) -> np.ndarray:
    """Exact conservative cover of pixels the boundary passes through.

    Grid-traversal rasterization of every ring edge, vectorized over all
    edges at once: each edge's crossings with vertical and horizontal
    pixel-grid lines split it into pieces, each piece lies inside one
    pixel, and the piece midpoints identify those pixels.  Crossing
    points and vertices that fall exactly on grid lines additionally
    mark both adjacent pixels (float-safe conservatism), so the result
    is a superset of every pixel whose *half-open* square
    ``[i, i+1) x [j, j+1)`` — the region :meth:`Viewport.pixel_ids_of`
    assigns points to — meets the boundary.  That superset property is
    what the accurate raster join's exactness rests on, while staying
    ~3x tighter than sampling with 3x3 dilation.

    Axis-parallel edges lying *exactly on* a grid line are special-cased
    (:func:`_gridline_aligned_ids`): they touch only the one row/column
    that owns the line under the half-open convention, so the
    both-neighbors rule the generic machinery applies would over-mark an
    entire row or column of pixels per aligned edge.
    """
    x1, y1, x2, y2 = _ring_edges(list(geometry.rings()))
    if len(x1) == 0:
        return np.empty(0, dtype=np.int64)

    pw = viewport.pixel_width
    ph = viewport.pixel_height
    x0 = viewport.bbox.xmin
    y0 = viewport.bbox.ymin
    # Work in grid units: pixel (i, j) covers [i, i+1) x [j, j+1).
    gx1 = (x1 - x0) / pw
    gy1 = (y1 - y0) / ph
    gx2 = (x2 - x0) / pw
    gy2 = (y2 - y0) / ph

    # Split off edges running exactly along a grid line — their pixel
    # cover is a single run, computed directly; everything else goes
    # through the conservative piece/crossing/vertex machinery.
    aligned_h = (gy1 == gy2) & (gy1 == np.floor(gy1)) & (gx1 != gx2)
    aligned_v = (gx1 == gx2) & (gx1 == np.floor(gx1)) & (gy1 != gy2)
    generic = ~(aligned_h | aligned_v)

    aligned_ids = [
        _gridline_aligned_ids(gy1[aligned_h], gx1[aligned_h],
                              gx2[aligned_h], True, viewport),
        _gridline_aligned_ids(gx1[aligned_v], gy1[aligned_v],
                              gy2[aligned_v], False, viewport),
    ]

    gx1, gy1 = gx1[generic], gy1[generic]
    gx2, gy2 = gx2[generic], gy2[generic]
    num_edges = len(gx1)
    if num_edges == 0:
        return np.unique(np.concatenate(aligned_ids))

    def _axis_crossings(a1: np.ndarray, a2: np.ndarray):
        """(edge ids, t values, line indices) of crossings with integer
        grid lines of one axis; degenerate edges (a1 == a2) produce
        none."""
        lo = np.minimum(a1, a2)
        hi = np.maximum(a1, a2)
        first = np.ceil(lo)
        counts = np.maximum(0, np.floor(hi) - first + 1).astype(np.int64)
        counts[a1 == a2] = 0
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0)
            return (np.empty(0, dtype=np.int64), empty, empty)
        edges = np.repeat(np.arange(num_edges), counts)
        cum = np.concatenate(([0], np.cumsum(counts)[:-1]))
        k = np.repeat(first, counts) + (
            np.arange(total) - np.repeat(cum, counts))
        t = np.clip((k - a1[edges]) / (a2[edges] - a1[edges]), 0.0, 1.0)
        return edges, t, k

    ex, tx, kx = _axis_crossings(gx1, gx2)
    ey, ty, ky = _axis_crossings(gy1, gy2)
    ends = np.arange(num_edges)
    all_edges = np.concatenate([ex, ey, ends, ends])
    all_t = np.concatenate([tx, ty, np.zeros(num_edges),
                            np.ones(num_edges)])

    order = np.lexsort((all_t, all_edges))
    e_sorted = all_edges[order]
    t_sorted = all_t[order]

    # Midpoints of consecutive crossing pairs on the same edge: one
    # point inside every grid piece the edge passes through.  (Pieces
    # running exactly along a grid line interpolate that coordinate
    # exactly, so the neighbor rule still fires for them.)
    same_edge = e_sorted[1:] == e_sorted[:-1]
    tm = 0.5 * (t_sorted[1:] + t_sorted[:-1])[same_edge]
    em = e_sorted[:-1][same_edge]
    mid_gx = gx1[em] + tm * (gx2[em] - gx1[em])
    mid_gy = gy1[em] + tm * (gy2[em] - gy1[em])

    # Crossing points sit exactly on a grid line by construction (the
    # crossed coordinate is the integer k, not an interpolation), so the
    # neighbor rule marks both adjacent pixels robustly.  Ring vertices
    # are emitted with their exact endpoint coordinates for the same
    # reason.
    vx_gy = gy1[ex] + tx * (gy2[ex] - gy1[ex])  # vertical crossings
    hy_gx = gx1[ey] + ty * (gx2[ey] - gx1[ey])  # horizontal crossings

    ids = np.concatenate(aligned_ids + [
        _mark_with_gridline_neighbors(mid_gx, mid_gy, viewport),
        _mark_with_gridline_neighbors(kx, vx_gy, viewport),
        _mark_with_gridline_neighbors(hy_gx, ky, viewport),
        _mark_with_gridline_neighbors(gx1, gy1, viewport),
    ])
    return np.unique(ids)


def rasterize_polygon(geometry: Geometry, viewport: Viewport
                      ) -> tuple[np.ndarray, np.ndarray]:
    """(interior pixel ids, boundary pixel ids) for one geometry.

    *Interior* pixels have their center inside the geometry and are not
    boundary pixels — every point in them is guaranteed inside.
    *Boundary* pixels may contain both inside and outside points.
    """
    covered = coverage_fragments(geometry, viewport)
    boundary = boundary_pixels(geometry, viewport)
    if len(boundary) == 0:
        return covered, boundary
    interior = np.setdiff1d(covered, boundary, assume_unique=False)
    return interior, boundary


def rasterize_triangles(triangles: np.ndarray, viewport: Viewport) -> np.ndarray:
    """Fragments of a triangle soup (union of center-covered pixels).

    Used by the ablation that mimics the GPU path (tessellate, then
    rasterize triangles) instead of direct polygon scanline.  Triangles
    are assumed non-overlapping (a proper tessellation), so the union of
    their fragments equals the polygon's fragments up to edge-sample
    ties.
    """
    frags = []
    for tri in triangles:
        from ..geometry.polygon import Polygon

        frags.append(coverage_fragments(Polygon(tri), viewport))
    if not frags:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(frags))
