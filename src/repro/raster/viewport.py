"""Viewport: the world -> pixel transform.

The raster join draws points and polygons onto a shared canvas; the
viewport fixes that canvas's pixel grid over a world-coordinate window.
Pixel ``(ix, iy)`` covers the half-open world rectangle

    [xmin + ix*pw, xmin + (ix+1)*pw) x [ymin + iy*ph, ymin + (iy+1)*ph)

with its *center* at ``(xmin + (ix+0.5)*pw, ymin + (iy+0.5)*ph)`` — the
sample location used for inside/outside classification, exactly like a
GPU fragment center.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GeometryError
from ..geometry import BBox


@dataclass(frozen=True)
class Viewport:
    """An immutable pixel grid over a world-coordinate window."""

    bbox: BBox
    width: int
    height: int

    def __post_init__(self):
        if self.width < 1 or self.height < 1:
            raise GeometryError(
                f"viewport needs positive pixel dims, got "
                f"{self.width}x{self.height}"
            )
        if self.bbox.width <= 0 or self.bbox.height <= 0:
            raise GeometryError("viewport bbox must have positive extent")

    @classmethod
    def fit(cls, bbox: BBox, resolution: int, pad_fraction: float = 1e-9) -> "Viewport":
        """A roughly square-pixel viewport covering ``bbox``.

        The longer world axis gets ``resolution`` pixels; the box is
        expanded by a relative epsilon so points sitting exactly on the
        max edges still fall inside the half-open pixel grid.
        """
        pad = max(bbox.width, bbox.height) * pad_fraction
        box = bbox.expand(pad if pad > 0 else 1e-12)
        if box.width >= box.height:
            width = int(resolution)
            height = max(1, int(round(resolution * box.height / box.width)))
        else:
            height = int(resolution)
            width = max(1, int(round(resolution * box.width / box.height)))
        return cls(box, width, height)

    @property
    def pixel_width(self) -> float:
        """World-units width of one pixel."""
        return self.bbox.width / self.width

    @property
    def pixel_height(self) -> float:
        """World-units height of one pixel."""
        return self.bbox.height / self.height

    @property
    def pixel_diag(self) -> float:
        """World-units length of a pixel diagonal (the ε of the error
        bound: no point can be misassigned by more than one pixel)."""
        return float(np.hypot(self.pixel_width, self.pixel_height))

    @property
    def num_pixels(self) -> int:
        return self.width * self.height

    # -- coordinate transforms -------------------------------------------

    def pixel_of(self, x, y) -> tuple[np.ndarray, np.ndarray]:
        """Pixel indices (ix, iy) of world points; may fall off-grid."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        ix = np.floor((x - self.bbox.xmin) / self.pixel_width).astype(np.int64)
        iy = np.floor((y - self.bbox.ymin) / self.pixel_height).astype(np.int64)
        return ix, iy

    def pixel_ids_of(self, x, y) -> tuple[np.ndarray, np.ndarray]:
        """(flat pixel ids, validity mask) for world points.

        Points outside the viewport get a False mask entry (and an
        arbitrary clamped id that must not be used).
        """
        ix, iy = self.pixel_of(x, y)
        valid = (ix >= 0) & (ix < self.width) & (iy >= 0) & (iy < self.height)
        ix = np.clip(ix, 0, self.width - 1)
        iy = np.clip(iy, 0, self.height - 1)
        return iy * self.width + ix, valid

    def pixel_center(self, ix, iy) -> tuple[np.ndarray, np.ndarray]:
        """World coordinates of pixel centers."""
        ix = np.asarray(ix, dtype=np.float64)
        iy = np.asarray(iy, dtype=np.float64)
        return (
            self.bbox.xmin + (ix + 0.5) * self.pixel_width,
            self.bbox.ymin + (iy + 0.5) * self.pixel_height,
        )

    def pixel_bbox(self, ix: int, iy: int) -> BBox:
        """World rectangle covered by one pixel."""
        pw = self.pixel_width
        ph = self.pixel_height
        return BBox(
            self.bbox.xmin + ix * pw,
            self.bbox.ymin + iy * ph,
            self.bbox.xmin + (ix + 1) * pw,
            self.bbox.ymin + (iy + 1) * ph,
        )

    def row_of_id(self, pixel_ids) -> np.ndarray:
        return np.asarray(pixel_ids) // self.width

    def col_of_id(self, pixel_ids) -> np.ndarray:
        return np.asarray(pixel_ids) % self.width

    def zoom(self, factor: float) -> "Viewport":
        """Same pixel dims over a window scaled about its center."""
        return Viewport(self.bbox.scale(factor), self.width, self.height)

    def pan(self, dx_pixels: float, dy_pixels: float) -> "Viewport":
        """Same pixel dims over a window shifted by a pixel offset."""
        return Viewport(
            self.bbox.translate(dx_pixels * self.pixel_width,
                                dy_pixels * self.pixel_height),
            self.width,
            self.height,
        )
