"""Canvas pyramid: mip-style 2x reductions of blended canvases.

A canvas at pyramid level ``L`` has pixels that each cover a ``2 x 2``
block of level ``L-1`` pixels (and therefore ``2^L x 2^L`` base
pixels).  Reductions are chosen per canvas kind so the pyramid is
*lossless for its aggregate*:

* ``sum`` — COUNT/SUM/mass canvases reduce by 2x2 block **sum**, which
  is sum-preserving: the total over any aligned window is identical at
  every level (exactly, for the integer-valued canvases COUNT produces);
* ``min`` / ``max`` — bound canvases reduce by 2x2 block min/max, which
  propagates the true extremum of the covered base pixels.

Odd canvas dimensions are handled by padding the ragged edge with the
reduction's identity (``0`` for sum, ``+inf`` for min, ``-inf`` for
max), so a margin pixel at a coarse level aggregates exactly the base
pixels that exist and nothing else.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError

#: Identity element of each reduction (used to pad odd dimensions).
REDUCE_IDENTITY = {"sum": 0.0, "min": np.inf, "max": -np.inf}

#: Canvas kind -> reduction op taking it one level up.
PYRAMID_OPS = {
    "count": "sum",
    "sum": "sum",
    "mass": "sum",
    "min": "min",
    "max": "max",
}


def reduce2x2(plane: np.ndarray, op: str = "sum") -> np.ndarray:
    """One pyramid step: reduce a 2-D canvas by 2x2 blocks.

    ``plane`` is ``(H, W)``; the result is ``(ceil(H/2), ceil(W/2))``.
    Odd dimensions are padded with the op's identity so edge pixels
    reduce only the cells that exist.
    """
    if op not in REDUCE_IDENTITY:
        raise ExecutionError(f"unknown pyramid reduction {op!r}")
    plane = np.asarray(plane)
    if plane.ndim != 2:
        raise ExecutionError(
            f"reduce2x2 expects a 2-D canvas, got shape {plane.shape}")
    h, w = plane.shape
    if h % 2 or w % 2:
        padded = np.full(((h + 1) // 2 * 2, (w + 1) // 2 * 2),
                         REDUCE_IDENTITY[op], dtype=np.float64)
        padded[:h, :w] = plane
        plane = padded
        h, w = plane.shape
    blocks = plane.reshape(h // 2, 2, w // 2, 2)
    if op == "sum":
        # Fixed pairwise order (top-left + top-right) + (bottom-left +
        # bottom-right): deterministic, and exact for the integer-valued
        # canvases this is applied to.
        return (blocks[:, 0, :, 0] + blocks[:, 0, :, 1]) + (
            blocks[:, 1, :, 0] + blocks[:, 1, :, 1])
    if op == "min":
        return blocks.min(axis=(1, 3))
    return blocks.max(axis=(1, 3))


def build_pyramid(plane: np.ndarray, levels: int, op: str = "sum"
                  ) -> list[np.ndarray]:
    """The full mip chain ``[level 0, level 1, ..., level `levels`]``.

    ``levels`` counts *reductions*: the returned list has ``levels + 1``
    planes, the first being ``plane`` itself (not a copy).
    """
    if levels < 0:
        raise ExecutionError(f"pyramid levels must be >= 0, got {levels}")
    chain = [np.asarray(plane)]
    for _ in range(levels):
        chain.append(reduce2x2(chain[-1], op))
    return chain
