"""Canvas pyramid: mip-style 2x reductions of blended canvases.

A canvas at pyramid level ``L`` has pixels that each cover a ``2 x 2``
block of level ``L-1`` pixels (and therefore ``2^L x 2^L`` base
pixels).  Reductions are chosen per canvas kind so the pyramid is
*lossless for its aggregate*:

* ``sum`` — COUNT/SUM/mass canvases reduce by 2x2 block **sum**, which
  is sum-preserving: the total over any aligned window is identical at
  every level (exactly, for the integer-valued canvases COUNT produces);
* ``min`` / ``max`` — bound canvases reduce by 2x2 block min/max, which
  propagates the true extremum of the covered base pixels.

Odd canvas dimensions are handled by padding the ragged edge with the
reduction's identity (``0`` for sum, ``+inf`` for min, ``-inf`` for
max), so a margin pixel at a coarse level aggregates exactly the base
pixels that exist and nothing else.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError

#: Identity element of each reduction (used to pad odd dimensions).
REDUCE_IDENTITY = {"sum": 0.0, "min": np.inf, "max": -np.inf}

#: Canvas kind -> reduction op taking it one level up.
PYRAMID_OPS = {
    "count": "sum",
    "sum": "sum",
    "mass": "sum",
    "min": "min",
    "max": "max",
}


def reduce2x2(plane: np.ndarray, op: str = "sum") -> np.ndarray:
    """One pyramid step: reduce a 2-D canvas by 2x2 blocks.

    ``plane`` is ``(H, W)``; the result is ``(ceil(H/2), ceil(W/2))``.
    Odd dimensions are padded with the op's identity so edge pixels
    reduce only the cells that exist.
    """
    if op not in REDUCE_IDENTITY:
        raise ExecutionError(f"unknown pyramid reduction {op!r}")
    plane = np.asarray(plane)
    if plane.ndim != 2:
        raise ExecutionError(
            f"reduce2x2 expects a 2-D canvas, got shape {plane.shape}")
    h, w = plane.shape
    if h % 2 or w % 2:
        padded = np.full(((h + 1) // 2 * 2, (w + 1) // 2 * 2),
                         REDUCE_IDENTITY[op], dtype=np.float64)
        padded[:h, :w] = plane
        plane = padded
        h, w = plane.shape
    blocks = plane.reshape(h // 2, 2, w // 2, 2)
    if op == "sum":
        # Fixed pairwise order (top-left + top-right) + (bottom-left +
        # bottom-right): deterministic, and exact for the integer-valued
        # canvases this is applied to.
        return (blocks[:, 0, :, 0] + blocks[:, 0, :, 1]) + (
            blocks[:, 1, :, 0] + blocks[:, 1, :, 1])
    if op == "min":
        return blocks.min(axis=(1, 3))
    return blocks.max(axis=(1, 3))


def build_pyramid(plane: np.ndarray, levels: int, op: str = "sum"
                  ) -> list[np.ndarray]:
    """The full mip chain ``[level 0, level 1, ..., level `levels`]``.

    ``levels`` counts *reductions*: the returned list has ``levels + 1``
    planes, the first being ``plane`` itself (not a copy).
    """
    if levels < 0:
        raise ExecutionError(f"pyramid levels must be >= 0, got {levels}")
    chain = [np.asarray(plane)]
    for _ in range(levels):
        chain.append(reduce2x2(chain[-1], op))
    return chain


def block_span(col0: int, row0: int, width: int, height: int,
               block: int) -> tuple[int, int, int, int]:
    """The half-open block-coordinate rectangle a pixel window covers.

    ``(bx0, by0, bx1, by1)`` such that blocks ``bx0 <= bx < bx1``,
    ``by0 <= by < by1`` (each ``block x block`` pixels at the window's
    level) together cover pixel columns ``[col0, col0+width)`` and rows
    ``[row0, row0+height)``.
    """
    if block < 1:
        raise ExecutionError(f"block size must be positive, got {block}")
    if width < 1 or height < 1:
        raise ExecutionError("block_span needs a non-empty pixel window")
    bx0 = col0 // block
    by0 = row0 // block
    bx1 = (col0 + width - 1) // block + 1
    by1 = (row0 + height - 1) // block + 1
    return bx0, by0, bx1, by1


def block_ring(col0: int, row0: int, width: int, height: int,
               block: int) -> list[tuple[int, int]]:
    """The one-block border around a pixel window's block footprint.

    Returns the block coordinates adjacent (8-connected) to the blocks
    the window covers, excluding the covered blocks themselves — the
    candidate set a pan gesture can expose next, in row-major order.
    This is pure lattice arithmetic; whether a ring block is worth
    warming (cached already, outside the data's extent, over budget) is
    the speculation planner's call.
    """
    bx0, by0, bx1, by1 = block_span(col0, row0, width, height, block)
    ring = []
    for by in range(by0 - 1, by1 + 1):
        for bx in range(bx0 - 1, bx1 + 1):
            inside = bx0 <= bx < bx1 and by0 <= by < by1
            if not inside:
                ring.append((bx, by))
    return ring
