"""Polygon fragment tables.

Rasterizing a *set* of regions produces two fragment tables — flat
``(pixel_id, polygon_id)`` pair arrays — one for guaranteed-interior
pixels and one for boundary pixels.  Building them is the polygon-side
render pass of the raster join; since Urbane re-queries the same region
sets while the user brushes filters, the tables are cached per
(regions, viewport) by the executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..geometry.polygon import Geometry
from .scanline import boundary_pixels, coverage_fragments
from .viewport import Viewport


@dataclass(frozen=True)
class FragmentTable:
    """Flat fragment pairs for a rasterized region set."""

    # Pixels fully inside their polygon (center-covered, not boundary).
    interior_pixels: np.ndarray
    interior_polys: np.ndarray
    # Pixels that may straddle their polygon's boundary.
    boundary_pixels: np.ndarray
    boundary_polys: np.ndarray
    # Center-covered boundary pixels (what the pure raster pass counts).
    covered_boundary_pixels: np.ndarray
    covered_boundary_polys: np.ndarray
    num_polygons: int
    viewport: Viewport

    @property
    def num_interior_fragments(self) -> int:
        return len(self.interior_pixels)

    @property
    def num_boundary_fragments(self) -> int:
        return len(self.boundary_pixels)

    # All center-covered pairs (interior + covered boundary) — what the
    # pure raster join iterates.  Concatenated once per table (builders
    # touch these eagerly) instead of on every query: the join runs per
    # brush gesture, and re-allocating megabyte pair arrays per gesture
    # dominated small-query join time.  ``cached_property`` stores into
    # ``__dict__`` directly, so it composes with the frozen dataclass.

    @cached_property
    def covered_pixels(self) -> np.ndarray:
        return np.concatenate(
            [self.interior_pixels, self.covered_boundary_pixels])

    @cached_property
    def covered_polys(self) -> np.ndarray:
        return np.concatenate(
            [self.interior_polys, self.covered_boundary_polys])


def build_fragment_table(geometries: list[Geometry],
                         viewport: Viewport) -> FragmentTable:
    """Rasterize every region once and assemble the fragment tables."""
    int_pix: list[np.ndarray] = []
    int_poly: list[np.ndarray] = []
    bnd_pix: list[np.ndarray] = []
    bnd_poly: list[np.ndarray] = []
    cov_bnd_pix: list[np.ndarray] = []
    cov_bnd_poly: list[np.ndarray] = []

    for gid, geom in enumerate(geometries):
        covered = coverage_fragments(geom, viewport)
        boundary = boundary_pixels(geom, viewport)
        if len(boundary):
            interior = np.setdiff1d(covered, boundary, assume_unique=False)
            covered_boundary = np.intersect1d(covered, boundary,
                                              assume_unique=False)
        else:
            interior = covered
            covered_boundary = boundary
        if len(interior):
            int_pix.append(interior)
            int_poly.append(np.full(len(interior), gid, dtype=np.int32))
        if len(boundary):
            bnd_pix.append(boundary)
            bnd_poly.append(np.full(len(boundary), gid, dtype=np.int32))
        if len(covered_boundary):
            cov_bnd_pix.append(covered_boundary)
            cov_bnd_poly.append(
                np.full(len(covered_boundary), gid, dtype=np.int32))

    def _cat(parts, dtype):
        if not parts:
            return np.empty(0, dtype=dtype)
        return np.concatenate(parts)

    table = FragmentTable(
        interior_pixels=_cat(int_pix, np.int64),
        interior_polys=_cat(int_poly, np.int32),
        boundary_pixels=_cat(bnd_pix, np.int64),
        boundary_polys=_cat(bnd_poly, np.int32),
        covered_boundary_pixels=_cat(cov_bnd_pix, np.int64),
        covered_boundary_polys=_cat(cov_bnd_poly, np.int32),
        num_polygons=len(geometries),
        viewport=viewport,
    )
    # Materialize the concatenated covered arrays now, while the table
    # is cold — queries then never allocate them per gesture.
    table.covered_pixels
    table.covered_polys
    return table
