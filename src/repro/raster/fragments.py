"""Polygon fragment tables.

Rasterizing a *set* of regions produces two fragment tables — flat
``(pixel_id, polygon_id)`` pair arrays — one for guaranteed-interior
pixels and one for boundary pixels.  Building them is the polygon-side
render pass of the raster join; since Urbane re-queries the same region
sets while the user brushes filters, the tables are cached per
(regions, viewport) by the executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..geometry.polygon import Geometry
from .scanline import boundary_pixels, coverage_fragments
from .viewport import Viewport

# Cell classes of the interval classification, as canvas codes.
CELL_EMPTY = 0
CELL_FULL = 1
CELL_PARTIAL = 2


@dataclass(frozen=True)
class IntervalSet:
    """Per-polygon FULL / PARTIAL pixel-interval classification.

    Raster-interval object approximation (Georgiadis, Tzirita
    Zacharatou, Mamoulis): each polygon's raster cells are classified
    into **FULL** runs (guaranteed-interior — every point in the run is
    inside the polygon), **PARTIAL** runs (cells the boundary may pass
    through, needing exact tests) and implicit **EMPTY** cells
    (everything else).  Runs are maximal sequences of consecutive flat
    pixel ids within one raster row, stored CSR-style per polygon:
    polygon ``g`` owns runs ``full_offsets[g]:full_offsets[g + 1]``.

    Derived from the fragment table at build time — FULL runs compress
    the interior fragments, PARTIAL runs the boundary fragments — so
    the classification is a byproduct of the scanline pass, not an
    extra rasterization.
    """

    full_offsets: np.ndarray    # (num_polygons + 1,) int64 run indices
    full_starts: np.ndarray     # flat pixel id where each run begins
    full_lengths: np.ndarray    # pixels per run
    partial_offsets: np.ndarray
    partial_starts: np.ndarray
    partial_lengths: np.ndarray

    @property
    def full_pixels(self) -> int:
        return int(self.full_lengths.sum())

    @property
    def partial_pixels(self) -> int:
        return int(self.partial_lengths.sum())

    @property
    def num_full_runs(self) -> int:
        return len(self.full_starts)

    @property
    def num_partial_runs(self) -> int:
        return len(self.partial_starts)


def _runs_by_polygon(pixels: np.ndarray, polys: np.ndarray,
                     num_polygons: int, width: int
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run-length encode per-polygon sorted pixel ids into row runs.

    ``pixels`` must be sorted within each polygon with ``polys`` grouped
    in ascending polygon order — exactly how :func:`build_fragment_table`
    (and the parallel stitcher) lay the fragment arrays out.  A run
    breaks on a pixel gap, a polygon change, or a raster row wrap
    (consecutive flat ids spanning two rows are not spatially adjacent).
    """
    n = len(pixels)
    offsets_shape = num_polygons + 1
    if n == 0:
        return (np.zeros(offsets_shape, dtype=np.int64),
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    new_run = np.ones(n, dtype=bool)
    new_run[1:] = ~((pixels[1:] == pixels[:-1] + 1)
                    & (polys[1:] == polys[:-1])
                    & (pixels[1:] % width != 0))
    run_idx = np.flatnonzero(new_run)
    starts = pixels[run_idx].astype(np.int64)
    lengths = np.diff(np.append(run_idx, n)).astype(np.int64)
    offsets = np.searchsorted(polys[run_idx],
                              np.arange(offsets_shape)).astype(np.int64)
    return offsets, starts, lengths


@dataclass(frozen=True)
class FragmentTable:
    """Flat fragment pairs for a rasterized region set."""

    # Pixels fully inside their polygon (center-covered, not boundary).
    interior_pixels: np.ndarray
    interior_polys: np.ndarray
    # Pixels that may straddle their polygon's boundary.
    boundary_pixels: np.ndarray
    boundary_polys: np.ndarray
    # Center-covered boundary pixels (what the pure raster pass counts).
    covered_boundary_pixels: np.ndarray
    covered_boundary_polys: np.ndarray
    num_polygons: int
    viewport: Viewport

    @property
    def num_interior_fragments(self) -> int:
        return len(self.interior_pixels)

    @property
    def num_boundary_fragments(self) -> int:
        return len(self.boundary_pixels)

    # All center-covered pairs (interior + covered boundary) — what the
    # pure raster join iterates.  Concatenated once per table (builders
    # touch these eagerly) instead of on every query: the join runs per
    # brush gesture, and re-allocating megabyte pair arrays per gesture
    # dominated small-query join time.  ``cached_property`` stores into
    # ``__dict__`` directly, so it composes with the frozen dataclass.

    @cached_property
    def covered_pixels(self) -> np.ndarray:
        return np.concatenate(
            [self.interior_pixels, self.covered_boundary_pixels])

    @cached_property
    def covered_polys(self) -> np.ndarray:
        return np.concatenate(
            [self.interior_polys, self.covered_boundary_polys])

    @cached_property
    def intervals(self) -> IntervalSet:
        """FULL/PARTIAL interval runs per polygon (see
        :class:`IntervalSet`).  Interior fragments are per-polygon
        sorted by construction (``np.setdiff1d``), boundary fragments
        by ``np.unique`` — the precondition of the run encoder."""
        width = self.viewport.width
        fo, fs, fl = _runs_by_polygon(self.interior_pixels,
                                      self.interior_polys,
                                      self.num_polygons, width)
        po, ps, pl = _runs_by_polygon(self.boundary_pixels,
                                      self.boundary_polys,
                                      self.num_polygons, width)
        return IntervalSet(full_offsets=fo, full_starts=fs, full_lengths=fl,
                           partial_offsets=po, partial_starts=ps,
                           partial_lengths=pl)

    @cached_property
    def cell_classes(self) -> np.ndarray:
        """Per-pixel cell class over the union of all polygons.

        PARTIAL wins over FULL: a point in any polygon's PARTIAL cell
        must be bucketed for exact testing even if the cell is FULL for
        another polygon (overlapping regions).  One int8 canvas, built
        once per table — the accurate join classifies every point pass
        against it.
        """
        classes = np.zeros(self.viewport.num_pixels, dtype=np.int8)
        classes[self.interior_pixels] = CELL_FULL
        classes[self.boundary_pixels] = CELL_PARTIAL
        return classes


def build_fragment_table(geometries: list[Geometry],
                         viewport: Viewport) -> FragmentTable:
    """Rasterize every region once and assemble the fragment tables."""
    int_pix: list[np.ndarray] = []
    int_poly: list[np.ndarray] = []
    bnd_pix: list[np.ndarray] = []
    bnd_poly: list[np.ndarray] = []
    cov_bnd_pix: list[np.ndarray] = []
    cov_bnd_poly: list[np.ndarray] = []

    for gid, geom in enumerate(geometries):
        covered = coverage_fragments(geom, viewport)
        boundary = boundary_pixels(geom, viewport)
        if len(boundary):
            interior = np.setdiff1d(covered, boundary, assume_unique=False)
            covered_boundary = np.intersect1d(covered, boundary,
                                              assume_unique=False)
        else:
            interior = covered
            covered_boundary = boundary
        if len(interior):
            int_pix.append(interior)
            int_poly.append(np.full(len(interior), gid, dtype=np.int32))
        if len(boundary):
            bnd_pix.append(boundary)
            bnd_poly.append(np.full(len(boundary), gid, dtype=np.int32))
        if len(covered_boundary):
            cov_bnd_pix.append(covered_boundary)
            cov_bnd_poly.append(
                np.full(len(covered_boundary), gid, dtype=np.int32))

    def _cat(parts, dtype):
        if not parts:
            return np.empty(0, dtype=dtype)
        return np.concatenate(parts)

    table = FragmentTable(
        interior_pixels=_cat(int_pix, np.int64),
        interior_polys=_cat(int_poly, np.int32),
        boundary_pixels=_cat(bnd_pix, np.int64),
        boundary_polys=_cat(bnd_poly, np.int32),
        covered_boundary_pixels=_cat(cov_bnd_pix, np.int64),
        covered_boundary_polys=_cat(cov_bnd_poly, np.int32),
        num_polygons=len(geometries),
        viewport=viewport,
    )
    # Materialize the concatenated covered arrays and the interval
    # classification now, while the table is cold — queries then never
    # allocate them per gesture.
    table.covered_pixels
    table.covered_polys
    table.intervals
    table.cell_classes
    return table
