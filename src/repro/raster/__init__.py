"""Software rasterization pipeline — the GPU substitute.

The original Raster Join runs on the OpenGL rendering pipeline; here the
same stages are implemented in NumPy:

* :class:`Viewport` — the world->pixel transform (fragment-center
  sampling, like the GPU);
* ``scanline`` — polygon fragment generation (scanline fill with the
  even-odd rule) and conservative boundary-pixel detection;
* ``canvas`` — framebuffers with additive / min / max blending
  (``scatter_*``) plus the per-pixel point buckets the accurate variant
  needs;
* :class:`FragmentTable` — the rasterized form of a region set.
"""

from .canvas import (
    PixelBuckets,
    gather_reduce,
    gather_sum,
    scatter_count,
    scatter_max,
    scatter_min,
    scatter_sum,
)
from .fragments import FragmentTable, IntervalSet, build_fragment_table
from .pyramid import PYRAMID_OPS, build_pyramid, reduce2x2
from .scanline import (
    boundary_pixels,
    boundary_pixels_sampled,
    coverage_fragments,
    rasterize_polygon,
    rasterize_triangles,
)
from .viewport import Viewport

__all__ = [
    "FragmentTable",
    "IntervalSet",
    "PYRAMID_OPS",
    "PixelBuckets",
    "Viewport",
    "boundary_pixels",
    "boundary_pixels_sampled",
    "build_fragment_table",
    "build_pyramid",
    "coverage_fragments",
    "reduce2x2",
    "gather_reduce",
    "gather_sum",
    "rasterize_polygon",
    "rasterize_triangles",
    "scatter_count",
    "scatter_max",
    "scatter_min",
    "scatter_sum",
]
