"""Canvases (framebuffers) and blending scatter operations.

The GPU raster join accumulates point contributions into framebuffer
pixels with additive (or min/max) blending; these functions are the
NumPy equivalents.  A canvas is simply a flat ``float64`` array with one
slot per pixel, indexed by flat pixel id.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError


def scatter_count(pixel_ids: np.ndarray, num_pixels: int) -> np.ndarray:
    """Additive blending of unit contributions: point count per pixel."""
    return np.bincount(pixel_ids, minlength=num_pixels).astype(np.float64)


def scatter_sum(pixel_ids: np.ndarray, weights: np.ndarray,
                num_pixels: int) -> np.ndarray:
    """Additive blending of weighted contributions: value sum per pixel."""
    if len(pixel_ids) != len(weights):
        raise ExecutionError("pixel_ids and weights length mismatch")
    return np.bincount(pixel_ids, weights=weights, minlength=num_pixels)


def scatter_min(pixel_ids: np.ndarray, values: np.ndarray,
                num_pixels: int) -> np.ndarray:
    """MIN blending: per-pixel minimum; +inf where no point landed.

    Implemented by sorting (pixel, value) pairs and ``minimum.reduceat``
    over group boundaries — far faster than ``np.minimum.at``.
    """
    return _scatter_reduce(pixel_ids, values, num_pixels, np.minimum, np.inf)


def scatter_max(pixel_ids: np.ndarray, values: np.ndarray,
                num_pixels: int) -> np.ndarray:
    """MAX blending: per-pixel maximum; -inf where no point landed."""
    return _scatter_reduce(pixel_ids, values, num_pixels, np.maximum, -np.inf)


def _scatter_reduce(pixel_ids, values, num_pixels, ufunc, fill):
    if len(pixel_ids) != len(values):
        raise ExecutionError("pixel_ids and values length mismatch")
    out = np.full(num_pixels, fill, dtype=np.float64)
    if len(pixel_ids) == 0:
        return out
    # Plain quicksort: stability is irrelevant for commutative reduces
    # and measurably faster than radix on int64 keys.
    order = np.argsort(pixel_ids)
    pix_sorted = pixel_ids[order]
    val_sorted = np.asarray(values, dtype=np.float64)[order]
    group_starts = np.flatnonzero(
        np.concatenate(([True], pix_sorted[1:] != pix_sorted[:-1])))
    reduced = ufunc.reduceat(val_sorted, group_starts)
    out[pix_sorted[group_starts]] = reduced
    return out


def gather_sum(canvas: np.ndarray, pixel_ids: np.ndarray,
               group_ids: np.ndarray, num_groups: int) -> np.ndarray:
    """Sum canvas values over fragments grouped by polygon id.

    This is the join step: fragment ``k`` contributes
    ``canvas[pixel_ids[k]]`` to group ``group_ids[k]``.
    """
    if len(pixel_ids) != len(group_ids):
        raise ExecutionError("pixel_ids and group_ids length mismatch")
    if len(pixel_ids) == 0:
        return np.zeros(num_groups, dtype=np.float64)
    return np.bincount(group_ids, weights=canvas[pixel_ids],
                       minlength=num_groups)


def gather_reduce(canvas: np.ndarray, pixel_ids: np.ndarray,
                  group_ids: np.ndarray, num_groups: int,
                  ufunc, fill: float) -> np.ndarray:
    """MIN/MAX join step: reduce canvas values per group, skipping the
    canvas fill value (pixels no point landed in)."""
    out = np.full(num_groups, fill, dtype=np.float64)
    if len(pixel_ids) == 0:
        return out
    vals = canvas[pixel_ids]
    live = vals != fill
    if not live.any():
        return out
    vals = vals[live]
    groups = group_ids[live]
    order = np.argsort(groups, kind="stable")
    groups_sorted = groups[order]
    vals_sorted = vals[order]
    starts = np.flatnonzero(
        np.concatenate(([True], groups_sorted[1:] != groups_sorted[:-1])))
    reduced = ufunc.reduceat(vals_sorted, starts)
    out[groups_sorted[starts]] = reduced
    return out


class PixelBuckets:
    """CSR mapping from pixel id to the points that landed in it.

    Built once per (table, viewport) pass; the accurate raster join uses
    it to fetch the candidate points of each boundary pixel without
    touching the rest of the data.
    """

    def __init__(self, pixel_ids: np.ndarray, num_pixels: int,
                 point_ids: np.ndarray | None = None):
        self.num_pixels = int(num_pixels)
        if point_ids is None:
            point_ids = np.arange(len(pixel_ids), dtype=np.int64)
        # Bucket membership is order-free; default sort beats radix here.
        order = np.argsort(pixel_ids)
        self.order = point_ids[order]
        sorted_pix = pixel_ids[order]
        self.offsets = np.searchsorted(
            sorted_pix, np.arange(num_pixels + 1), side="left")

    def points_in_pixel(self, pixel_id: int) -> np.ndarray:
        """Ids of points in one pixel."""
        return self.order[self.offsets[pixel_id] : self.offsets[pixel_id + 1]]

    def points_in_pixels(self, pixel_ids: np.ndarray) -> np.ndarray:
        """Ids of all points in any of the given pixels (vectorized).

        Uses the ragged-range trick: per-pixel (start, length) runs are
        expanded into one flat index array without a Python loop.
        """
        if len(pixel_ids) == 0:
            return np.empty(0, dtype=np.int64)
        starts = self.offsets[pixel_ids]
        stops = self.offsets[pixel_ids + 1]
        lengths = stops - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        keep = lengths > 0
        starts = starts[keep]
        lengths = lengths[keep]
        flat_starts = np.repeat(starts, lengths)
        cum = np.concatenate(([0], np.cumsum(lengths)[:-1]))
        offsets = np.arange(total) - np.repeat(cum, lengths)
        return self.order[flat_starts + offsets]

    def counts_in_pixels(self, pixel_ids: np.ndarray) -> np.ndarray:
        """Number of points per given pixel."""
        return self.offsets[pixel_ids + 1] - self.offsets[pixel_ids]
