"""Canvases (framebuffers) and blending scatter operations.

The GPU raster join accumulates point contributions into framebuffer
pixels with additive (or min/max) blending; these functions are the
NumPy-style equivalents.  A canvas is simply a flat ``float64`` array
with one slot per pixel, indexed by flat pixel id.

The actual loops live in :mod:`repro.kernels` (NumPy reference plus an
optional numba-compiled drop-in); this module validates inputs and
dispatches to the process-global selected kernel, so every scatter and
gather call site in the repo picks up the compiled kernels at once.
"""

from __future__ import annotations

import numpy as np

from .. import kernels
from ..errors import ExecutionError
from ..kernels import numpy_impl as _numpy_impl


def scatter_count(pixel_ids: np.ndarray, num_pixels: int) -> np.ndarray:
    """Additive blending of unit contributions: point count per pixel."""
    return kernels.active().scatter_count(pixel_ids, int(num_pixels))


def scatter_sum(pixel_ids: np.ndarray, weights: np.ndarray,
                num_pixels: int) -> np.ndarray:
    """Additive blending of weighted contributions: value sum per pixel."""
    if len(pixel_ids) != len(weights):
        raise ExecutionError("pixel_ids and weights length mismatch")
    return kernels.active().scatter_sum(pixel_ids, weights, int(num_pixels))


def scatter_min(pixel_ids: np.ndarray, values: np.ndarray,
                num_pixels: int) -> np.ndarray:
    """MIN blending: per-pixel minimum; +inf where no point landed."""
    if len(pixel_ids) != len(values):
        raise ExecutionError("pixel_ids and values length mismatch")
    return kernels.active().scatter_min(pixel_ids, values, int(num_pixels))


def scatter_max(pixel_ids: np.ndarray, values: np.ndarray,
                num_pixels: int) -> np.ndarray:
    """MAX blending: per-pixel maximum; -inf where no point landed."""
    if len(pixel_ids) != len(values):
        raise ExecutionError("pixel_ids and values length mismatch")
    return kernels.active().scatter_max(pixel_ids, values, int(num_pixels))


def gather_sum(canvas: np.ndarray, pixel_ids: np.ndarray,
               group_ids: np.ndarray, num_groups: int) -> np.ndarray:
    """Sum canvas values over fragments grouped by polygon id.

    This is the join step: fragment ``k`` contributes
    ``canvas[pixel_ids[k]]`` to group ``group_ids[k]``.
    """
    if len(pixel_ids) != len(group_ids):
        raise ExecutionError("pixel_ids and group_ids length mismatch")
    return kernels.active().gather_sum(canvas, pixel_ids, group_ids,
                                       int(num_groups))


def gather_reduce(canvas: np.ndarray, pixel_ids: np.ndarray,
                  group_ids: np.ndarray, num_groups: int,
                  ufunc, fill: float) -> np.ndarray:
    """MIN/MAX join step: reduce canvas values per group, skipping the
    canvas fill value (pixels no point landed in)."""
    kernel = kernels.active()
    if ufunc is np.minimum:
        return kernel.gather_min(canvas, pixel_ids, group_ids,
                                 int(num_groups), fill)
    if ufunc is np.maximum:
        return kernel.gather_max(canvas, pixel_ids, group_ids,
                                 int(num_groups), fill)
    # Exotic ufuncs stay on the NumPy reference path.
    return _numpy_impl.gather_generic(canvas, pixel_ids, group_ids,
                                      int(num_groups), ufunc, fill)


class PixelBuckets:
    """CSR mapping from pixel id to the points that landed in it.

    Built once per (table, viewport) pass; the accurate raster join uses
    it to fetch the candidate points of each boundary pixel without
    touching the rest of the data.
    """

    def __init__(self, pixel_ids: np.ndarray, num_pixels: int,
                 point_ids: np.ndarray | None = None):
        self.num_pixels = int(num_pixels)
        if point_ids is None:
            point_ids = np.arange(len(pixel_ids), dtype=np.int64)
        # Bucket membership is order-free; default sort beats radix here.
        order = np.argsort(pixel_ids)
        self.order = point_ids[order]
        # Offsets by counting, not by binary-searching every pixel id:
        # O(points + pixels) instead of O(pixels log points).
        counts = np.bincount(pixel_ids, minlength=num_pixels)
        self.offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)])

    def points_in_pixel(self, pixel_id: int) -> np.ndarray:
        """Ids of points in one pixel."""
        return self.order[self.offsets[pixel_id] : self.offsets[pixel_id + 1]]

    def points_in_pixels(self, pixel_ids: np.ndarray) -> np.ndarray:
        """Ids of all points in any of the given pixels (vectorized).

        Per-pixel (start, length) runs of the CSR order array are
        expanded into one flat index array by the kernel's
        ``expand_ranges`` — no Python loop.
        """
        if len(pixel_ids) == 0:
            return np.empty(0, dtype=np.int64)
        starts = self.offsets[pixel_ids]
        lengths = self.offsets[pixel_ids + 1] - starts
        idx = kernels.active().expand_ranges(starts, lengths)
        if len(idx) == 0:
            return np.empty(0, dtype=np.int64)
        return self.order[idx]

    def points_in_runs(self, run_starts: np.ndarray,
                       run_lengths: np.ndarray) -> np.ndarray:
        """Ids of all points in runs of *consecutive* pixels.

        A run of ``length`` consecutive pixel ids maps to one contiguous
        slice of the CSR order array, so the candidate fetch costs one
        range per *interval run* instead of one per pixel — the payoff
        of the raster-interval classification.  Output order equals
        ``points_in_pixels`` over the expanded pixel list.
        """
        if len(run_starts) == 0:
            return np.empty(0, dtype=np.int64)
        lo = self.offsets[run_starts]
        hi = self.offsets[run_starts + run_lengths]
        idx = kernels.active().expand_ranges(lo, hi - lo)
        if len(idx) == 0:
            return np.empty(0, dtype=np.int64)
        return self.order[idx]

    def points_in_grouped_runs(self, run_starts: np.ndarray,
                               run_lengths: np.ndarray,
                               group_offsets: np.ndarray
                               ) -> tuple[np.ndarray, np.ndarray]:
        """One expansion for *all* groups' runs: ``(point_ids,
        offsets)`` where group ``g`` owns ``point_ids[offsets[g]:
        offsets[g + 1]]`` — the same ids, in the same order, that
        per-group :meth:`points_in_runs` calls would produce, without
        paying the expansion overhead once per group.
        """
        lo = self.offsets[run_starts]
        counts = self.offsets[run_starts + run_lengths] - lo
        cum = np.concatenate([np.zeros(1, dtype=np.int64),
                              np.cumsum(counts, dtype=np.int64)])
        idx = kernels.active().expand_ranges(lo, counts)
        ids = self.order[idx] if len(idx) else np.empty(0, dtype=np.int64)
        return ids, cum[group_offsets]

    def counts_in_pixels(self, pixel_ids: np.ndarray) -> np.ndarray:
        """Number of points per given pixel."""
        return self.offsets[pixel_ids + 1] - self.offsets[pixel_ids]
