"""Filter expressions — the ``[AND filterCondition]*`` of the query.

Filters form a small composable AST evaluated to boolean row masks.
They are deliberately cheap: the whole premise of on-the-fly evaluation
(vs. pre-aggregation) is that arbitrary predicate combinations reduce to
vectorized mask computations over the columns.

Usage::

    from repro.table import F
    expr = (F("fare") > 10.0) & F("hour").between(7, 9) & (F("kind") == "yellow")
    mask = expr.mask(table)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import QueryError
from .column import CATEGORICAL, TIMESTAMP
from .table import PointTable

_OPS = ("<", "<=", ">", ">=", "==", "!=")


class FilterExpr:
    """Base class of filter AST nodes."""

    def mask(self, table: PointTable) -> np.ndarray:
        """Evaluate to a boolean mask over the table's rows."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names of the columns this expression reads."""
        raise NotImplementedError

    def __and__(self, other: "FilterExpr") -> "FilterExpr":
        return And(self, other)

    def __or__(self, other: "FilterExpr") -> "FilterExpr":
        return Or(self, other)

    def __invert__(self) -> "FilterExpr":
        return Not(self)


@dataclass(frozen=True)
class Comparison(FilterExpr):
    """``column <op> value`` for a scalar value.

    For categorical columns the value is a string label that is resolved
    to its code at evaluation time (only ``==`` / ``!=`` make sense).
    """

    column: str
    op: str
    value: object

    def __post_init__(self):
        if self.op not in _OPS:
            raise QueryError(f"unknown comparison operator {self.op!r}")

    def mask(self, table: PointTable) -> np.ndarray:
        col = table.column(self.column)
        value = self.value
        if col.kind == CATEGORICAL:
            if self.op not in ("==", "!="):
                raise QueryError(
                    f"operator {self.op!r} not supported on categorical "
                    f"column {self.column!r}"
                )
            if isinstance(value, str):
                try:
                    value = col.code_for(value)
                except Exception:
                    # Unknown label matches nothing (or everything for !=).
                    n = len(table)
                    return np.full(n, self.op == "!=", dtype=bool)
        vals = col.values
        if self.op == "<":
            return vals < value
        if self.op == "<=":
            return vals <= value
        if self.op == ">":
            return vals > value
        if self.op == ">=":
            return vals >= value
        if self.op == "==":
            return vals == value
        return vals != value

    def columns(self) -> set[str]:
        return {self.column}


@dataclass(frozen=True)
class Between(FilterExpr):
    """``lo <= column <= hi`` (closed interval)."""

    column: str
    lo: object
    hi: object

    def mask(self, table: PointTable) -> np.ndarray:
        vals = table.column(self.column).values
        return (vals >= self.lo) & (vals <= self.hi)

    def columns(self) -> set[str]:
        return {self.column}


@dataclass(frozen=True)
class IsIn(FilterExpr):
    """``column IN (values...)``; labels are resolved for categoricals."""

    column: str
    values: tuple

    def mask(self, table: PointTable) -> np.ndarray:
        col = table.column(self.column)
        values = list(self.values)
        if col.kind == CATEGORICAL:
            codes = []
            for v in values:
                if isinstance(v, str) and v in col.categories:
                    codes.append(col.categories.index(v))
                elif isinstance(v, (int, np.integer)):
                    codes.append(int(v))
            values = codes
        if not values:
            return np.zeros(len(table), dtype=bool)
        return np.isin(col.values, np.asarray(values))

    def columns(self) -> set[str]:
        return {self.column}


@dataclass(frozen=True)
class TimeRange(FilterExpr):
    """Half-open time interval ``start <= t < end`` on a timestamp column.

    Half-open so consecutive windows partition the timeline — the
    convention Urbane's timeline brushing uses.
    """

    column: str
    start: int
    end: int

    def mask(self, table: PointTable) -> np.ndarray:
        col = table.column(self.column)
        if col.kind != TIMESTAMP:
            raise QueryError(
                f"TimeRange needs a timestamp column, {self.column!r} is "
                f"{col.kind}"
            )
        vals = col.values
        return (vals >= int(self.start)) & (vals < int(self.end))

    def columns(self) -> set[str]:
        return {self.column}


@dataclass(frozen=True)
class And(FilterExpr):
    left: FilterExpr
    right: FilterExpr

    def mask(self, table: PointTable) -> np.ndarray:
        return self.left.mask(table) & self.right.mask(table)

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()


@dataclass(frozen=True)
class Or(FilterExpr):
    left: FilterExpr
    right: FilterExpr

    def mask(self, table: PointTable) -> np.ndarray:
        return self.left.mask(table) | self.right.mask(table)

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()


@dataclass(frozen=True)
class Not(FilterExpr):
    inner: FilterExpr

    def mask(self, table: PointTable) -> np.ndarray:
        return ~self.inner.mask(table)

    def columns(self) -> set[str]:
        return self.inner.columns()


@dataclass(frozen=True)
class TrueFilter(FilterExpr):
    """Matches every row (the empty filter list)."""

    def mask(self, table: PointTable) -> np.ndarray:
        return np.ones(len(table), dtype=bool)

    def columns(self) -> set[str]:
        return set()


class F:
    """Column reference with operator sugar for building filters.

    ``F("fare") > 10`` returns a :class:`Comparison`; ``F("t").between``
    and ``F("kind").isin`` build the other node types.
    """

    def __init__(self, column: str):
        self.column = column

    def __lt__(self, value) -> Comparison:
        return Comparison(self.column, "<", value)

    def __le__(self, value) -> Comparison:
        return Comparison(self.column, "<=", value)

    def __gt__(self, value) -> Comparison:
        return Comparison(self.column, ">", value)

    def __ge__(self, value) -> Comparison:
        return Comparison(self.column, ">=", value)

    def __eq__(self, value) -> Comparison:  # type: ignore[override]
        return Comparison(self.column, "==", value)

    def __ne__(self, value) -> Comparison:  # type: ignore[override]
        return Comparison(self.column, "!=", value)

    def __hash__(self):
        return hash(self.column)

    def between(self, lo, hi) -> Between:
        return Between(self.column, lo, hi)

    def isin(self, values) -> IsIn:
        return IsIn(self.column, tuple(values))

    def time_range(self, start: int, end: int) -> TimeRange:
        return TimeRange(self.column, int(start), int(end))


def combine_filters(filters) -> FilterExpr:
    """AND together a list of filters (empty list -> match-all)."""
    exprs = list(filters or [])
    if not exprs:
        return TrueFilter()
    result = exprs[0]
    for expr in exprs[1:]:
        result = And(result, expr)
    return result


def estimate_selectivity(expr: FilterExpr, table: PointTable,
                         sample_size: int = 10_000, seed: int = 0) -> float:
    """Estimated fraction of rows matching ``expr`` (sample-based).

    Used by the planner to decide whether filtering before rasterization
    is worthwhile; exact for tables smaller than the sample size.
    """
    if len(table) == 0:
        return 0.0
    if len(table) <= sample_size:
        return float(expr.mask(table).mean())
    sample = table.sample(sample_size, seed=seed)
    return float(expr.mask(sample).mean())
