"""Columnar point-table substrate.

The ``P(loc, a1, a2, ...)`` side of the spatial aggregation query: an
immutable column store for 2-D points with numeric / timestamp /
categorical attributes, plus the filter-expression AST that implements
the query's ad-hoc ``filterCondition`` list.
"""

from .column import (
    CATEGORICAL,
    NUMERIC,
    TIMESTAMP,
    Column,
    categorical_column,
    categorical_from_codes,
    numeric_column,
    timestamp_column,
)
from .filters import (
    And,
    Between,
    Comparison,
    F,
    FilterExpr,
    IsIn,
    Not,
    Or,
    TimeRange,
    TrueFilter,
    combine_filters,
    estimate_selectivity,
)
from .io import iter_csv_chunks, load_csv, load_npz, save_csv, save_npz
from .table import PointTable, table_from_dict

__all__ = [
    "And",
    "Between",
    "CATEGORICAL",
    "Column",
    "Comparison",
    "F",
    "FilterExpr",
    "IsIn",
    "NUMERIC",
    "Not",
    "Or",
    "PointTable",
    "TIMESTAMP",
    "TimeRange",
    "TrueFilter",
    "categorical_column",
    "categorical_from_codes",
    "combine_filters",
    "estimate_selectivity",
    "iter_csv_chunks",
    "load_csv",
    "load_npz",
    "numeric_column",
    "save_csv",
    "save_npz",
    "table_from_dict",
    "timestamp_column",
]
