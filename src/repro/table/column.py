"""Typed columns for the in-memory column store.

Three logical column kinds cover the urban data sets:

* ``numeric``    — float64/int64 measures (fare, distance, counts, ...)
* ``timestamp``  — int64 seconds since the Unix epoch
* ``categorical``— small string domains stored as int32 codes + a
  category list (complaint type, payment type, ...)

Columns are immutable wrappers around NumPy arrays; filtering produces
new columns that share the underlying buffers where possible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SchemaError

NUMERIC = "numeric"
TIMESTAMP = "timestamp"
CATEGORICAL = "categorical"

_KINDS = (NUMERIC, TIMESTAMP, CATEGORICAL)


@dataclass(frozen=True)
class Column:
    """A named, typed, immutable 1-D data column."""

    name: str
    kind: str
    values: np.ndarray
    categories: tuple[str, ...] = ()

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise SchemaError(f"unknown column kind {self.kind!r}")
        vals = np.asarray(self.values)
        if vals.ndim != 1:
            raise SchemaError(f"column {self.name!r} must be 1-D, got {vals.ndim}-D")
        if self.kind == NUMERIC:
            if vals.dtype.kind not in "fiu":
                raise SchemaError(
                    f"numeric column {self.name!r} has dtype {vals.dtype}"
                )
            vals = vals.astype(np.float64, copy=False)
        elif self.kind == TIMESTAMP:
            if vals.dtype.kind not in "iu":
                raise SchemaError(
                    f"timestamp column {self.name!r} must hold integer "
                    f"epoch-seconds, got dtype {vals.dtype}"
                )
            vals = vals.astype(np.int64, copy=False)
        else:  # CATEGORICAL
            if vals.dtype.kind not in "iu":
                raise SchemaError(
                    f"categorical column {self.name!r} must hold int codes"
                )
            vals = vals.astype(np.int32, copy=False)
            if not self.categories:
                raise SchemaError(
                    f"categorical column {self.name!r} needs a category list"
                )
            if vals.size and (vals.min() < 0 or vals.max() >= len(self.categories)):
                raise SchemaError(
                    f"categorical column {self.name!r} has out-of-range codes"
                )
        vals.flags.writeable = False
        object.__setattr__(self, "values", vals)
        object.__setattr__(self, "categories", tuple(self.categories))

    def __len__(self) -> int:
        return len(self.values)

    def take(self, indices_or_mask) -> "Column":
        """New column holding the selected rows."""
        return Column(
            self.name, self.kind, self.values[indices_or_mask].copy(), self.categories
        )

    def code_for(self, label: str) -> int:
        """The int code of a categorical label (raises for non-members)."""
        if self.kind != CATEGORICAL:
            raise SchemaError(f"column {self.name!r} is not categorical")
        try:
            return self.categories.index(label)
        except ValueError:
            raise SchemaError(
                f"label {label!r} not in categories of column {self.name!r}"
            ) from None

    def decode(self) -> np.ndarray:
        """Categorical codes back to their string labels."""
        if self.kind != CATEGORICAL:
            raise SchemaError(f"column {self.name!r} is not categorical")
        return np.asarray(self.categories, dtype=object)[self.values]


def numeric_column(name: str, values) -> Column:
    """Build a numeric column from any array-like of numbers."""
    return Column(name, NUMERIC, np.asarray(values, dtype=np.float64))


def timestamp_column(name: str, values) -> Column:
    """Build a timestamp column from epoch-second integers."""
    return Column(name, TIMESTAMP, np.asarray(values, dtype=np.int64))


def categorical_column(name: str, labels) -> Column:
    """Build a categorical column from an array-like of string labels.

    The category list is the sorted set of distinct labels, so two
    columns built from the same label domain are comparable.
    """
    arr = np.asarray(labels, dtype=object)
    cats = sorted(set(arr.tolist()))
    lookup = {c: i for i, c in enumerate(cats)}
    codes = np.fromiter((lookup[v] for v in arr), dtype=np.int32, count=len(arr))
    return Column(name, CATEGORICAL, codes, tuple(cats))


def categorical_from_codes(name: str, codes, categories) -> Column:
    """Build a categorical column directly from codes + category list."""
    return Column(name, CATEGORICAL, np.asarray(codes, dtype=np.int32), tuple(categories))
