"""The point table: a tiny columnar store for spatio-temporal points.

A :class:`PointTable` is the ``P(loc, a1, a2, ...)`` relation of the
paper's spatial aggregation query: planar ``(x, y)`` locations plus any
number of typed attribute columns, one of which is conventionally the
event timestamp.  Tables are immutable; filters return new tables that
share column buffers.
"""

from __future__ import annotations

import numpy as np

from ..errors import SchemaError
from ..geometry import BBox
from .column import (
    CATEGORICAL,
    Column,
    categorical_column,
    numeric_column,
    timestamp_column,
)


class PointTable:
    """Immutable columnar table of 2-D points with typed attributes."""

    def __init__(self, x, y, columns: dict[str, Column] | None = None,
                 name: str = "points"):
        self.name = name
        self._x = np.ascontiguousarray(x, dtype=np.float64)
        self._y = np.ascontiguousarray(y, dtype=np.float64)
        if self._x.ndim != 1 or self._y.ndim != 1:
            raise SchemaError("x and y must be 1-D arrays")
        if len(self._x) != len(self._y):
            raise SchemaError(
                f"x ({len(self._x)}) and y ({len(self._y)}) lengths differ"
            )
        if self._x.size and not (np.isfinite(self._x).all()
                                 and np.isfinite(self._y).all()):
            raise SchemaError(
                "point coordinates must be finite (found NaN/inf)")
        self._x.flags.writeable = False
        self._y.flags.writeable = False
        self._columns: dict[str, Column] = {}
        for colname, col in (columns or {}).items():
            if colname != col.name:
                raise SchemaError(
                    f"column registered under {colname!r} but named {col.name!r}"
                )
            if len(col) != len(self._x):
                raise SchemaError(
                    f"column {colname!r} has {len(col)} rows, table has "
                    f"{len(self._x)}"
                )
            if colname in ("x", "y"):
                raise SchemaError("'x' and 'y' are reserved column names")
            self._columns[colname] = col

    # -- construction ----------------------------------------------------

    @classmethod
    def from_arrays(cls, x, y, name: str = "points", **attrs) -> "PointTable":
        """Build a table from coordinate arrays plus keyword attributes.

        Attribute kinds are inferred: float/int arrays become numeric,
        object/str arrays become categorical.  Pass a prebuilt
        :class:`Column` for explicit control (e.g. timestamps).
        """
        columns: dict[str, Column] = {}
        for attr_name, values in attrs.items():
            if isinstance(values, Column):
                col = values
                if col.name != attr_name:
                    col = Column(attr_name, col.kind, col.values.copy(), col.categories)
            else:
                arr = np.asarray(values)
                if arr.dtype.kind in "OU":
                    col = categorical_column(attr_name, arr)
                else:
                    col = numeric_column(attr_name, arr)
            columns[attr_name] = col
        return cls(x, y, columns, name=name)

    # -- basic accessors ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._x)

    @property
    def x(self) -> np.ndarray:
        return self._x

    @property
    def y(self) -> np.ndarray:
        return self._y

    @property
    def xy(self) -> np.ndarray:
        """Coordinates as an ``(n, 2)`` array (copies)."""
        return np.column_stack([self._x, self._y])

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def column(self, name: str) -> Column:
        """Look up a column by name; raises :class:`SchemaError` if absent."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}; "
                f"available: {sorted(self._columns)}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def values(self, name: str) -> np.ndarray:
        """The raw value array of a column."""
        return self.column(name).values

    @property
    def bbox(self) -> BBox:
        """Spatial envelope of the points."""
        if len(self) == 0:
            raise SchemaError("bbox of an empty table")
        return BBox(
            float(self._x.min()),
            float(self._y.min()),
            float(self._x.max()),
            float(self._y.max()),
        )

    # -- row selection -----------------------------------------------------

    def take(self, indices_or_mask) -> "PointTable":
        """New table containing the selected rows."""
        cols = {n: c.take(indices_or_mask) for n, c in self._columns.items()}
        return PointTable(
            self._x[indices_or_mask].copy(),
            self._y[indices_or_mask].copy(),
            cols,
            name=self.name,
        )

    def head(self, n: int) -> "PointTable":
        """The first ``n`` rows."""
        return self.take(np.arange(min(n, len(self))))

    def sample(self, n: int, seed: int = 0) -> "PointTable":
        """A uniform random sample of ``n`` rows (without replacement)."""
        if n >= len(self):
            return self
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(self), size=n, replace=False)
        return self.take(np.sort(idx))

    def with_column(self, col: Column) -> "PointTable":
        """New table with ``col`` added (or replaced)."""
        cols = dict(self._columns)
        cols[col.name] = col
        return PointTable(self._x, self._y, cols, name=self.name)

    def rename(self, name: str) -> "PointTable":
        return PointTable(self._x, self._y, dict(self._columns), name=name)

    # -- combination ---------------------------------------------------------

    @staticmethod
    def concat(tables: list["PointTable"], name: str | None = None) -> "PointTable":
        """Row-wise concatenation of tables with identical schemas."""
        if not tables:
            raise SchemaError("concat of empty table list")
        first = tables[0]
        for t in tables[1:]:
            if t.column_names != first.column_names:
                raise SchemaError(
                    f"schema mismatch in concat: {t.column_names} vs "
                    f"{first.column_names}"
                )
        x = np.concatenate([t.x for t in tables])
        y = np.concatenate([t.y for t in tables])
        cols: dict[str, Column] = {}
        for cname in first.column_names:
            parts = [t.column(cname) for t in tables]
            kind = parts[0].kind
            if any(p.kind != kind for p in parts):
                raise SchemaError(f"column {cname!r} kind mismatch in concat")
            if kind == CATEGORICAL:
                cats = parts[0].categories
                if any(p.categories != cats for p in parts):
                    # Re-encode through labels to merge category domains.
                    labels = np.concatenate([p.decode() for p in parts])
                    cols[cname] = categorical_column(cname, labels)
                    continue
                values = np.concatenate([p.values for p in parts])
                cols[cname] = Column(cname, kind, values, cats)
            else:
                values = np.concatenate([p.values for p in parts])
                cols[cname] = Column(cname, kind, values)
        return PointTable(x, y, cols, name=name or first.name)

    def describe(self) -> str:
        """One-line human-readable schema summary."""
        parts = [f"{n}:{c.kind}" for n, c in self._columns.items()]
        return f"PointTable({self.name!r}, rows={len(self)}, cols=[{', '.join(parts)}])"

    __repr__ = describe


def table_from_dict(data: dict, name: str = "points") -> PointTable:
    """Build a table from a plain dict with ``x``/``y`` plus attributes.

    Convenience used by tests and examples; ``t`` / ``timestamp`` keys
    holding integer arrays become timestamp columns.
    """
    if "x" not in data or "y" not in data:
        raise SchemaError("dict needs 'x' and 'y' keys")
    attrs = {}
    for key, vals in data.items():
        if key in ("x", "y"):
            continue
        arr = np.asarray(vals)
        if key in ("t", "timestamp", "time") and arr.dtype.kind in "iu":
            attrs[key] = timestamp_column(key, arr)
        else:
            attrs[key] = vals
    return PointTable.from_arrays(data["x"], data["y"], name=name, **attrs)
