"""Table persistence: NPZ (fast, lossless) and CSV (interchange).

CSV reading is chunked: :func:`iter_csv_chunks` streams a file as a
sequence of bounded :class:`PointTable` chunks (what the out-of-core
store builder ingests), and :func:`load_csv` is a thin consumer of that
stream — peak memory is one chunk of parsed rows, not the whole file's
string rows at once.
"""

from __future__ import annotations

import csv
import itertools
from pathlib import Path

import numpy as np

from ..errors import SchemaError
from .column import (
    CATEGORICAL,
    NUMERIC,
    TIMESTAMP,
    Column,
    categorical_column,
)
from .table import PointTable

DEFAULT_CSV_CHUNK_ROWS = 100_000


def save_npz(table: PointTable, path) -> None:
    """Serialize a table to a compressed ``.npz`` archive.

    Column kinds and category lists are stored alongside the data so the
    round trip is exact.
    """
    payload: dict[str, np.ndarray] = {
        "__x__": table.x,
        "__y__": table.y,
        "__name__": np.array([table.name]),
    }
    meta = []
    for cname in table.column_names:
        col = table.column(cname)
        payload[f"col:{cname}"] = col.values
        meta.append(f"{cname}\t{col.kind}")
        if col.kind == CATEGORICAL:
            payload[f"cats:{cname}"] = np.asarray(col.categories, dtype=object)
    payload["__meta__"] = np.asarray(meta, dtype=object)
    np.savez_compressed(Path(path), **payload)


def load_npz(path) -> PointTable:
    """Load a table written by :func:`save_npz`."""
    with np.load(Path(path), allow_pickle=True) as data:
        x = data["__x__"]
        y = data["__y__"]
        name = str(data["__name__"][0])
        columns: dict[str, Column] = {}
        for entry in data["__meta__"]:
            cname, kind = str(entry).split("\t")
            values = data[f"col:{cname}"]
            if kind == CATEGORICAL:
                cats = tuple(str(c) for c in data[f"cats:{cname}"])
                columns[cname] = Column(cname, kind, values, cats)
            else:
                columns[cname] = Column(cname, kind, values)
    return PointTable(x, y, columns, name=name)


def save_csv(table: PointTable, path) -> None:
    """Write a table as CSV with an ``x,y,...`` header.

    Categorical columns are written as their string labels.
    """
    names = table.column_names
    decoded = {}
    for cname in names:
        col = table.column(cname)
        decoded[cname] = col.decode() if col.kind == CATEGORICAL else col.values
    with open(Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["x", "y", *names])
        for i in range(len(table)):
            row = [repr(float(table.x[i])), repr(float(table.y[i]))]
            for cname in names:
                row.append(decoded[cname][i])
            writer.writerow(row)


def _chunk_table(header: list[str], rows: list[list[str]],
                 timestamp_columns: tuple[str, ...], forced: set[str],
                 kinds: dict[str, str] | None, name: str
                 ) -> tuple[PointTable, dict[str, str]]:
    """Parse one batch of CSV rows into a table, inferring column kinds
    on the first batch (``kinds is None``) and enforcing them after."""
    cols_raw = list(zip(*rows))
    x = np.asarray(cols_raw[0], dtype=np.float64)
    y = np.asarray(cols_raw[1], dtype=np.float64)
    kinds = {} if kinds is None else kinds
    attrs: dict[str, Column] = {}
    for cname, raw in zip(header[2:], cols_raw[2:]):
        kind = kinds.get(cname)
        as_float = None
        if kind is None:
            if cname in forced:
                kind = CATEGORICAL
            else:
                try:
                    as_float = np.asarray(raw, dtype=np.float64)
                    kind = (TIMESTAMP if cname in timestamp_columns
                            else NUMERIC)
                except ValueError:
                    kind = CATEGORICAL
            kinds[cname] = kind
        if kind == CATEGORICAL:
            attrs[cname] = categorical_column(cname, list(raw))
            continue
        if as_float is None:
            try:
                as_float = np.asarray(raw, dtype=np.float64)
            except ValueError:
                # The streaming contract: kinds are fixed by the first
                # chunk.  Attach the column so load_csv can re-stream
                # with it forced categorical (whole-file semantics).
                exc = SchemaError(
                    f"column {cname!r} was inferred numeric from the "
                    f"first chunk but holds non-numeric values later; "
                    f"list it in categorical_columns")
                exc.column = cname
                raise exc from None
        if kind == TIMESTAMP:
            attrs[cname] = Column(cname, TIMESTAMP,
                                  as_float.astype(np.int64))
        else:
            attrs[cname] = Column(cname, NUMERIC, as_float)
    return PointTable.from_arrays(x, y, name=name, **attrs), kinds


def iter_csv_chunks(path, chunk_rows: int = DEFAULT_CSV_CHUNK_ROWS,
                    timestamp_columns: tuple[str, ...] = ("t", "timestamp"),
                    name: str | None = None,
                    categorical_columns: tuple[str, ...] = ()):
    """Stream an ``x,y,...`` CSV as :class:`PointTable` chunks.

    Yields tables of at most ``chunk_rows`` rows; peak memory is one
    chunk's parsed rows, never the whole file.  Column kinds are
    inferred from the first chunk (float-parseable -> numeric, or
    timestamp when named in ``timestamp_columns``; otherwise
    categorical) and enforced on every later chunk — a declared-numeric
    column meeting an unparseable value raises :class:`SchemaError`
    naming the column, so callers can re-stream with it listed in
    ``categorical_columns``.  Chunks of one file share kinds but not
    categorical code spaces; consumers that merge chunks re-encode
    (:meth:`PointTable.concat` and the store writer both do).
    """
    if chunk_rows < 1:
        raise SchemaError("chunk_rows must be >= 1")
    path = Path(path)
    base = name or path.stem
    forced = set(categorical_columns)
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError("CSV has no data rows") from None
        if header[:2] != ["x", "y"]:
            raise SchemaError(
                f"CSV must start with x,y columns, got {header[:2]}")
        kinds: dict[str, str] | None = None
        index = 0
        while True:
            rows = list(itertools.islice(reader, chunk_rows))
            if not rows:
                break
            table, kinds = _chunk_table(header, rows, timestamp_columns,
                                        forced, kinds,
                                        f"{base}[{index}]")
            index += 1
            yield table
        if index == 0:
            raise SchemaError("CSV has no data rows")


def load_csv(path, timestamp_columns: tuple[str, ...] = ("t", "timestamp"),
             name: str | None = None,
             chunk_rows: int = DEFAULT_CSV_CHUNK_ROWS) -> PointTable:
    """Read a CSV written by :func:`save_csv` (or any x,y,... CSV).

    Column kinds are inferred: values parseable as floats become numeric
    (or timestamps when the column name is in ``timestamp_columns``),
    everything else becomes categorical.  Implemented over
    :func:`iter_csv_chunks`, so the raw string rows are never all
    resident at once; a column that turns non-numeric only after the
    first chunk triggers one re-stream with that column forced
    categorical, preserving whole-file inference semantics.
    """
    path = Path(path)
    forced: set[str] = set()
    while True:
        chunks: list[PointTable] = []
        try:
            for chunk in iter_csv_chunks(
                    path, chunk_rows=chunk_rows,
                    timestamp_columns=timestamp_columns,
                    categorical_columns=tuple(forced)):
                chunks.append(chunk)
        except SchemaError as exc:
            column = getattr(exc, "column", None)
            if column is None or column in forced:
                raise
            forced.add(column)
            continue
        break
    if not chunks:
        raise SchemaError("CSV has no data rows")
    final_name = name or path.stem
    if len(chunks) == 1:
        return chunks[0].rename(final_name)
    return PointTable.concat(chunks, name=final_name)
