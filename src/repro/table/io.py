"""Table persistence: NPZ (fast, lossless) and CSV (interchange)."""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..errors import SchemaError
from .column import CATEGORICAL, NUMERIC, TIMESTAMP, Column
from .table import PointTable


def save_npz(table: PointTable, path) -> None:
    """Serialize a table to a compressed ``.npz`` archive.

    Column kinds and category lists are stored alongside the data so the
    round trip is exact.
    """
    payload: dict[str, np.ndarray] = {
        "__x__": table.x,
        "__y__": table.y,
        "__name__": np.array([table.name]),
    }
    meta = []
    for cname in table.column_names:
        col = table.column(cname)
        payload[f"col:{cname}"] = col.values
        meta.append(f"{cname}\t{col.kind}")
        if col.kind == CATEGORICAL:
            payload[f"cats:{cname}"] = np.asarray(col.categories, dtype=object)
    payload["__meta__"] = np.asarray(meta, dtype=object)
    np.savez_compressed(Path(path), **payload)


def load_npz(path) -> PointTable:
    """Load a table written by :func:`save_npz`."""
    with np.load(Path(path), allow_pickle=True) as data:
        x = data["__x__"]
        y = data["__y__"]
        name = str(data["__name__"][0])
        columns: dict[str, Column] = {}
        for entry in data["__meta__"]:
            cname, kind = str(entry).split("\t")
            values = data[f"col:{cname}"]
            if kind == CATEGORICAL:
                cats = tuple(str(c) for c in data[f"cats:{cname}"])
                columns[cname] = Column(cname, kind, values, cats)
            else:
                columns[cname] = Column(cname, kind, values)
    return PointTable(x, y, columns, name=name)


def save_csv(table: PointTable, path) -> None:
    """Write a table as CSV with an ``x,y,...`` header.

    Categorical columns are written as their string labels.
    """
    names = table.column_names
    decoded = {}
    for cname in names:
        col = table.column(cname)
        decoded[cname] = col.decode() if col.kind == CATEGORICAL else col.values
    with open(Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["x", "y", *names])
        for i in range(len(table)):
            row = [repr(float(table.x[i])), repr(float(table.y[i]))]
            for cname in names:
                row.append(decoded[cname][i])
            writer.writerow(row)


def load_csv(path, timestamp_columns: tuple[str, ...] = ("t", "timestamp"),
             name: str | None = None) -> PointTable:
    """Read a CSV written by :func:`save_csv` (or any x,y,... CSV).

    Column kinds are inferred: values parseable as floats become numeric
    (or timestamps when the column name is in ``timestamp_columns``),
    everything else becomes categorical.
    """
    path = Path(path)
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        rows = list(reader)
    if header[:2] != ["x", "y"]:
        raise SchemaError(f"CSV must start with x,y columns, got {header[:2]}")
    if not rows:
        raise SchemaError("CSV has no data rows")

    cols_raw = list(zip(*rows))
    x = np.asarray(cols_raw[0], dtype=np.float64)
    y = np.asarray(cols_raw[1], dtype=np.float64)
    attrs = {}
    for cname, raw in zip(header[2:], cols_raw[2:]):
        try:
            as_float = np.asarray(raw, dtype=np.float64)
            numeric_ok = True
        except ValueError:
            numeric_ok = False
        if numeric_ok and cname in timestamp_columns:
            attrs[cname] = Column(cname, TIMESTAMP, as_float.astype(np.int64))
        elif numeric_ok:
            attrs[cname] = Column(cname, NUMERIC, as_float)
        else:
            from .column import categorical_column

            attrs[cname] = categorical_column(cname, list(raw))
    return PointTable.from_arrays(x, y, name=name or path.stem, **attrs)
