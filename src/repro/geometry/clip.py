"""Polygon clipping.

Sutherland–Hodgman clipping of an arbitrary subject polygon against a
*convex* clip polygon.  Two uses in this library:

* clipping synthetic Voronoi cells (convex) against the city boundary —
  done the other way round: boundary (subject) against cell (clip);
* clipping region polygons to a viewport box before rasterization.
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError
from .bbox import BBox
from .point import as_points, polygon_signed_area


def _clip_against_edge(subject: np.ndarray, ax, ay, bx, by) -> np.ndarray:
    """Clip ``subject`` against the half-plane left of directed edge a->b."""
    if len(subject) == 0:
        return subject
    x = subject[:, 0]
    y = subject[:, 1]
    # side > 0 => vertex strictly inside the half-plane.
    side = (bx - ax) * (y - ay) - (by - ay) * (x - ax)
    inside = side >= 0.0

    out: list[tuple[float, float]] = []
    n = len(subject)
    for i in range(n):
        j = (i + 1) % n
        cur_in = inside[i]
        nxt_in = inside[j]
        if cur_in:
            out.append((x[i], y[i]))
        if cur_in != nxt_in:
            # Edge crosses the clip line; emit the intersection point.
            denom = side[i] - side[j]
            if denom != 0.0:
                t = side[i] / denom
                out.append((x[i] + t * (x[j] - x[i]), y[i] + t * (y[j] - y[i])))
    return np.asarray(out, dtype=np.float64).reshape(-1, 2)


def clip_polygon_convex(subject, clip) -> np.ndarray:
    """Sutherland–Hodgman: intersect ``subject`` with convex ``clip``.

    ``subject`` may be any simple polygon; ``clip`` must be convex and is
    normalized to counter-clockwise order internally.  Returns the vertex
    array of the intersection (possibly empty).  When the true
    intersection is disconnected the algorithm returns a single ring with
    coincident bridging edges — acceptable for the synthetic-region and
    viewport-clipping uses here.
    """
    subj = as_points(subject)
    clp = as_points(clip)
    if len(clp) < 3:
        raise GeometryError("clip polygon needs >= 3 vertices")
    if polygon_signed_area(clp) < 0:
        clp = clp[::-1]

    result = subj
    n = len(clp)
    for i in range(n):
        ax, ay = clp[i]
        bx, by = clp[(i + 1) % n]
        result = _clip_against_edge(result, ax, ay, bx, by)
        if len(result) == 0:
            break
    return result


def clip_ring_to_bbox(ring, bbox: BBox) -> np.ndarray:
    """Clip a ring against an axis-aligned box (special-cased for speed)."""
    return clip_polygon_convex(ring, bbox.corners())
