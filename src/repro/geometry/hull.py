"""Convex hulls (Andrew's monotone chain)."""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError
from .point import as_points


def convex_hull(points) -> np.ndarray:
    """Convex hull of a point set, counter-clockwise, no repeated last
    vertex.  Raises :class:`GeometryError` for fewer than 3 distinct
    points (a hull would be degenerate)."""
    pts = as_points(points)
    uniq = np.unique(pts, axis=0)
    if len(uniq) < 3:
        raise GeometryError("convex hull needs >= 3 distinct points")

    # Sort lexicographically by (x, y).
    order = np.lexsort((uniq[:, 1], uniq[:, 0]))
    sorted_pts = uniq[order]

    def cross(o, a, b):
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower: list[np.ndarray] = []
    for p in sorted_pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)

    upper: list[np.ndarray] = []
    for p in sorted_pts[::-1]:
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)

    hull = np.array(lower[:-1] + upper[:-1])
    if len(hull) < 3:
        raise GeometryError("points are collinear; hull is degenerate")
    return hull
