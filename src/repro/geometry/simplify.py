"""Line/ring simplification (Douglas–Peucker).

Urbane renders region polygons at several zoom levels; simplification
keeps vertex counts proportional to on-screen size.  The raster join
benchmarks also use it to sweep boundary complexity.
"""

from __future__ import annotations

import numpy as np

from .point import as_points


def _perpendicular_distances(points: np.ndarray, start, end) -> np.ndarray:
    """Distance of each point from the line through ``start``-``end``."""
    sx, sy = start
    ex, ey = end
    dx = ex - sx
    dy = ey - sy
    length = np.hypot(dx, dy)
    if length == 0.0:
        return np.hypot(points[:, 0] - sx, points[:, 1] - sy)
    return np.abs(dy * (points[:, 0] - sx) - dx * (points[:, 1] - sy)) / length


def simplify_line(points, tolerance: float) -> np.ndarray:
    """Douglas–Peucker simplification of an open polyline.

    Keeps the endpoints and every vertex whose removal would move the
    line by more than ``tolerance``.  Iterative (explicit stack) to avoid
    recursion limits on long lines.
    """
    pts = as_points(points)
    n = len(pts)
    if n <= 2 or tolerance <= 0:
        return pts.copy()

    keep = np.zeros(n, dtype=bool)
    keep[0] = keep[-1] = True
    stack = [(0, n - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo < 2:
            continue
        inner = pts[lo + 1 : hi]
        dists = _perpendicular_distances(inner, pts[lo], pts[hi])
        k = int(np.argmax(dists))
        if dists[k] > tolerance:
            mid = lo + 1 + k
            keep[mid] = True
            stack.append((lo, mid))
            stack.append((mid, hi))
    return pts[keep]


def simplify_ring(ring, tolerance: float, min_vertices: int = 4) -> np.ndarray:
    """Simplify a closed ring, guaranteeing at least ``min_vertices``.

    The ring is split at its first vertex, simplified as a polyline, and
    re-closed.  If simplification would collapse the ring below
    ``min_vertices`` distinct vertices the original is returned.
    """
    pts = as_points(ring)
    if len(pts) <= min_vertices or tolerance <= 0:
        return pts.copy()
    closed = np.vstack([pts, pts[:1]])
    simplified = simplify_line(closed, tolerance)
    result = simplified[:-1]  # drop the duplicated closing vertex
    if len(result) < max(3, min_vertices - 1):
        return pts.copy()
    return result
