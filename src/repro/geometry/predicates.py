"""Low-level geometric predicates.

The point-in-polygon tests here are the exact comparators that the index
join baselines and the accurate raster join use; they are vectorized over
the *points* axis because the typical call tests millions of points against
one ring.
"""

from __future__ import annotations

import numpy as np

from .point import as_points


def orient2d(ax, ay, bx, by, cx, cy):
    """Twice the signed area of triangle (a, b, c).

    Positive when c lies to the left of the directed line a->b.  Works on
    scalars or broadcastable arrays.
    """
    return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)


def on_segment(px, py, ax, ay, bx, by, tol: float = 1e-12) -> bool:
    """True if point p lies on the closed segment a-b (within ``tol``)."""
    cross = orient2d(ax, ay, bx, by, px, py)
    seg_len = max(abs(bx - ax), abs(by - ay), 1.0)
    if abs(cross) > tol * seg_len:
        return False
    return (
        min(ax, bx) - tol <= px <= max(ax, bx) + tol
        and min(ay, by) - tol <= py <= max(ay, by) + tol
    )


def segments_intersect(p1, p2, p3, p4) -> bool:
    """True if closed segments p1-p2 and p3-p4 intersect (incl. touching)."""
    p1x, p1y = p1
    p2x, p2y = p2
    p3x, p3y = p3
    p4x, p4y = p4
    d1 = orient2d(p3x, p3y, p4x, p4y, p1x, p1y)
    d2 = orient2d(p3x, p3y, p4x, p4y, p2x, p2y)
    d3 = orient2d(p1x, p1y, p2x, p2y, p3x, p3y)
    d4 = orient2d(p1x, p1y, p2x, p2y, p4x, p4y)
    if ((d1 > 0 and d2 < 0) or (d1 < 0 and d2 > 0)) and (
        (d3 > 0 and d4 < 0) or (d3 < 0 and d4 > 0)
    ):
        return True
    if d1 == 0 and on_segment(p1x, p1y, p3x, p3y, p4x, p4y):
        return True
    if d2 == 0 and on_segment(p2x, p2y, p3x, p3y, p4x, p4y):
        return True
    if d3 == 0 and on_segment(p3x, p3y, p1x, p1y, p2x, p2y):
        return True
    if d4 == 0 and on_segment(p4x, p4y, p1x, p1y, p2x, p2y):
        return True
    return False


def segment_intersection_point(p1, p2, p3, p4) -> tuple[float, float] | None:
    """Intersection point of the *lines* through p1-p2 and p3-p4, if the
    segments properly intersect; None for parallel/non-crossing segments."""
    x1, y1 = p1
    x2, y2 = p2
    x3, y3 = p3
    x4, y4 = p4
    denom = (x1 - x2) * (y3 - y4) - (y1 - y2) * (x3 - x4)
    if denom == 0:
        return None
    t = ((x1 - x3) * (y3 - y4) - (y1 - y3) * (x3 - x4)) / denom
    u = ((x1 - x3) * (y1 - y2) - (y1 - y3) * (x1 - x2)) / denom
    if not (0.0 <= t <= 1.0 and 0.0 <= u <= 1.0):
        return None
    return (x1 + t * (x2 - x1), y1 + t * (y2 - y1))


def points_in_ring(points, ring) -> np.ndarray:
    """Vectorized crossing-number test of many points against one ring.

    ``ring`` is an implicitly closed ``(m, 2)`` vertex array.  Returns a
    boolean mask.  Points exactly on a horizontal edge follow the usual
    half-open convention (consistent across adjacent rings, so partitions
    assign each point to exactly one region).
    """
    pts = as_points(points)
    verts = as_points(ring)
    n = len(pts)
    if n == 0 or len(verts) < 3:
        return np.zeros(n, dtype=bool)

    x = pts[:, 0]
    y = pts[:, 1]
    inside = np.zeros(n, dtype=bool)

    vx = verts[:, 0]
    vy = verts[:, 1]
    vx_next = np.roll(vx, -1)
    vy_next = np.roll(vy, -1)

    # Loop over edges (rings are small); vectorize over points.
    for x1, y1, x2, y2 in zip(vx, vy, vx_next, vy_next):
        # Half-open in y: an edge counts when one endpoint is strictly
        # above the query point and the other is at-or-below it.
        cond = (y1 > y) != (y2 > y)
        if not cond.any():
            continue
        # x coordinate where the edge crosses the horizontal line at y.
        with np.errstate(divide="ignore", invalid="ignore"):
            xint = x1 + (y - y1) * (x2 - x1) / (y2 - y1)
        crossing = cond & (x < xint)
        inside ^= crossing
    return inside


def point_in_ring(x: float, y: float, ring) -> bool:
    """Scalar crossing-number test (convenience wrapper)."""
    return bool(points_in_ring(np.array([[x, y]]), ring)[0])


def ring_is_simple(ring, tol: float = 1e-12) -> bool:
    """True when no two non-adjacent edges of the ring intersect.

    Quadratic in the number of vertices; intended for validation of the
    small polygon rings used as query regions, not for bulk data.
    """
    verts = as_points(ring)
    m = len(verts)
    if m < 3:
        return False
    edges = [(tuple(verts[i]), tuple(verts[(i + 1) % m])) for i in range(m)]
    for i in range(m):
        for j in range(i + 1, m):
            # Skip adjacent edges (sharing an endpoint).
            if j == i + 1 or (i == 0 and j == m - 1):
                continue
            if segments_intersect(*edges[i], *edges[j]):
                return False
    return True
