"""Low-level geometric predicates.

The point-in-polygon tests here are the exact comparators that the index
join baselines and the accurate raster join use; they are vectorized over
the *points* axis because the typical call tests millions of points against
one ring.
"""

from __future__ import annotations

import numpy as np

from .point import as_points


def orient2d(ax, ay, bx, by, cx, cy):
    """Twice the signed area of triangle (a, b, c).

    Positive when c lies to the left of the directed line a->b.  Works on
    scalars or broadcastable arrays.
    """
    return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)


def on_segment(px, py, ax, ay, bx, by, tol: float = 1e-12) -> bool:
    """True if point p lies on the closed segment a-b (within ``tol``)."""
    cross = orient2d(ax, ay, bx, by, px, py)
    seg_len = max(abs(bx - ax), abs(by - ay), 1.0)
    if abs(cross) > tol * seg_len:
        return False
    return (
        min(ax, bx) - tol <= px <= max(ax, bx) + tol
        and min(ay, by) - tol <= py <= max(ay, by) + tol
    )


def segments_intersect(p1, p2, p3, p4) -> bool:
    """True if closed segments p1-p2 and p3-p4 intersect (incl. touching)."""
    p1x, p1y = p1
    p2x, p2y = p2
    p3x, p3y = p3
    p4x, p4y = p4
    d1 = orient2d(p3x, p3y, p4x, p4y, p1x, p1y)
    d2 = orient2d(p3x, p3y, p4x, p4y, p2x, p2y)
    d3 = orient2d(p1x, p1y, p2x, p2y, p3x, p3y)
    d4 = orient2d(p1x, p1y, p2x, p2y, p4x, p4y)
    if ((d1 > 0 and d2 < 0) or (d1 < 0 and d2 > 0)) and (
        (d3 > 0 and d4 < 0) or (d3 < 0 and d4 > 0)
    ):
        return True
    if d1 == 0 and on_segment(p1x, p1y, p3x, p3y, p4x, p4y):
        return True
    if d2 == 0 and on_segment(p2x, p2y, p3x, p3y, p4x, p4y):
        return True
    if d3 == 0 and on_segment(p3x, p3y, p1x, p1y, p2x, p2y):
        return True
    if d4 == 0 and on_segment(p4x, p4y, p1x, p1y, p2x, p2y):
        return True
    return False


def segment_intersection_point(p1, p2, p3, p4) -> tuple[float, float] | None:
    """Intersection point of the *lines* through p1-p2 and p3-p4, if the
    segments properly intersect; None for parallel/non-crossing segments."""
    x1, y1 = p1
    x2, y2 = p2
    x3, y3 = p3
    x4, y4 = p4
    denom = (x1 - x2) * (y3 - y4) - (y1 - y2) * (x3 - x4)
    if denom == 0:
        return None
    t = ((x1 - x3) * (y3 - y4) - (y1 - y3) * (x3 - x4)) / denom
    u = ((x1 - x3) * (y1 - y2) - (y1 - y3) * (x1 - x2)) / denom
    if not (0.0 <= t <= 1.0 and 0.0 <= u <= 1.0):
        return None
    return (x1 + t * (x2 - x1), y1 + t * (y2 - y1))


def ring_edges(ring) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-edge endpoint columns ``(x1, y1, x2, y2)`` of a ring, shaped
    for broadcasting against a point batch.  Geometries that are tested
    repeatedly (query regions under brushing) precompute these once."""
    verts = as_points(ring)
    vx = verts[:, 0]
    vy = verts[:, 1]
    return (vx[:, None], vy[:, None],
            np.roll(vx, -1)[:, None], np.roll(vy, -1)[:, None])


def points_in_ring(points, ring, edges=None) -> np.ndarray:
    """Vectorized crossing-number test of many points against one ring.

    ``ring`` is an implicitly closed ``(m, 2)`` vertex array.  Returns a
    boolean mask.  Points exactly on a horizontal edge follow the usual
    half-open convention (consistent across adjacent rings, so partitions
    assign each point to exactly one region).  ``edges`` short-circuits
    the per-call edge setup with a cached :func:`ring_edges` result.
    """
    pts = as_points(points)
    n = len(pts)
    if edges is None:
        edges = ring_edges(ring)
    x1, y1, x2, y2 = edges
    m = len(x1)
    if n == 0 or m < 3:
        return np.zeros(n, dtype=bool)

    x = pts[:, 0]
    y = pts[:, 1]

    # Broadcast over (edges, points) when the intermediate fits
    # comfortably; chunk the points otherwise.  Either way each
    # (point, edge) crossing decision evaluates the exact same float
    # expression, so the mask is independent of the execution shape.
    chunk = max(1, 8_000_000 // m)
    inside = np.empty(n, dtype=bool)
    for lo in range(0, n, chunk):
        xs = x[lo:lo + chunk]
        ys = y[lo:lo + chunk]
        # Half-open in y: an edge counts when one endpoint is strictly
        # above the query point and the other is at-or-below it.
        cond = (y1 > ys) != (y2 > ys)
        # x coordinate where the edge crosses the horizontal line at y.
        with np.errstate(divide="ignore", invalid="ignore"):
            xint = x1 + (ys - y1) * (x2 - x1) / (y2 - y1)
        crossings = (cond & (xs < xint)).sum(axis=0)
        inside[lo:lo + chunk] = (crossings & 1).astype(bool)
    return inside


def point_in_ring(x: float, y: float, ring) -> bool:
    """Scalar crossing-number test (convenience wrapper)."""
    return bool(points_in_ring(np.array([[x, y]]), ring)[0])


def ring_is_simple(ring, tol: float = 1e-12) -> bool:
    """True when no two non-adjacent edges of the ring intersect.

    Quadratic in the number of vertices; intended for validation of the
    small polygon rings used as query regions, not for bulk data.
    """
    verts = as_points(ring)
    m = len(verts)
    if m < 3:
        return False
    edges = [(tuple(verts[i]), tuple(verts[(i + 1) % m])) for i in range(m)]
    for i in range(m):
        for j in range(i + 1, m):
            # Skip adjacent edges (sharing an endpoint).
            if j == i + 1 or (i == 0 and j == m - 1):
                continue
            if segments_intersect(*edges[i], *edges[j]):
                return False
    return True
