"""Point-array helpers.

Throughout the library a *point set* is a ``float64`` NumPy array of shape
``(n, 2)`` holding ``(x, y)`` coordinates.  These helpers validate and
normalize user input into that canonical form so the rest of the code can
assume it.
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError


def as_points(coords) -> np.ndarray:
    """Coerce ``coords`` into a ``(n, 2)`` float64 array.

    Accepts any sequence of ``(x, y)`` pairs (lists, tuples, arrays).
    Raises :class:`GeometryError` if the input cannot be interpreted as
    2-D points or contains non-finite values.
    """
    arr = np.asarray(coords, dtype=np.float64)
    if arr.ndim == 1:
        if arr.size == 0:
            return arr.reshape(0, 2)
        if arr.size == 2:
            arr = arr.reshape(1, 2)
        else:
            raise GeometryError(
                f"cannot interpret 1-D array of size {arr.size} as points"
            )
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GeometryError(f"expected shape (n, 2), got {arr.shape}")
    if arr.size and not np.isfinite(arr).all():
        raise GeometryError("point coordinates must be finite")
    return arr


def points_equal(a, b, tol: float = 1e-12) -> bool:
    """True if two points coincide within ``tol`` (Chebyshev distance)."""
    ax, ay = a
    bx, by = b
    return abs(ax - bx) <= tol and abs(ay - by) <= tol


def dedupe_consecutive(points: np.ndarray, tol: float = 1e-12) -> np.ndarray:
    """Drop consecutive duplicate vertices from a vertex list.

    Used to sanitize polygon rings before validation; keeps the first of
    each run of coincident vertices.
    """
    pts = as_points(points)
    if len(pts) < 2:
        return pts
    diff = np.abs(np.diff(pts, axis=0)).max(axis=1)
    keep = np.concatenate(([True], diff > tol))
    return pts[keep]


def polygon_signed_area(vertices: np.ndarray) -> float:
    """Signed area of the polygon described by ``vertices`` (shoelace).

    Positive for counter-clockwise orientation.  The ring is treated as
    implicitly closed (the last vertex connects back to the first).
    """
    pts = as_points(vertices)
    if len(pts) < 3:
        return 0.0
    x = pts[:, 0]
    y = pts[:, 1]
    return 0.5 * float(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1)))


def polygon_centroid(vertices: np.ndarray) -> tuple[float, float]:
    """Area centroid of a simple polygon (implicitly closed ring).

    Falls back to the vertex mean for degenerate (zero-area) rings.
    """
    pts = as_points(vertices)
    if len(pts) == 0:
        raise GeometryError("centroid of empty vertex list")
    x = pts[:, 0]
    y = pts[:, 1]
    xn = np.roll(x, -1)
    yn = np.roll(y, -1)
    cross = x * yn - xn * y
    area = 0.5 * float(cross.sum())
    if abs(area) < 1e-300:
        return float(x.mean()), float(y.mean())
    cx = float(((x + xn) * cross).sum()) / (6.0 * area)
    cy = float(((y + yn) * cross).sum()) / (6.0 * area)
    return cx, cy


def polygon_perimeter(vertices: np.ndarray) -> float:
    """Total edge length of the implicitly closed ring."""
    pts = as_points(vertices)
    if len(pts) < 2:
        return 0.0
    closed = np.vstack([pts, pts[:1]])
    seg = np.diff(closed, axis=0)
    return float(np.hypot(seg[:, 0], seg[:, 1]).sum())
