"""Map projections.

Urban data arrives as (longitude, latitude); rasterization and distance
computations want planar meters.  We implement the two projections the
original systems use: spherical Web Mercator (EPSG:3857, what slippy-map
front ends like Urbane's use) and a local equirectangular approximation
(cheap and accurate at city scale).
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError

EARTH_RADIUS_M = 6_378_137.0
MAX_MERCATOR_LAT = 85.05112877980659


def lonlat_to_mercator(lon, lat) -> tuple[np.ndarray, np.ndarray]:
    """Project (lon, lat) degrees to Web-Mercator meters.

    Latitudes are clamped to the Mercator domain (|lat| <= ~85.05°),
    matching what web mapping stacks do.
    """
    lon = np.asarray(lon, dtype=np.float64)
    lat = np.asarray(lat, dtype=np.float64)
    lat = np.clip(lat, -MAX_MERCATOR_LAT, MAX_MERCATOR_LAT)
    x = EARTH_RADIUS_M * np.radians(lon)
    y = EARTH_RADIUS_M * np.log(np.tan(np.pi / 4.0 + np.radians(lat) / 2.0))
    return x, y


def mercator_to_lonlat(x, y) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`lonlat_to_mercator`."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    lon = np.degrees(x / EARTH_RADIUS_M)
    lat = np.degrees(2.0 * np.arctan(np.exp(y / EARTH_RADIUS_M)) - np.pi / 2.0)
    return lon, lat


class LocalProjection:
    """Equirectangular projection around a reference latitude.

    At city scale (tens of km) this is metrically accurate to well under
    0.1% and much cheaper than Mercator; the synthetic city model uses it
    so that generated coordinates are directly in meters.
    """

    def __init__(self, lon0: float, lat0: float):
        if not (-90.0 < lat0 < 90.0):
            raise GeometryError(f"reference latitude out of range: {lat0}")
        self.lon0 = float(lon0)
        self.lat0 = float(lat0)
        self._cos_lat0 = float(np.cos(np.radians(lat0)))
        self._meters_per_deg = EARTH_RADIUS_M * np.pi / 180.0

    def forward(self, lon, lat) -> tuple[np.ndarray, np.ndarray]:
        """(lon, lat) degrees -> (x, y) meters east/north of the origin."""
        lon = np.asarray(lon, dtype=np.float64)
        lat = np.asarray(lat, dtype=np.float64)
        x = (lon - self.lon0) * self._meters_per_deg * self._cos_lat0
        y = (lat - self.lat0) * self._meters_per_deg
        return x, y

    def inverse(self, x, y) -> tuple[np.ndarray, np.ndarray]:
        """(x, y) meters -> (lon, lat) degrees."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        lon = self.lon0 + x / (self._meters_per_deg * self._cos_lat0)
        lat = self.lat0 + y / self._meters_per_deg
        return lon, lat


def haversine_m(lon1, lat1, lon2, lat2) -> np.ndarray:
    """Great-circle distance in meters between (lon, lat) degree pairs."""
    lon1, lat1, lon2, lat2 = (
        np.radians(np.asarray(v, dtype=np.float64)) for v in (lon1, lat1, lon2, lat2)
    )
    dlon = lon2 - lon1
    dlat = lat2 - lat1
    a = np.sin(dlat / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))
