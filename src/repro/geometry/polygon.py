"""Polygon geometries: rings, polygons with holes, multipolygons.

A :class:`Polygon` is one exterior ring plus zero or more hole rings; a
:class:`MultiPolygon` is a list of polygons sharing a single region id.
These are the ``R.geometry`` values of the paper's spatial aggregation
query — arbitrary, possibly non-convex, possibly holed shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..errors import GeometryError
from .bbox import BBox
from .point import (
    as_points,
    dedupe_consecutive,
    polygon_centroid,
    polygon_perimeter,
    polygon_signed_area,
)
from .predicates import points_in_ring, ring_edges


def normalize_ring(vertices, orientation: int = 1) -> np.ndarray:
    """Sanitize a vertex list into a canonical open ring.

    Drops an explicit closing vertex and consecutive duplicates, checks
    that at least three distinct vertices remain, and flips the vertex
    order so the signed area has the sign of ``orientation`` (+1 for
    counter-clockwise exteriors, -1 for clockwise holes).
    """
    pts = dedupe_consecutive(as_points(vertices))
    if len(pts) >= 2 and np.allclose(pts[0], pts[-1]):
        pts = pts[:-1]
    if len(pts) < 3:
        raise GeometryError(f"ring needs >= 3 distinct vertices, got {len(pts)}")
    area = polygon_signed_area(pts)
    if area == 0.0:
        raise GeometryError("degenerate ring with zero area")
    if (area > 0) != (orientation > 0):
        pts = pts[::-1].copy()
    return pts


@dataclass(frozen=True)
class Polygon:
    """A simple polygon: exterior ring plus optional hole rings.

    The exterior is stored counter-clockwise and holes clockwise, matching
    the orientation convention GPU tessellators (and GeoJSON) expect.
    """

    exterior: np.ndarray
    holes: tuple[np.ndarray, ...] = field(default_factory=tuple)

    def __post_init__(self):
        ext = normalize_ring(self.exterior, orientation=1)
        hls = tuple(normalize_ring(h, orientation=-1) for h in self.holes)
        object.__setattr__(self, "exterior", ext)
        object.__setattr__(self, "holes", hls)

    @property
    def bbox(self) -> BBox:
        return BBox.of_points(self.exterior)

    @property
    def area(self) -> float:
        """Net area: exterior area minus hole areas."""
        area = polygon_signed_area(self.exterior)
        for hole in self.holes:
            area += polygon_signed_area(hole)  # holes are CW => negative
        return area

    @property
    def perimeter(self) -> float:
        """Total boundary length including hole boundaries."""
        total = polygon_perimeter(self.exterior)
        for hole in self.holes:
            total += polygon_perimeter(hole)
        return total

    @property
    def centroid(self) -> tuple[float, float]:
        """Area centroid; ignores holes for simplicity (exterior centroid)."""
        return polygon_centroid(self.exterior)

    @property
    def num_vertices(self) -> int:
        return len(self.exterior) + sum(len(h) for h in self.holes)

    def rings(self):
        """Iterate the exterior then each hole ring."""
        yield self.exterior
        yield from self.holes

    @cached_property
    def _ring_edges(self) -> tuple:
        """Edge columns per ring, built once — the accurate join tests
        the same region geometries against every brush gesture.
        (``cached_property`` writes straight into ``__dict__``, so it
        composes with the frozen dataclass.)"""
        return tuple(ring_edges(r) for r in self.rings())

    def contains_points(self, points) -> np.ndarray:
        """Exact containment mask: inside the exterior and outside holes."""
        pts = as_points(points)
        edges = self._ring_edges
        mask = points_in_ring(pts, self.exterior, edges=edges[0])
        if mask.any():
            for hole, hole_edges in zip(self.holes, edges[1:]):
                inside_hole = points_in_ring(pts[mask], hole,
                                             edges=hole_edges)
                if inside_hole.any():
                    idx = np.flatnonzero(mask)
                    mask[idx[inside_hole]] = False
        return mask

    def contains_point(self, x: float, y: float) -> bool:
        return bool(self.contains_points(np.array([[x, y]]))[0])


@dataclass(frozen=True)
class MultiPolygon:
    """A collection of polygons treated as one region geometry."""

    polygons: tuple[Polygon, ...]

    def __post_init__(self):
        polys = tuple(self.polygons)
        if not polys:
            raise GeometryError("MultiPolygon needs at least one polygon")
        if not all(isinstance(p, Polygon) for p in polys):
            raise GeometryError("MultiPolygon parts must be Polygon instances")
        object.__setattr__(self, "polygons", polys)

    @property
    def bbox(self) -> BBox:
        box = self.polygons[0].bbox
        for poly in self.polygons[1:]:
            box = box.union(poly.bbox)
        return box

    @property
    def area(self) -> float:
        return sum(p.area for p in self.polygons)

    @property
    def perimeter(self) -> float:
        return sum(p.perimeter for p in self.polygons)

    @property
    def centroid(self) -> tuple[float, float]:
        """Area-weighted centroid of the parts."""
        total = 0.0
        cx = 0.0
        cy = 0.0
        for poly in self.polygons:
            a = poly.area
            px, py = poly.centroid
            cx += a * px
            cy += a * py
            total += a
        if total <= 0:
            return self.polygons[0].centroid
        return (cx / total, cy / total)

    @property
    def num_vertices(self) -> int:
        return sum(p.num_vertices for p in self.polygons)

    def rings(self):
        for poly in self.polygons:
            yield from poly.rings()

    def contains_points(self, points) -> np.ndarray:
        pts = as_points(points)
        mask = np.zeros(len(pts), dtype=bool)
        for poly in self.polygons:
            mask |= poly.contains_points(pts)
        return mask

    def contains_point(self, x: float, y: float) -> bool:
        return any(p.contains_point(x, y) for p in self.polygons)


Geometry = Polygon | MultiPolygon


def as_geometry(obj) -> Geometry:
    """Coerce raw vertex input into a Polygon/MultiPolygon.

    Accepts an existing geometry, a vertex array (exterior-only polygon),
    or a list of vertex arrays (first is the exterior, rest are holes).
    """
    if isinstance(obj, (Polygon, MultiPolygon)):
        return obj
    if isinstance(obj, (list, tuple)) and obj and _looks_like_ring_list(obj):
        return Polygon(obj[0], tuple(obj[1:]))
    return Polygon(obj)


def _looks_like_ring_list(obj) -> bool:
    """Heuristic: a list whose elements are themselves vertex sequences."""
    first = obj[0]
    if isinstance(first, np.ndarray):
        return first.ndim == 2
    if isinstance(first, (list, tuple)) and first:
        inner = first[0]
        return isinstance(inner, (list, tuple, np.ndarray))
    return False


def regular_polygon(cx: float, cy: float, radius: float, sides: int) -> Polygon:
    """A regular ``sides``-gon centred at (cx, cy) — handy in tests."""
    if sides < 3:
        raise GeometryError("regular polygon needs >= 3 sides")
    angles = np.linspace(0.0, 2.0 * np.pi, sides, endpoint=False)
    verts = np.column_stack([cx + radius * np.cos(angles), cy + radius * np.sin(angles)])
    return Polygon(verts)


def box_polygon(bbox: BBox) -> Polygon:
    """The polygon covering an axis-aligned box."""
    return Polygon(bbox.corners())
