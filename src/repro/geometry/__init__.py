"""Computational-geometry substrate.

Everything the spatial-aggregation engine needs is implemented here from
scratch: points and boxes, polygons with holes, exact predicates,
clipping, triangulation, simplification, hulls, projections, GeoJSON IO
and bounded Voronoi diagrams (used to synthesize region hierarchies).
"""

from .bbox import BBox
from .clip import clip_polygon_convex, clip_ring_to_bbox
from .geojson import (
    feature_collection,
    geometry_from_geojson,
    geometry_to_geojson,
    parse_feature_collection,
    read_geojson,
    write_geojson,
)
from .hull import convex_hull
from .point import (
    as_points,
    dedupe_consecutive,
    polygon_centroid,
    polygon_perimeter,
    polygon_signed_area,
)
from .polygon import (
    Geometry,
    MultiPolygon,
    Polygon,
    as_geometry,
    box_polygon,
    normalize_ring,
    regular_polygon,
)
from .predicates import (
    on_segment,
    orient2d,
    point_in_ring,
    points_in_ring,
    ring_is_simple,
    segment_intersection_point,
    segments_intersect,
)
from .projection import (
    EARTH_RADIUS_M,
    LocalProjection,
    haversine_m,
    lonlat_to_mercator,
    mercator_to_lonlat,
)
from .simplify import simplify_line, simplify_ring
from .triangulate import triangle_areas, triangulate_ring, triangulate_ring_vertices
from .voronoi import bounded_voronoi_cells, clip_cells_to_boundary

__all__ = [
    "BBox",
    "EARTH_RADIUS_M",
    "Geometry",
    "LocalProjection",
    "MultiPolygon",
    "Polygon",
    "as_geometry",
    "as_points",
    "bounded_voronoi_cells",
    "box_polygon",
    "clip_cells_to_boundary",
    "clip_polygon_convex",
    "clip_ring_to_bbox",
    "convex_hull",
    "dedupe_consecutive",
    "feature_collection",
    "geometry_from_geojson",
    "geometry_to_geojson",
    "haversine_m",
    "lonlat_to_mercator",
    "mercator_to_lonlat",
    "normalize_ring",
    "on_segment",
    "orient2d",
    "parse_feature_collection",
    "point_in_ring",
    "points_in_ring",
    "polygon_centroid",
    "polygon_perimeter",
    "polygon_signed_area",
    "read_geojson",
    "regular_polygon",
    "ring_is_simple",
    "segment_intersection_point",
    "segments_intersect",
    "simplify_line",
    "simplify_ring",
    "triangle_areas",
    "triangulate_ring",
    "triangulate_ring_vertices",
    "write_geojson",
]
