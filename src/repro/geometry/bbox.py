"""Axis-aligned bounding boxes.

:class:`BBox` is the workhorse rectangle used for viewports, spatial-index
nodes and polygon envelopes.  It is immutable; all operations return new
boxes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GeometryError


@dataclass(frozen=True)
class BBox:
    """Closed axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self):
        if not (self.xmin <= self.xmax and self.ymin <= self.ymax):
            raise GeometryError(
                f"invalid bbox: ({self.xmin}, {self.ymin}, "
                f"{self.xmax}, {self.ymax})"
            )

    @classmethod
    def of_points(cls, points) -> "BBox":
        """Smallest box containing every point in a ``(n, 2)`` array."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.size == 0:
            raise GeometryError("bbox of empty point set")
        pts = pts.reshape(-1, 2)
        return cls(
            float(pts[:, 0].min()),
            float(pts[:, 1].min()),
            float(pts[:, 0].max()),
            float(pts[:, 1].max()),
        )

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return (0.5 * (self.xmin + self.xmax), 0.5 * (self.ymin + self.ymax))

    def contains_point(self, x: float, y: float) -> bool:
        """True if ``(x, y)`` lies in the closed box."""
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    def contains_points(self, points) -> np.ndarray:
        """Vectorized containment test; returns a boolean mask."""
        pts = np.asarray(points, dtype=np.float64).reshape(-1, 2)
        return (
            (pts[:, 0] >= self.xmin)
            & (pts[:, 0] <= self.xmax)
            & (pts[:, 1] >= self.ymin)
            & (pts[:, 1] <= self.ymax)
        )

    def contains_bbox(self, other: "BBox") -> bool:
        """True if ``other`` lies entirely inside this box."""
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and self.xmax >= other.xmax
            and self.ymax >= other.ymax
        )

    def intersects(self, other: "BBox") -> bool:
        """True if the two closed boxes share at least one point."""
        return not (
            other.xmin > self.xmax
            or other.xmax < self.xmin
            or other.ymin > self.ymax
            or other.ymax < self.ymin
        )

    def intersection(self, other: "BBox") -> "BBox | None":
        """The overlapping box, or None when disjoint."""
        if not self.intersects(other):
            return None
        return BBox(
            max(self.xmin, other.xmin),
            max(self.ymin, other.ymin),
            min(self.xmax, other.xmax),
            min(self.ymax, other.ymax),
        )

    def union(self, other: "BBox") -> "BBox":
        """Smallest box containing both boxes."""
        return BBox(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def expand(self, margin: float) -> "BBox":
        """Grow (or shrink, for negative margins) every side by ``margin``."""
        return BBox(
            self.xmin - margin,
            self.ymin - margin,
            self.xmax + margin,
            self.ymax + margin,
        )

    def scale(self, factor: float) -> "BBox":
        """Scale about the center by ``factor`` (used for zooming)."""
        cx, cy = self.center
        hw = 0.5 * self.width * factor
        hh = 0.5 * self.height * factor
        return BBox(cx - hw, cy - hh, cx + hw, cy + hh)

    def translate(self, dx: float, dy: float) -> "BBox":
        """Shift the box (used for panning)."""
        return BBox(self.xmin + dx, self.ymin + dy, self.xmax + dx, self.ymax + dy)

    def corners(self) -> np.ndarray:
        """The four corners, counter-clockwise from (xmin, ymin)."""
        return np.array(
            [
                [self.xmin, self.ymin],
                [self.xmax, self.ymin],
                [self.xmax, self.ymax],
                [self.xmin, self.ymax],
            ]
        )

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.xmin, self.ymin, self.xmax, self.ymax)
