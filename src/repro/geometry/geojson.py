"""Minimal GeoJSON encoding/decoding for region geometries.

Only the geometry types the library produces and consumes are supported:
Polygon, MultiPolygon, and FeatureCollections of those.  This is the
interchange path for exporting synthetic regions or loading real ones.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import GeometryError
from .polygon import Geometry, MultiPolygon, Polygon


def _ring_to_coords(ring: np.ndarray) -> list[list[float]]:
    """GeoJSON rings repeat the first coordinate at the end."""
    coords = [[float(x), float(y)] for x, y in ring]
    coords.append(coords[0])
    return coords


def geometry_to_geojson(geom: Geometry) -> dict:
    """Encode a Polygon/MultiPolygon as a GeoJSON geometry dict."""
    if isinstance(geom, Polygon):
        rings = [_ring_to_coords(geom.exterior)]
        rings.extend(_ring_to_coords(h) for h in geom.holes)
        return {"type": "Polygon", "coordinates": rings}
    if isinstance(geom, MultiPolygon):
        coords = []
        for poly in geom.polygons:
            rings = [_ring_to_coords(poly.exterior)]
            rings.extend(_ring_to_coords(h) for h in poly.holes)
            coords.append(rings)
        return {"type": "MultiPolygon", "coordinates": coords}
    raise GeometryError(f"cannot encode geometry of type {type(geom).__name__}")


def geometry_from_geojson(obj: dict) -> Geometry:
    """Decode a GeoJSON Polygon/MultiPolygon geometry dict."""
    gtype = obj.get("type")
    coords = obj.get("coordinates")
    if gtype == "Polygon":
        if not coords:
            raise GeometryError("Polygon with no rings")
        return Polygon(coords[0], tuple(coords[1:]))
    if gtype == "MultiPolygon":
        if not coords:
            raise GeometryError("MultiPolygon with no parts")
        polys = tuple(Polygon(rings[0], tuple(rings[1:])) for rings in coords)
        return MultiPolygon(polys)
    raise GeometryError(f"unsupported GeoJSON geometry type: {gtype!r}")


def feature_collection(
    geometries: list[Geometry], properties: list[dict] | None = None
) -> dict:
    """Bundle geometries (plus optional per-feature properties) into a
    GeoJSON FeatureCollection dict."""
    if properties is None:
        properties = [{} for _ in geometries]
    if len(properties) != len(geometries):
        raise GeometryError("properties list must match geometries list")
    features = [
        {
            "type": "Feature",
            "geometry": geometry_to_geojson(g),
            "properties": dict(p),
        }
        for g, p in zip(geometries, properties)
    ]
    return {"type": "FeatureCollection", "features": features}


def parse_feature_collection(obj: dict) -> tuple[list[Geometry], list[dict]]:
    """Decode a FeatureCollection into (geometries, properties)."""
    if obj.get("type") != "FeatureCollection":
        raise GeometryError(f"expected FeatureCollection, got {obj.get('type')!r}")
    geometries = []
    properties = []
    for feat in obj.get("features", []):
        geometries.append(geometry_from_geojson(feat["geometry"]))
        properties.append(dict(feat.get("properties", {})))
    return geometries, properties


def write_geojson(path, geometries: list[Geometry], properties=None) -> None:
    """Write a FeatureCollection to ``path``."""
    doc = feature_collection(geometries, properties)
    Path(path).write_text(json.dumps(doc))


def read_geojson(path) -> tuple[list[Geometry], list[dict]]:
    """Read a FeatureCollection from ``path``."""
    doc = json.loads(Path(path).read_text())
    return parse_feature_collection(doc)
