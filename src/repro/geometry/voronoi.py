"""Bounded Voronoi partitions.

The synthetic city's region hierarchies (boroughs / neighborhoods /
tracts) are Voronoi diagrams of seed points, clipped to the city
boundary.  ``scipy.spatial.Voronoi`` produces unbounded cells for hull
seeds; we bound every cell by mirroring the seeds across the four sides
of an enclosing box — a standard trick that makes all interior cells
finite and exact within the box.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Voronoi

from ..errors import GeometryError
from .bbox import BBox
from .clip import clip_polygon_convex
from .point import as_points, polygon_signed_area


def bounded_voronoi_cells(seeds, bbox: BBox) -> list[np.ndarray]:
    """Voronoi cells of ``seeds``, each clipped to ``bbox``.

    Returns one CCW vertex array per seed, in seed order.  Every cell is
    a convex polygon; the union of cells tiles the box.
    """
    pts = as_points(seeds)
    if len(pts) < 1:
        raise GeometryError("need at least one seed point")
    if not bbox.contains_points(pts).all():
        raise GeometryError("all seeds must lie inside the bounding box")

    if len(pts) == 1:
        return [bbox.corners()]
    if len(pts) < 4:
        # scipy's Voronoi needs >= 4 sites in 2-D; pad with mirrors only.
        pass

    # Mirror seeds across each side of the box so every original cell is
    # bounded (its neighbors include the mirrored ghosts).
    left = pts.copy()
    left[:, 0] = 2 * bbox.xmin - left[:, 0]
    right = pts.copy()
    right[:, 0] = 2 * bbox.xmax - right[:, 0]
    down = pts.copy()
    down[:, 1] = 2 * bbox.ymin - down[:, 1]
    up = pts.copy()
    up[:, 1] = 2 * bbox.ymax - up[:, 1]
    all_pts = np.vstack([pts, left, right, down, up])

    vor = Voronoi(all_pts)
    cells: list[np.ndarray] = []
    for i in range(len(pts)):
        region_idx = vor.point_region[i]
        region = vor.regions[region_idx]
        if -1 in region or len(region) < 3:
            raise GeometryError(f"seed {i} produced an unbounded cell")
        verts = vor.vertices[region]
        if polygon_signed_area(verts) < 0:
            verts = verts[::-1]
        # Clip to the box to remove numerical spill-over.
        clipped = clip_polygon_convex(verts, bbox.corners())
        if len(clipped) < 3:
            raise GeometryError(f"seed {i} produced a degenerate cell")
        cells.append(clipped)
    return cells


def clip_cells_to_boundary(cells: list[np.ndarray], boundary) -> list[np.ndarray]:
    """Intersect convex Voronoi cells with an arbitrary boundary ring.

    Because each cell is convex, the intersection is computed as
    Sutherland–Hodgman of the *boundary* (subject, possibly non-convex)
    against the *cell* (clip, convex).  Cells entirely outside the
    boundary yield empty arrays.
    """
    boundary = as_points(boundary)
    result = []
    for cell in cells:
        clipped = clip_polygon_convex(boundary, cell)
        result.append(clipped)
    return result
