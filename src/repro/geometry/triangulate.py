"""Ear-clipping triangulation.

The GPU Raster Join renders polygons by tessellating them into triangles;
this module provides the equivalent step for the software pipeline (used
by the ablation benchmark that compares triangulated rasterization with
direct scanline rasterization).
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError
from .point import as_points, polygon_signed_area
from .predicates import orient2d


def _point_in_triangle(px, py, ax, ay, bx, by, cx, cy) -> bool:
    d1 = orient2d(ax, ay, bx, by, px, py)
    d2 = orient2d(bx, by, cx, cy, px, py)
    d3 = orient2d(cx, cy, ax, ay, px, py)
    has_neg = (d1 < 0) or (d2 < 0) or (d3 < 0)
    has_pos = (d1 > 0) or (d2 > 0) or (d3 > 0)
    return not (has_neg and has_pos)


def triangulate_ring(ring) -> list[tuple[int, int, int]]:
    """Triangulate a simple ring via ear clipping.

    Returns index triples into the (normalized, CCW) vertex array.  Runs
    in O(n^2), fine for the vertex counts of urban region polygons.
    """
    verts = as_points(ring)
    if len(verts) < 3:
        raise GeometryError("cannot triangulate ring with < 3 vertices")
    if polygon_signed_area(verts) < 0:
        verts = verts[::-1].copy()

    n = len(verts)
    if n == 3:
        return [(0, 1, 2)]

    indices = list(range(n))
    triangles: list[tuple[int, int, int]] = []
    guard = 0
    max_iter = 2 * n * n  # safety net against pathological input

    while len(indices) > 3 and guard < max_iter:
        guard += 1
        m = len(indices)
        ear_found = False
        for k in range(m):
            i_prev = indices[(k - 1) % m]
            i_cur = indices[k]
            i_next = indices[(k + 1) % m]
            ax, ay = verts[i_prev]
            bx, by = verts[i_cur]
            cx, cy = verts[i_next]
            if orient2d(ax, ay, bx, by, cx, cy) <= 0:
                continue  # reflex or collinear vertex, not an ear
            # An ear must not contain any other remaining vertex.
            contains_other = False
            for other in indices:
                if other in (i_prev, i_cur, i_next):
                    continue
                px, py = verts[other]
                if _point_in_triangle(px, py, ax, ay, bx, by, cx, cy):
                    contains_other = True
                    break
            if contains_other:
                continue
            triangles.append((i_prev, i_cur, i_next))
            indices.pop(k)
            ear_found = True
            break
        if not ear_found:
            # Numerically degenerate remainder: fan the rest and stop.
            break

    if len(indices) == 3:
        triangles.append((indices[0], indices[1], indices[2]))
    elif len(indices) > 3:
        # Fallback fan for the (degenerate) remainder.
        for k in range(1, len(indices) - 1):
            triangles.append((indices[0], indices[k], indices[k + 1]))
    return triangles


def triangulate_ring_vertices(ring) -> np.ndarray:
    """Triangulation as a ``(t, 3, 2)`` array of triangle vertices."""
    verts = as_points(ring)
    if polygon_signed_area(verts) < 0:
        verts = verts[::-1].copy()
    tris = triangulate_ring(verts)
    return np.array([[verts[a], verts[b], verts[c]] for a, b, c in tris])


def triangle_areas(triangles: np.ndarray) -> np.ndarray:
    """Signed areas of a ``(t, 3, 2)`` triangle array."""
    a = triangles[:, 0]
    b = triangles[:, 1]
    c = triangles[:, 2]
    return 0.5 * (
        (b[:, 0] - a[:, 0]) * (c[:, 1] - a[:, 1])
        - (b[:, 1] - a[:, 1]) * (c[:, 0] - a[:, 0])
    )
