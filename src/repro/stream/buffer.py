"""Append-only point streams with incremental raster-join state.

The demo's motivation includes *social sensors* — feeds that keep
arriving while the analyst explores.  A :class:`PointStream` accepts
batches of new points (same schema, non-decreasing timestamps, like any
event log) and maintains, incrementally per batch:

* the consolidated columnar table (chunk list, consolidated lazily);
* each point's pixel id under a fixed registered viewport;
* each point's region label (pixel -> region, the raster join's
  labeling by-product), and from it a running region x time-bucket
  count matrix — so the "what is happening right now, where" view is
  O(1) to read at any moment.

Ad-hoc filtered queries still need the raw points; time windows are
served by binary search over the (sorted) timestamps, so a sliding
window query costs O(window), not O(history).
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from ..core.context import ExecutionContext
from ..core.heatmatrix import RegionTimeMatrix, pixel_region_labels
from ..core.parallel import ParallelConfig, parallel_build_fragment_table
from ..core.regions import RegionSet
from ..errors import QueryError, SchemaError
from ..raster import FragmentTable, Viewport, build_fragment_table
from ..table import PointTable


class PointStream:
    """An append-only spatio-temporal point stream over a region set.

    Pass the engine's ``context`` to share the unified execution cache:
    the polygon raster for (regions, viewport) is then fetched from —
    or left behind for — the interactive query path instead of being
    built twice.
    """

    def __init__(self, regions: RegionSet, resolution: int = 512,
                 time_column: str = "t", bucket_seconds: int = 3_600,
                 origin: int | None = None,
                 context: ExecutionContext | None = None,
                 parallel: ParallelConfig | None = None):
        if bucket_seconds < 1:
            raise QueryError("bucket_seconds must be >= 1")
        self.regions = regions
        self.time_column = time_column
        self.bucket_seconds = int(bucket_seconds)
        self.viewport: Viewport = Viewport.fit(regions.bbox, resolution)
        if context is not None:
            # The context's fragment build is already parallel-aware.
            self.fragments: FragmentTable = context.fragments_for(
                regions, self.viewport)
        else:
            geometries = list(regions.geometries)
            config = parallel or ParallelConfig()
            if config.decide_regions(len(geometries))["use"]:
                self.fragments = parallel_build_fragment_table(
                    geometries, self.viewport, config)
            else:
                self.fragments = build_fragment_table(
                    geometries, self.viewport)
        self._labels = pixel_region_labels(self.fragments)

        self._chunks: list[PointTable] = []
        self._consolidated: PointTable | None = None
        self._last_timestamp: int | None = None
        #: Monotone append count; the serving layer stamps it into
        #: response stats so a client can tell which snapshot of a live
        #: stream answered its query.
        self._version = 0
        self._origin = origin
        # Running (region, bucket) counts; grown as time advances.
        self._matrix = np.zeros((len(regions), 0), dtype=np.float64)
        self._append_seconds = 0.0
        self._parallel = parallel or (context.parallel if context
                                      is not None else ParallelConfig())
        # Temporal canvas cubes kept live across appends, keyed by value
        # column (None = count-only).  Event-log order means new points
        # only ever land in the tail bucket onward, so each batch is an
        # O(batch + pixels) prefix update instead of a rebuild.
        self._tcubes: dict[str | None, "TemporalCanvasCube"] = {}

    # -- ingestion ----------------------------------------------------------

    def append(self, batch: PointTable) -> dict:
        """Ingest one batch; returns per-batch ingestion statistics.

        Batches must share the schema of earlier batches and arrive in
        event-log order: the batch's timestamps are sorted and must not
        precede the last ingested timestamp.
        """
        t0 = time.perf_counter()
        if len(batch) == 0:
            return {"rows": 0, "time_append_s": 0.0}
        tvals = batch.column(self.time_column).values
        if len(tvals) > 1 and (np.diff(tvals) < 0).any():
            raise QueryError("batch timestamps must be non-decreasing")
        if self._last_timestamp is not None and int(tvals[0]) < \
                self._last_timestamp:
            raise QueryError(
                f"batch starts at {int(tvals[0])}, before the last "
                f"ingested timestamp {self._last_timestamp}")
        if self._chunks and batch.column_names != \
                self._chunks[0].column_names:
            raise SchemaError(
                f"batch schema {batch.column_names} does not match the "
                f"stream's {self._chunks[0].column_names}")

        # Incremental labeling: pixel -> region for the new points only.
        pixel_ids, valid = self.viewport.pixel_ids_of(batch.x, batch.y)
        labels = np.where(valid, self._labels[pixel_ids], -1)

        if self._origin is None:
            self._origin = (int(tvals[0]) // self.bucket_seconds
                            * self.bucket_seconds)
        buckets = (tvals - self._origin) // self.bucket_seconds
        inside = labels >= 0
        if inside.any():
            max_bucket = int(buckets[inside].max())
            self._grow_matrix(max_bucket + 1)
            np.add.at(self._matrix,
                      (labels[inside].astype(np.int64),
                       buckets[inside].astype(np.int64)), 1.0)

        for cube in self._tcubes.values():
            values = None
            if cube.value_column is not None:
                values = batch.column(cube.value_column).values.astype(
                    np.float64, copy=False)[valid]
            cube.append(pixel_ids[valid], tvals[valid], values=values,
                        all_in_viewport=bool(valid.all()))

        self._chunks.append(batch)
        self._consolidated = None
        self._last_timestamp = int(tvals[-1])
        self._version += 1
        elapsed = time.perf_counter() - t0
        self._append_seconds += elapsed
        return {
            "rows": len(batch),
            "rows_in_regions": int(inside.sum()),
            "time_append_s": elapsed,
        }

    def _grow_matrix(self, num_buckets: int) -> None:
        if num_buckets <= self._matrix.shape[1]:
            return
        grown = np.zeros((len(self.regions), num_buckets))
        grown[:, :self._matrix.shape[1]] = self._matrix
        self._matrix = grown

    # -- state access -----------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(c) for c in self._chunks)

    @property
    def last_timestamp(self) -> int | None:
        return self._last_timestamp

    @property
    def version(self) -> int:
        """Number of batches ingested so far (snapshot identifier).

        Consolidation produces a fresh table object per version, so a
        query served at version N caches — and coalesces — under keys
        that stop matching the moment version N+1 lands.
        """
        return self._version

    def table(self) -> PointTable:
        """The consolidated stream contents (cached between appends)."""
        if not self._chunks:
            raise QueryError("stream is empty")
        if self._consolidated is None:
            if len(self._chunks) == 1:
                self._consolidated = self._chunks[0]
            else:
                self._consolidated = PointTable.concat(self._chunks,
                                                       name="stream")
                self._chunks = [self._consolidated]
        return self._consolidated

    def window_table(self, start: int, end: int) -> PointTable:
        """Rows with ``start <= t < end`` (binary search, O(window))."""
        if end <= start:
            raise QueryError(f"empty window [{start}, {end})")
        table = self.table()
        tvals = table.column(self.time_column).values
        lo = int(np.searchsorted(tvals, start, side="left"))
        hi = int(np.searchsorted(tvals, end, side="left"))
        return table.take(np.arange(lo, hi))

    def spill(self, dataset_dir, before: int | None = None,
              **writer_kwargs) -> dict:
        """Flush the buffer's settled head into an on-disk store.

        Rows with ``t < before`` move to the partitioned store at
        ``dataset_dir`` (created on the first spill, appended to on
        later ones); the live buffer keeps only the tail.  ``before``
        defaults to the start of the bucket holding the last ingested
        timestamp, so the still-open bucket stays resident and every
        closed bucket goes out of core.  Spilled partitions inherit the
        stream's time column and bucket width, so the store prunes on
        the same temporal grid the stream brushes on.

        The running aggregates (:meth:`matrix` and live :meth:`tcube`
        cubes) are incremental accumulations over the full history and
        keep answering for spilled rows; only raw-row access
        (:meth:`table`, :meth:`window_table`) narrows to the retained
        tail.  Open the store as a :class:`repro.store.Dataset` to
        query the spilled history.
        """
        from ..store.format import read_manifest
        from ..store.writer import DatasetWriter

        path = Path(dataset_dir)
        if before is None:
            if self._last_timestamp is None:
                before = 0
            else:
                origin = self._origin or 0
                before = origin + ((self._last_timestamp - origin)
                                   // self.bucket_seconds
                                   * self.bucket_seconds)
        before = int(before)
        rows = len(self)
        cut = 0
        if rows:
            table = self.table()
            tvals = table.column(self.time_column).values
            cut = int(np.searchsorted(tvals, before, side="left"))
        if cut == 0:
            return {"rows_spilled": 0, "rows_retained": rows,
                    "before": before, "path": str(path)}

        writer_kwargs.setdefault("time_column", self.time_column)
        writer_kwargs.setdefault("time_bucket_seconds",
                                 self.bucket_seconds)
        # A fixed grid bbox keeps partition keys stable across spills
        # even though each spill sees a different slice of the data.
        writer_kwargs.setdefault("grid_bbox", self.regions.bbox)
        append = (path / "manifest.json").exists()
        with DatasetWriter(path, append=append, **writer_kwargs) as writer:
            writer.add_chunk(table.take(np.arange(cut)))

        if cut == rows:
            self._chunks = []
            self._consolidated = None
        else:
            tail = table.take(np.arange(cut, rows))
            self._chunks = [tail]
            self._consolidated = tail
        self._version += 1
        manifest = read_manifest(path)
        return {"rows_spilled": cut, "rows_retained": rows - cut,
                "before": before, "path": str(path),
                "store_partitions": len(manifest.partitions)}

    def tcube(self, value_column: str | None = None):
        """The stream's live temporal canvas cube (built on first use).

        Built once from the consolidated history, then kept current by
        :meth:`append` via tail-bucket prefix updates — so interactive
        brushes over a running stream never pay a re-scatter.
        """
        from ..core.tcube import build_temporal_canvas_cube

        cube = self._tcubes.get(value_column)
        if cube is None:
            cube = build_temporal_canvas_cube(
                self.table(), self.viewport, self.time_column,
                self.bucket_seconds, value_column=value_column,
                origin=self._origin, config=self._parallel)
            self._tcubes[value_column] = cube
        return cube

    def brush(self, start: int, end: int, agg: str = "count",
              value_column: str | None = None):
        """Bounded aggregation over ``[start, end)`` from the live cube.

        ``start``/``end`` must align to the stream's bucket grid (or
        clamp outside it); the answer is bitwise-identical to running
        the bounded raster join over :meth:`window_table`.
        """
        from ..core.query import SpatialAggregation
        from ..table import TimeRange

        query = SpatialAggregation(
            agg, value_column, (TimeRange(self.time_column, start, end),))
        cube = self.tcube(value_column)
        if not cube.can_answer(query, self.viewport):
            raise QueryError(
                f"brush [{start}, {end}) does not align to the stream's "
                f"{self.bucket_seconds}s buckets (origin {cube.origin})")
        return cube.answer(self.regions, self.fragments, query)

    def matrix(self) -> RegionTimeMatrix:
        """The running region x time count matrix (O(1) snapshot)."""
        num_buckets = max(1, self._matrix.shape[1])
        self._grow_matrix(num_buckets)
        starts = (self._origin or 0) + np.arange(
            num_buckets, dtype=np.int64) * self.bucket_seconds
        return RegionTimeMatrix(
            regions=self.regions,
            bucket_starts=starts,
            values=self._matrix.copy(),
            bucket_seconds=self.bucket_seconds,
            stats={"rows_ingested": len(self),
                   "time_append_total_s": self._append_seconds},
        )

    def hot_regions(self, window_buckets: int = 1, history_buckets: int = 24,
                    min_rate: float = 2.0) -> list[tuple[str, float]]:
        """Regions whose recent activity outruns their own history.

        Compares the mean count of the last ``window_buckets`` buckets
        against the mean of the preceding ``history_buckets``; returns
        (region name, burst ratio) for regions at or above ``min_rate``,
        hottest first.  This is the stream-monitoring gadget Urbane's
        social-feed layer motivates.
        """
        total = self._matrix.shape[1]
        if total < window_buckets + 1:
            return []
        recent = self._matrix[:, total - window_buckets:].mean(axis=1)
        lo = max(0, total - window_buckets - history_buckets)
        base = self._matrix[:, lo:total - window_buckets]
        if base.shape[1] == 0:
            return []
        baseline = base.mean(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = recent / baseline
        ratio[baseline == 0] = np.where(recent[baseline == 0] > 0,
                                        np.inf, 0.0)
        hot = [(self.regions.region_names[i], float(ratio[i]))
               for i in np.argsort(ratio)[::-1]
               if ratio[i] >= min_rate and recent[i] > 0]
        return hot
