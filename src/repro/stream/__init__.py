"""Streaming substrate: append-only feeds over the raster join.

The paper's motivation includes social-sensor streams; this package
provides :class:`PointStream` — an append-only spatio-temporal buffer
that maintains incremental raster-join state (pixel labels, a running
region x time matrix) so "now" views are O(1) and sliding-window
queries cost O(window).
"""

from .buffer import PointStream

__all__ = ["PointStream"]
