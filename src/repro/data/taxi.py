"""Synthetic taxi-trip generator.

Stands in for the NYC TLC trip records the demo visualizes (Figure 1
shows taxi pickups for January 2009 aggregated over neighborhoods).
Each record is a pickup event with the attribute schema downstream
queries exercise: timestamp, fare, trip distance, tip, passenger count
and payment type.  Attribute distributions follow the well-known TLC
marginals (exponential-ish distances, metered fares with a flag drop,
card/cash mix with card-only tips).
"""

from __future__ import annotations

import numpy as np

from ..errors import DataGenerationError
from ..table import PointTable, categorical_column, timestamp_column
from .city import CityModel
from .temporal import DEFAULT_EPOCH, SECONDS_PER_DAY, TemporalPattern, taxi_pattern

PAYMENT_TYPES = ("card", "cash")
VENDORS = ("vts", "cmt", "dds")

#: Fare model constants (2009-era NYC metered fare, simplified).
FLAG_DROP_USD = 2.50
PER_KM_USD = 1.56


def generate_taxi_trips(
    city: CityModel,
    n: int,
    start: int = DEFAULT_EPOCH,
    end: int = DEFAULT_EPOCH + 30 * SECONDS_PER_DAY,
    seed: int = 1,
    pattern: TemporalPattern | None = None,
) -> PointTable:
    """Generate ``n`` taxi pickups in the time window [start, end)."""
    if n < 1:
        raise DataGenerationError("need at least one trip")
    rng = np.random.default_rng(seed)
    pattern = pattern or taxi_pattern()

    # Pickups concentrate in commercial hotspots (low uniform share).
    locs = city.sample_locations(rng, n, uniform_fraction=0.10)
    ts = pattern.sample_timestamps(rng, n, start, end)

    # Trip distance (km): lognormal body with a short-hop floor.
    distance_km = np.maximum(0.3, rng.lognormal(mean=0.9, sigma=0.7, size=n))
    # Metered fare plus surcharge noise.
    fare = (FLAG_DROP_USD + PER_KM_USD * distance_km
            + rng.normal(0.0, 0.8, size=n)).clip(FLAG_DROP_USD)
    passengers = rng.choice([1, 1, 1, 2, 2, 3, 4, 5, 6], size=n)
    payment = rng.choice(len(PAYMENT_TYPES), size=n,
                         p=[0.55, 0.45]).astype(np.int32)
    # Tips: card rides tip ~18% +- noise; cash tips unrecorded (0).
    tip = np.where(
        payment == PAYMENT_TYPES.index("card"),
        (fare * rng.normal(0.18, 0.06, size=n)).clip(0.0),
        0.0,
    )
    vendor = rng.choice(list(VENDORS), size=n, p=[0.5, 0.4, 0.1])

    return PointTable.from_arrays(
        locs[:, 0], locs[:, 1],
        name="taxi",
        t=timestamp_column("t", ts),
        fare=fare,
        distance_km=distance_km,
        tip=tip,
        passengers=passengers.astype(np.float64),
        payment=categorical_column("payment", np.asarray(PAYMENT_TYPES,
                                                         dtype=object)[payment]),
        vendor=categorical_column("vendor", vendor),
    )
