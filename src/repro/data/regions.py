"""Synthetic region hierarchies.

Real cities expose nested administrative resolutions (boroughs >
neighborhoods > census tracts); Urbane lets the user switch among them.
Here each resolution is a Voronoi partition of the city boundary with a
level-specific seed count, so finer levels have more, smaller, more
boundary-heavy polygons — the axis the polygon-resolution experiments
sweep.
"""

from __future__ import annotations

import numpy as np

from ..core.regions import RegionSet
from ..errors import DataGenerationError, GeometryError
from ..geometry import (
    BBox,
    Polygon,
    bounded_voronoi_cells,
    clip_cells_to_boundary,
    polygon_signed_area,
)
from .city import CityModel

#: Named resolutions mirroring the demo's NYC levels.
RESOLUTION_LEVELS = {
    "boroughs": 5,
    "neighborhoods": 71,
    "districts": 297,
    "tracts": 1200,
}


def voronoi_regions(city: CityModel, count: int, name: str,
                    seed: int | None = None) -> RegionSet:
    """A Voronoi partition of the city into ``count`` regions.

    Seeds are uniform inside the boundary; degenerate clipped cells
    (slivers smaller than 1e-6 of the city area) are dropped, so the
    returned set can be slightly smaller than ``count``.
    """
    if count < 1:
        raise DataGenerationError("region count must be >= 1")
    rng = np.random.default_rng(city.seed if seed is None else seed)
    seeds = city.sample_interior_points(rng, count)
    cells = bounded_voronoi_cells(seeds, city.bbox)
    clipped = clip_cells_to_boundary(cells, city.boundary.exterior)

    min_area = 1e-6 * city.boundary.area
    geometries = []
    for cell in clipped:
        if len(cell) < 3:
            continue
        if abs(polygon_signed_area(cell)) < min_area:
            continue
        try:
            geometries.append(Polygon(cell))
        except GeometryError:
            continue
    if not geometries:
        raise DataGenerationError("no usable region polygons generated")
    names = [f"{name}-{i:04d}" for i in range(len(geometries))]
    return RegionSet(name, geometries, names)


def region_hierarchy(city: CityModel,
                     levels: dict[str, int] | None = None
                     ) -> dict[str, RegionSet]:
    """All named resolutions for a city (coarse to fine)."""
    levels = dict(levels or RESOLUTION_LEVELS)
    return {lvl: voronoi_regions(city, cnt, name=lvl)
            for lvl, cnt in levels.items()}


def grid_regions(bbox: BBox, nx: int, ny: int, name: str = "grid"
                 ) -> RegionSet:
    """A rectangular nx x ny grid over ``bbox`` (the trivially
    pre-aggregable region set the cube baseline anticipates)."""
    if nx < 1 or ny < 1:
        raise DataGenerationError("grid needs >= 1 cell per axis")
    cw = bbox.width / nx
    ch = bbox.height / ny
    geometries = []
    names = []
    for iy in range(ny):
        for ix in range(nx):
            x0 = bbox.xmin + ix * cw
            y0 = bbox.ymin + iy * ch
            geometries.append(Polygon([
                [x0, y0], [x0 + cw, y0], [x0 + cw, y0 + ch], [x0, y0 + ch]]))
            names.append(f"{name}-{ix}-{iy}")
    return RegionSet(name, geometries, names)
