"""Synthetic geotagged social-feed generator.

Stands in for the "social sensors" the paper cites (e.g. geotagged
tweets): a bursty spatio-temporal stream.  On top of the city's usual
hotspot mixture and a daytime-ish rhythm, the generator plants
*events* — short, localized bursts (a stadium emptying, a parade) —
which are exactly what the streaming layer's hot-region detector should
surface.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataGenerationError
from ..table import PointTable, categorical_column, timestamp_column
from .city import CityModel
from .temporal import DEFAULT_EPOCH, SECONDS_PER_DAY, TemporalPattern

TOPICS = ("food", "traffic", "events", "sports", "news", "nightlife")
TOPIC_MIX = (0.24, 0.18, 0.17, 0.15, 0.14, 0.12)


@dataclass(frozen=True)
class Burst:
    """One planted event: a localized surge of posts."""

    x: float
    y: float
    start: int
    duration_s: int
    posts: int
    sigma_m: float


def social_pattern() -> TemporalPattern:
    """Posting rhythm: lunchtime and evening heavy."""
    weekday = np.array([2, 1, 1, 0.5, 0.5, 1, 2, 4, 6, 7, 8, 10,
                        11, 10, 8, 7, 7, 8, 10, 11, 11, 9, 6, 4])
    weekend = np.array([5, 4, 3, 2, 1, 1, 1, 2, 4, 6, 8, 10,
                        11, 11, 10, 9, 9, 9, 10, 11, 12, 11, 9, 7])
    return TemporalPattern(weekday, weekend, name="social")


def generate_social_posts(
    city: CityModel,
    n: int,
    start: int = DEFAULT_EPOCH,
    end: int = DEFAULT_EPOCH + 7 * SECONDS_PER_DAY,
    seed: int = 4,
    num_bursts: int = 3,
    burst_fraction: float = 0.15,
) -> tuple[PointTable, list[Burst]]:
    """Generate ``n`` posts plus the planted bursts (ground truth).

    ``burst_fraction`` of the posts belong to ``num_bursts`` planted
    events; the returned burst list lets tests and demos check that the
    detector finds what was planted.  The table comes back sorted by
    timestamp (a stream).
    """
    if n < 1:
        raise DataGenerationError("need at least one post")
    if not (0.0 <= burst_fraction < 1.0):
        raise DataGenerationError("burst_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    pattern = social_pattern()

    n_burst_total = int(n * burst_fraction) if num_bursts else 0
    n_base = n - n_burst_total

    locs = city.sample_locations(rng, n_base, uniform_fraction=0.25)
    ts = pattern.sample_timestamps(rng, n_base, start, end)
    xs = [locs[:, 0]]
    ys = [locs[:, 1]]
    tss = [ts]

    bursts: list[Burst] = []
    if num_bursts and n_burst_total:
        per_burst = n_burst_total // num_bursts
        span = end - start
        for b in range(num_bursts):
            hotspot = city.hotspots[int(rng.integers(len(city.hotspots)))]
            burst_start = int(start + span * rng.uniform(0.2, 0.9))
            duration = int(rng.integers(1_800, 7_200))
            sigma = float(city.extent_m * 0.01)
            count = per_burst if b < num_bursts - 1 else (
                n_burst_total - per_burst * (num_bursts - 1))
            bursts.append(Burst(hotspot.x, hotspot.y, burst_start,
                                duration, count, sigma))
            xs.append(rng.normal(hotspot.x, sigma, count))
            ys.append(rng.normal(hotspot.y, sigma, count))
            tss.append(rng.integers(burst_start,
                                    burst_start + duration,
                                    count).astype(np.int64))

    x = np.concatenate(xs)
    y = np.concatenate(ys)
    t = np.concatenate(tss)
    order = np.argsort(t, kind="stable")

    topic_idx = rng.choice(len(TOPICS), size=n, p=TOPIC_MIX)
    topic = np.asarray(TOPICS, dtype=object)[topic_idx]
    engagement = rng.lognormal(1.2, 1.0, n).round(0)

    table = PointTable.from_arrays(
        x[order], y[order],
        name="social",
        t=timestamp_column("t", t[order]),
        topic=categorical_column("topic", topic),
        engagement=engagement,
    )
    return table, bursts
