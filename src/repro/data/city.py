"""The synthetic city model.

The paper's demo explores New York City data; offline we synthesize a
city with the same statistical ingredients: an irregular (non-convex)
boundary, a handful of activity hotspots of different intensities
(business district, entertainment, airports, residential cores), and a
metric local coordinate system.  Every generator in this package draws
its spatial structure from a :class:`CityModel`, so data sets share
hotspots the way taxi trips, 311 complaints and crime incidents share a
real city's geography.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataGenerationError
from ..geometry import BBox, LocalProjection, Polygon, points_in_ring

#: Default city extent (meters); roughly the span of a large city.
DEFAULT_EXTENT_M = 30_000.0


@dataclass(frozen=True)
class Hotspot:
    """One activity center: an anisotropic Gaussian intensity bump."""

    name: str
    x: float
    y: float
    sigma_x: float
    sigma_y: float
    weight: float

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` points from the hotspot's Gaussian."""
        pts = np.empty((n, 2))
        pts[:, 0] = rng.normal(self.x, self.sigma_x, n)
        pts[:, 1] = rng.normal(self.y, self.sigma_y, n)
        return pts


class CityModel:
    """A seeded synthetic city: boundary, hotspots, projection."""

    def __init__(self, seed: int = 7, extent_m: float = DEFAULT_EXTENT_M,
                 num_hotspots: int = 8, boundary_vertices: int = 72,
                 lon0: float = -74.0, lat0: float = 40.7):
        if extent_m <= 0:
            raise DataGenerationError("extent must be positive")
        if num_hotspots < 1:
            raise DataGenerationError("need at least one hotspot")
        if boundary_vertices < 8:
            raise DataGenerationError("boundary needs >= 8 vertices")
        self.seed = int(seed)
        self.extent_m = float(extent_m)
        self.projection = LocalProjection(lon0, lat0)
        rng = np.random.default_rng(seed)

        # Boundary: a star-shaped ring around the center whose radius is
        # a low-frequency random Fourier series — irregular and
        # non-convex like a real municipal boundary.
        half = extent_m / 2.0
        angles = np.linspace(0.0, 2.0 * np.pi, boundary_vertices,
                             endpoint=False)
        radius = np.full(boundary_vertices, 0.72)
        for harmonic in range(2, 7):
            amp = rng.uniform(0.02, 0.10) / (harmonic - 1)
            phase = rng.uniform(0.0, 2.0 * np.pi)
            radius += amp * np.sin(harmonic * angles + phase)
        radius = np.clip(radius, 0.45, 0.98) * half
        ring = np.column_stack([radius * np.cos(angles),
                                radius * np.sin(angles)])
        self.boundary = Polygon(ring)

        # Hotspots: the first is the dominant "downtown", the rest decay
        # in weight; all placed well inside the boundary.
        names = ["downtown", "midtown", "airport", "stadium", "harbor",
                 "university", "market", "park-edge", "old-town",
                 "tech-row", "theater", "station"]
        hotspots = []
        for i in range(num_hotspots):
            # Rejection-sample a center inside the (shrunken) boundary.
            for _ in range(1000):
                cx = rng.uniform(-0.6 * half, 0.6 * half)
                cy = rng.uniform(-0.6 * half, 0.6 * half)
                if self.boundary.contains_point(cx, cy):
                    break
            else:
                raise DataGenerationError("could not place hotspot")
            spread = extent_m * rng.uniform(0.015, 0.06) * (1.0 + 0.4 * i)
            hotspots.append(Hotspot(
                name=names[i % len(names)],
                x=cx, y=cy,
                sigma_x=spread * rng.uniform(0.7, 1.3),
                sigma_y=spread * rng.uniform(0.7, 1.3),
                weight=1.0 / (1.0 + 0.8 * i),
            ))
        self.hotspots: tuple[Hotspot, ...] = tuple(hotspots)

    @property
    def bbox(self) -> BBox:
        return self.boundary.bbox

    def hotspot_weights(self) -> np.ndarray:
        w = np.array([h.weight for h in self.hotspots])
        return w / w.sum()

    def sample_locations(self, rng: np.random.Generator, n: int,
                         uniform_fraction: float = 0.15,
                         clip_to_boundary: bool = True) -> np.ndarray:
        """Draw event locations: hotspot mixture + uniform background.

        ``uniform_fraction`` of the points come from a uniform layer over
        the city's bbox (suburban noise); the rest from the hotspot
        mixture.  With ``clip_to_boundary`` points landing outside the
        boundary are re-drawn (a few stragglers may remain after the
        retry cap, matching real data's GPS noise).
        """
        if not (0.0 <= uniform_fraction <= 1.0):
            raise DataGenerationError("uniform_fraction must be in [0, 1]")
        weights = self.hotspot_weights() * (1.0 - uniform_fraction)
        weights = np.concatenate([weights, [uniform_fraction]])
        choice = rng.choice(len(weights), size=n, p=weights)
        pts = np.empty((n, 2))
        for i, hotspot in enumerate(self.hotspots):
            sel = choice == i
            cnt = int(sel.sum())
            if cnt:
                pts[sel] = hotspot.sample(rng, cnt)
        sel = choice == len(self.hotspots)
        cnt = int(sel.sum())
        if cnt:
            box = self.bbox
            pts[sel, 0] = rng.uniform(box.xmin, box.xmax, cnt)
            pts[sel, 1] = rng.uniform(box.ymin, box.ymax, cnt)

        if clip_to_boundary:
            for _ in range(8):
                outside = ~self.boundary.contains_points(pts)
                bad = int(outside.sum())
                if bad == 0:
                    break
                pts[outside] = self.sample_locations(
                    rng, bad, uniform_fraction, clip_to_boundary=False)
        return pts

    def sample_interior_points(self, rng: np.random.Generator,
                               n: int) -> np.ndarray:
        """Uniform points strictly inside the boundary (region seeds)."""
        box = self.bbox
        out = np.empty((n, 2))
        filled = 0
        ring = self.boundary.exterior
        while filled < n:
            batch = max(64, 2 * (n - filled))
            cand = np.column_stack([
                rng.uniform(box.xmin, box.xmax, batch),
                rng.uniform(box.ymin, box.ymax, batch),
            ])
            good = cand[points_in_ring(cand, ring)]
            take = min(len(good), n - filled)
            out[filled:filled + take] = good[:take]
            filled += take
        return out

    def __repr__(self) -> str:
        return (f"CityModel(seed={self.seed}, extent={self.extent_m:.0f}m, "
                f"hotspots={len(self.hotspots)})")
