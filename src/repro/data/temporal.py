"""Temporal rhythm models.

Urban event streams follow strong daily and weekly cycles (the taxi
double peak, daytime 311 reporting, nighttime crime).  A
:class:`TemporalPattern` is an hourly intensity profile per weekday-hour
from which timestamps are sampled by inverse-CDF over the whole query
window — so filters like "January, weekday rush hours" select realistic
subsets.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataGenerationError

SECONDS_PER_HOUR = 3_600
SECONDS_PER_DAY = 86_400
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY

#: 2009-01-01 00:00:00 UTC, a Thursday — the demo's taxi month starts here.
DEFAULT_EPOCH = 1_230_768_000
#: Weekday (0=Monday) of the default epoch.
DEFAULT_EPOCH_WEEKDAY = 3


class TemporalPattern:
    """Hourly intensity over a week (168 weights), tiled over time."""

    def __init__(self, weekday_hours: np.ndarray, weekend_hours: np.ndarray,
                 name: str = "pattern"):
        weekday_hours = np.asarray(weekday_hours, dtype=np.float64)
        weekend_hours = np.asarray(weekend_hours, dtype=np.float64)
        if weekday_hours.shape != (24,) or weekend_hours.shape != (24,):
            raise DataGenerationError("hour profiles must have 24 entries")
        if (weekday_hours < 0).any() or (weekend_hours < 0).any():
            raise DataGenerationError("intensities must be non-negative")
        if weekday_hours.sum() == 0 and weekend_hours.sum() == 0:
            raise DataGenerationError("pattern is identically zero")
        self.name = name
        # 168-hour week profile: Monday..Friday weekday, Sat/Sun weekend.
        week = [weekday_hours] * 5 + [weekend_hours] * 2
        self.week_profile = np.concatenate(week)

    def intensity_at_hours(self, hours_since_epoch: np.ndarray,
                           epoch_weekday: int = DEFAULT_EPOCH_WEEKDAY
                           ) -> np.ndarray:
        """Intensity of each absolute hour index (epoch-aligned)."""
        hours = np.asarray(hours_since_epoch, dtype=np.int64)
        week_hour = (hours + epoch_weekday * 24) % 168
        return self.week_profile[week_hour]

    def sample_timestamps(self, rng: np.random.Generator, n: int,
                          start: int, end: int,
                          epoch: int = DEFAULT_EPOCH) -> np.ndarray:
        """Draw ``n`` epoch-second timestamps in [start, end).

        Inverse-CDF over the hourly profile, then uniform within each
        hour.  Timestamps come back sorted (event logs usually are).
        """
        if end <= start:
            raise DataGenerationError(f"empty time window [{start}, {end})")
        h0 = (start - epoch) // SECONDS_PER_HOUR
        h1 = -(-(end - epoch) // SECONDS_PER_HOUR)  # ceil
        hours = np.arange(h0, h1)
        weights = self.intensity_at_hours(hours)
        if weights.sum() == 0:
            weights = np.ones_like(weights)
        probs = weights / weights.sum()
        chosen = rng.choice(len(hours), size=n, p=probs)
        ts = (epoch + hours[chosen] * SECONDS_PER_HOUR
              + rng.integers(0, SECONDS_PER_HOUR, size=n))
        ts = np.clip(ts, start, end - 1)
        return np.sort(ts.astype(np.int64))


def taxi_pattern() -> TemporalPattern:
    """Taxi demand: weekday double peak (8-9h, 18-20h), late weekends."""
    weekday = np.array([2, 1, 1, 1, 1, 2, 5, 9, 12, 9, 7, 7,
                        8, 7, 7, 8, 9, 11, 13, 12, 9, 7, 5, 3],
                       dtype=np.float64)
    weekend = np.array([6, 5, 4, 3, 2, 1, 2, 3, 4, 6, 7, 8,
                        9, 9, 8, 8, 8, 8, 9, 10, 10, 11, 10, 8],
                       dtype=np.float64)
    return TemporalPattern(weekday, weekend, name="taxi")


def daytime_pattern() -> TemporalPattern:
    """311 complaints: business-hours reporting, quiet nights."""
    weekday = np.array([1, 1, 0.5, 0.5, 0.5, 1, 3, 6, 10, 12, 12, 11,
                        10, 10, 10, 9, 8, 7, 5, 4, 3, 2, 2, 1],
                       dtype=np.float64)
    weekend = 0.6 * weekday
    return TemporalPattern(weekday, weekend, name="daytime")


def nighttime_pattern() -> TemporalPattern:
    """Crime incidents: evening/night heavy, weekend amplified."""
    weekday = np.array([8, 7, 6, 4, 3, 2, 2, 2, 3, 3, 3, 4,
                        4, 4, 4, 5, 5, 6, 7, 8, 9, 10, 10, 9],
                       dtype=np.float64)
    weekend = 1.4 * weekday
    return TemporalPattern(weekday, weekend, name="nighttime")


def month_window(year_month_index: int, epoch: int = DEFAULT_EPOCH,
                 days: int = 30) -> tuple[int, int]:
    """A simple 30-day "month" window: [epoch + i*30d, epoch + (i+1)*30d).

    The synthetic calendar uses uniform 30-day months so time filters
    align with cube buckets in the experiments.
    """
    start = epoch + year_month_index * days * SECONDS_PER_DAY
    return start, start + days * SECONDS_PER_DAY
