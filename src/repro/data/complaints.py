"""Synthetic 311 service-request generator.

Stands in for NYC's 311 complaint data set (one of the open urban data
sets the demo layers onto the map).  Complaints skew residential — the
hotspot mixture is re-weighted away from the dominant business core —
and follow a daytime reporting rhythm.  Each record carries a complaint
type, an agency, and a resolution time in hours.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataGenerationError
from ..table import PointTable, categorical_column, timestamp_column
from .city import CityModel
from .temporal import (
    DEFAULT_EPOCH,
    SECONDS_PER_DAY,
    TemporalPattern,
    daytime_pattern,
)

COMPLAINT_TYPES = ("noise", "heating", "parking", "street-condition",
                   "sanitation", "water", "graffiti")
#: Mixture over complaint types (noise dominates, as in the NYC data).
COMPLAINT_MIX = (0.30, 0.18, 0.16, 0.13, 0.11, 0.07, 0.05)
AGENCIES = ("nypd", "hpd", "dot", "dsny", "dep")


def generate_complaints(
    city: CityModel,
    n: int,
    start: int = DEFAULT_EPOCH,
    end: int = DEFAULT_EPOCH + 30 * SECONDS_PER_DAY,
    seed: int = 2,
    pattern: TemporalPattern | None = None,
) -> PointTable:
    """Generate ``n`` 311 complaints in [start, end)."""
    if n < 1:
        raise DataGenerationError("need at least one complaint")
    rng = np.random.default_rng(seed)
    pattern = pattern or daytime_pattern()

    # Residential skew: more uniform mass, i.e. away from hotspots.
    locs = city.sample_locations(rng, n, uniform_fraction=0.35)
    ts = pattern.sample_timestamps(rng, n, start, end)

    kind_idx = rng.choice(len(COMPLAINT_TYPES), size=n, p=COMPLAINT_MIX)
    kind = np.asarray(COMPLAINT_TYPES, dtype=object)[kind_idx]
    agency = rng.choice(list(AGENCIES), size=n,
                        p=[0.35, 0.25, 0.18, 0.13, 0.09])
    # Resolution time: heavy-tailed hours-to-close.
    resolution_h = rng.lognormal(mean=3.2, sigma=1.0, size=n)

    return PointTable.from_arrays(
        locs[:, 0], locs[:, 1],
        name="complaints311",
        t=timestamp_column("t", ts),
        kind=categorical_column("kind", kind),
        agency=categorical_column("agency", agency),
        resolution_h=resolution_h,
    )
