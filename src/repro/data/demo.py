"""One-call demo workload: the city, its resolutions, and three data
sets — everything the examples and benchmarks start from.

Mirrors the demo's setting: a city, several months of taxi trips, 311
complaints and crime incidents, and region sets at multiple resolutions.
All sizes are laptop-scale by default and scalable through parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.regions import RegionSet
from ..table import PointTable
from .city import CityModel
from .complaints import generate_complaints
from .crime import generate_crimes
from .regions import voronoi_regions
from .taxi import generate_taxi_trips
from .temporal import DEFAULT_EPOCH, SECONDS_PER_DAY


@dataclass
class DemoWorkload:
    """The assembled demo data: city, region resolutions, data sets."""

    city: CityModel
    regions: dict[str, RegionSet]
    datasets: dict[str, PointTable]
    start: int
    end: int

    @property
    def months(self) -> int:
        return (self.end - self.start) // (30 * SECONDS_PER_DAY)

    def dataset(self, name: str) -> PointTable:
        return self.datasets[name]

    def region_set(self, level: str) -> RegionSet:
        return self.regions[level]


def load_demo_workload(
    seed: int = 7,
    taxi_rows: int = 500_000,
    complaint_rows: int = 120_000,
    crime_rows: int = 80_000,
    months: int = 3,
    region_levels: dict[str, int] | None = None,
) -> DemoWorkload:
    """Build the standard demo workload (deterministic per seed)."""
    city = CityModel(seed=seed)
    start = DEFAULT_EPOCH
    end = DEFAULT_EPOCH + months * 30 * SECONDS_PER_DAY
    levels = region_levels or {"boroughs": 5, "neighborhoods": 71,
                               "tracts": 400}
    regions = {name: voronoi_regions(city, count, name=name)
               for name, count in levels.items()}
    datasets = {
        "taxi": generate_taxi_trips(city, taxi_rows, start, end,
                                    seed=seed + 1),
        "complaints311": generate_complaints(city, complaint_rows, start,
                                             end, seed=seed + 2),
        "crime": generate_crimes(city, crime_rows, start, end,
                                 seed=seed + 3),
    }
    return DemoWorkload(city=city, regions=regions, datasets=datasets,
                        start=start, end=end)
