"""Synthetic crime-incident generator.

Stands in for the public NYPD complaint data often layered in Urbane.
Incidents follow a nighttime/weekend-amplified rhythm and concentrate
around entertainment hotspots; each record carries an offense category
and a severity score used for weighted aggregates.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataGenerationError
from ..table import PointTable, categorical_column, timestamp_column
from .city import CityModel
from .temporal import (
    DEFAULT_EPOCH,
    SECONDS_PER_DAY,
    TemporalPattern,
    nighttime_pattern,
)

OFFENSES = ("theft", "assault", "burglary", "vandalism", "fraud", "robbery")
OFFENSE_MIX = (0.34, 0.20, 0.15, 0.14, 0.10, 0.07)
#: Mean severity per offense (index-aligned with OFFENSES).
OFFENSE_SEVERITY = (2.0, 6.0, 4.0, 1.5, 3.0, 7.0)


def generate_crimes(
    city: CityModel,
    n: int,
    start: int = DEFAULT_EPOCH,
    end: int = DEFAULT_EPOCH + 30 * SECONDS_PER_DAY,
    seed: int = 3,
    pattern: TemporalPattern | None = None,
) -> PointTable:
    """Generate ``n`` crime incidents in [start, end)."""
    if n < 1:
        raise DataGenerationError("need at least one incident")
    rng = np.random.default_rng(seed)
    pattern = pattern or nighttime_pattern()

    locs = city.sample_locations(rng, n, uniform_fraction=0.20)
    ts = pattern.sample_timestamps(rng, n, start, end)

    offense_idx = rng.choice(len(OFFENSES), size=n, p=OFFENSE_MIX)
    offense = np.asarray(OFFENSES, dtype=object)[offense_idx]
    base = np.asarray(OFFENSE_SEVERITY)[offense_idx]
    severity = (base * rng.lognormal(0.0, 0.3, size=n)).clip(0.5, 10.0)

    return PointTable.from_arrays(
        locs[:, 0], locs[:, 1],
        name="crime",
        t=timestamp_column("t", ts),
        offense=categorical_column("offense", offense),
        severity=severity,
    )
