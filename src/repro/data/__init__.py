"""Synthetic urban data substrate.

Offline stand-ins for the open NYC data sets the demo explores: a
seeded :class:`CityModel` (boundary + hotspots), Voronoi region
hierarchies at several resolutions, and generators for taxi trips, 311
complaints and crime incidents with realistic attribute and temporal
distributions.  :func:`load_demo_workload` assembles the full package.
"""

from .city import DEFAULT_EXTENT_M, CityModel, Hotspot
from .complaints import AGENCIES, COMPLAINT_TYPES, generate_complaints
from .crime import OFFENSES, generate_crimes
from .demo import DemoWorkload, load_demo_workload
from .regions import (
    RESOLUTION_LEVELS,
    grid_regions,
    region_hierarchy,
    voronoi_regions,
)
from .social import TOPICS, Burst, generate_social_posts, social_pattern
from .taxi import PAYMENT_TYPES, VENDORS, generate_taxi_trips
from .temporal import (
    DEFAULT_EPOCH,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_WEEK,
    TemporalPattern,
    daytime_pattern,
    month_window,
    nighttime_pattern,
    taxi_pattern,
)

__all__ = [
    "AGENCIES",
    "Burst",
    "COMPLAINT_TYPES",
    "CityModel",
    "DEFAULT_EPOCH",
    "DEFAULT_EXTENT_M",
    "DemoWorkload",
    "Hotspot",
    "OFFENSES",
    "PAYMENT_TYPES",
    "RESOLUTION_LEVELS",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_WEEK",
    "TOPICS",
    "TemporalPattern",
    "VENDORS",
    "daytime_pattern",
    "generate_complaints",
    "generate_crimes",
    "generate_social_posts",
    "generate_taxi_trips",
    "grid_regions",
    "load_demo_workload",
    "month_window",
    "nighttime_pattern",
    "region_hierarchy",
    "social_pattern",
    "taxi_pattern",
    "voronoi_regions",
]
