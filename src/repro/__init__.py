"""repro — reproduction of "Interactive Visual Exploration of
Spatio-Temporal Urban Data Sets using Urbane" (SIGMOD'18 demo).

The package implements the demo's full stack from scratch:

* ``repro.core`` — **Raster Join**, the spatial-aggregation-by-drawing
  technique (bounded + accurate variants, tiling, planner/engine);
* ``repro.raster`` — the software rendering pipeline the joins run on;
* ``repro.geometry`` / ``repro.index`` / ``repro.table`` — the
  geometric, indexing and columnar substrates;
* ``repro.baselines`` — exact index joins and the pre-aggregation cube
  the paper compares against;
* ``repro.data`` — synthetic urban data (city model, region
  hierarchies, taxi / 311 / crime generators);
* ``repro.urbane`` — the headless visual-analytics framework (map,
  exploration, timeline views; interactive sessions).

Quickstart::

    from repro.data import load_demo_workload
    from repro.core import SpatialAggregationEngine, SpatialAggregation

    w = load_demo_workload()
    engine = SpatialAggregationEngine()
    result = engine.execute(w.datasets["taxi"],
                            w.regions["neighborhoods"],
                            SpatialAggregation.count())
    print(result.top_k(5))
"""

__version__ = "1.0.0"

from . import (
    baselines,
    core,
    data,
    geometry,
    index,
    raster,
    stream,
    table,
    urbane,
)
from .errors import (
    CubeError,
    DataGenerationError,
    ExecutionError,
    GeometryError,
    QueryError,
    ReproError,
    SchemaError,
)

__all__ = [
    "CubeError",
    "DataGenerationError",
    "ExecutionError",
    "GeometryError",
    "QueryError",
    "ReproError",
    "SchemaError",
    "__version__",
    "baselines",
    "core",
    "data",
    "geometry",
    "index",
    "raster",
    "stream",
    "table",
    "urbane",
]
