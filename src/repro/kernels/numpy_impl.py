"""NumPy kernel implementations (the always-available reference).

These are the vectorized implementations that used to live inline in
``repro.raster.canvas``; every other kernel must match their outputs
bit for bit.  ``np.bincount`` (with and without weights) and
``np.add.at`` apply contributions in element order, which is the
contract the out-of-core partition chaining and the compiled kernels
both reproduce.
"""

from __future__ import annotations

import numpy as np


def scatter_count(pixel_ids: np.ndarray, num_pixels: int) -> np.ndarray:
    return np.bincount(pixel_ids, minlength=num_pixels).astype(np.float64)


def scatter_sum(pixel_ids: np.ndarray, weights: np.ndarray,
                num_pixels: int) -> np.ndarray:
    return np.bincount(pixel_ids, weights=weights, minlength=num_pixels)


def _scatter_reduce(pixel_ids, values, num_pixels, ufunc, fill):
    out = np.full(num_pixels, fill, dtype=np.float64)
    if len(pixel_ids) == 0:
        return out
    # Plain quicksort: stability is irrelevant for commutative reduces
    # and measurably faster than radix on int64 keys.
    order = np.argsort(pixel_ids)
    pix_sorted = pixel_ids[order]
    val_sorted = np.asarray(values, dtype=np.float64)[order]
    group_starts = np.flatnonzero(
        np.concatenate(([True], pix_sorted[1:] != pix_sorted[:-1])))
    reduced = ufunc.reduceat(val_sorted, group_starts)
    out[pix_sorted[group_starts]] = reduced
    return out


def scatter_min(pixel_ids: np.ndarray, values: np.ndarray,
                num_pixels: int) -> np.ndarray:
    return _scatter_reduce(pixel_ids, values, num_pixels, np.minimum, np.inf)


def scatter_max(pixel_ids: np.ndarray, values: np.ndarray,
                num_pixels: int) -> np.ndarray:
    return _scatter_reduce(pixel_ids, values, num_pixels, np.maximum, -np.inf)


def scatter_add_at(canvas: np.ndarray, pixel_ids: np.ndarray,
                   values: np.ndarray) -> None:
    np.add.at(canvas, pixel_ids, values)


def gather_sum(canvas: np.ndarray, pixel_ids: np.ndarray,
               group_ids: np.ndarray, num_groups: int) -> np.ndarray:
    if len(pixel_ids) == 0:
        return np.zeros(num_groups, dtype=np.float64)
    return np.bincount(group_ids, weights=canvas[pixel_ids],
                       minlength=num_groups)


def gather_generic(canvas, pixel_ids, group_ids, num_groups, ufunc, fill):
    out = np.full(num_groups, fill, dtype=np.float64)
    if len(pixel_ids) == 0:
        return out
    vals = canvas[pixel_ids]
    live = vals != fill
    if not live.any():
        return out
    vals = vals[live]
    groups = group_ids[live]
    order = np.argsort(groups, kind="stable")
    groups_sorted = groups[order]
    vals_sorted = vals[order]
    starts = np.flatnonzero(
        np.concatenate(([True], groups_sorted[1:] != groups_sorted[:-1])))
    reduced = ufunc.reduceat(vals_sorted, starts)
    out[groups_sorted[starts]] = reduced
    return out


def gather_min(canvas, pixel_ids, group_ids, num_groups, fill=np.inf):
    return gather_generic(canvas, pixel_ids, group_ids, num_groups,
                          np.minimum, fill)


def gather_max(canvas, pixel_ids, group_ids, num_groups, fill=-np.inf):
    return gather_generic(canvas, pixel_ids, group_ids, num_groups,
                          np.maximum, fill)


def expand_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Expand (start, length) runs into one flat int64 index array.

    The ragged-range trick: ``repeat`` the starts, then add a
    per-element offset reconstructed from the cumulative lengths —
    no Python loop, output order is run order then position-in-run.
    """
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    keep = lengths > 0
    starts = np.asarray(starts, dtype=np.int64)[keep]
    lengths = np.asarray(lengths, dtype=np.int64)[keep]
    flat_starts = np.repeat(starts, lengths)
    cum = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    offsets = np.arange(total) - np.repeat(cum, lengths)
    return flat_starts + offsets


def functions() -> dict:
    return {
        "scatter_count": scatter_count,
        "scatter_sum": scatter_sum,
        "scatter_min": scatter_min,
        "scatter_max": scatter_max,
        "scatter_add_at": scatter_add_at,
        "gather_sum": gather_sum,
        "gather_min": gather_min,
        "gather_max": gather_max,
        "expand_ranges": expand_ranges,
    }
