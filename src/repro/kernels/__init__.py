"""Pluggable compiled kernels for the raster-join hot loops.

The three hot loops of every raster join — point scatter into canvases,
scanline fragment expansion, and the gather join — are pure array
kernels.  This package puts them behind a tiny registry so an optional
compiled implementation (numba) can replace the NumPy one without any
call-site changes:

* ``numpy`` — always available, the reference implementation (moved
  here from ``repro.raster.canvas``).
* ``numba`` — ``@njit`` sequential loops, registered only when numba
  imports.  Every loop applies contributions in the same element order
  as its NumPy counterpart (``np.bincount`` / ``np.add.at`` are
  element-sequential C loops), so switching kernels never changes a
  single output bit.

Selection is **process-global**: fork-pool workers inherit the parent's
choice, so parallel and sharded paths run the same kernel as the serial
one.  ``select()`` is explicit; ``active()`` lazily resolves the
``REPRO_KERNEL`` environment variable (default ``auto``) on first use.
The resolved choice is surfaced per query in ``stats["plan"]["kernel"]``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from ..errors import ExecutionError

VALID_REQUESTS = ("auto", "numpy", "numba")


@dataclass(frozen=True)
class Kernel:
    """One implementation of the raster-join hot loops.

    All callables share the NumPy implementations' signatures and
    must be bitwise output-compatible with them (see module docstring).
    """

    name: str
    # Point scatter (blending) into canvases.
    scatter_count: Callable
    scatter_sum: Callable
    scatter_min: Callable
    scatter_max: Callable
    # In-place element-ordered accumulate (the out-of-core/shard
    # chaining primitive; must match ``np.add.at`` bit for bit).
    scatter_add_at: Callable
    # Gather join (canvas -> per-polygon aggregates over fragments).
    gather_sum: Callable
    gather_min: Callable
    gather_max: Callable
    # Ragged (start, length) run expansion — scanline span fill and
    # pixel-bucket candidate fetch both reduce to this.
    expand_ranges: Callable


_KERNELS: dict[str, Kernel] = {}
_requested: str | None = None
_active: Kernel | None = None


def register(kernel: Kernel) -> Kernel:
    _KERNELS[kernel.name] = kernel
    return kernel


def numba_available() -> bool:
    """Whether the numba kernel registered (numba importable)."""
    return "numba" in _KERNELS


def available_kernels() -> dict[str, bool]:
    return {name: True for name in sorted(_KERNELS)}


def select(name: str = "auto") -> Kernel:
    """Select the process-global kernel.

    ``auto`` prefers numba when importable and falls back to NumPy.
    Requesting ``numba`` explicitly when it is not importable raises
    loud rather than silently degrading.
    """
    global _requested, _active
    if name not in VALID_REQUESTS:
        raise ExecutionError(
            f"unknown kernel {name!r}; valid: {', '.join(VALID_REQUESTS)}")
    if name == "auto":
        chosen = _KERNELS.get("numba") or _KERNELS["numpy"]
    elif name not in _KERNELS:
        raise ExecutionError(
            f"kernel {name!r} requested but not available "
            f"(is numba installed?); use kernel='numpy' or 'auto'")
    else:
        chosen = _KERNELS[name]
    _requested = name
    _active = chosen
    return chosen


def active() -> Kernel:
    """The selected kernel, resolving ``REPRO_KERNEL`` on first use."""
    if _active is None:
        select(os.environ.get("REPRO_KERNEL", "auto"))
    return _active


def info() -> dict:
    """What was asked for and what actually runs — recorded per query
    in ``stats["plan"]["kernel"]``."""
    kernel = active()
    return {
        "requested": _requested,
        "selected": kernel.name,
        "numba_available": numba_available(),
    }


# -- registration ----------------------------------------------------------

from . import numpy_impl as _numpy_impl  # noqa: E402

register(Kernel(name="numpy", **_numpy_impl.functions()))

from . import numba_impl as _numba_impl  # noqa: E402

if _numba_impl.NUMBA_AVAILABLE:
    register(Kernel(name="numba", **_numba_impl.functions()))
