"""Optional numba-jitted kernels.

Registered only when numba imports; the container/CI leg without numba
never touches this module past the guarded import.  Every jitted loop
applies contributions in the same element order as the NumPy reference
(``np.bincount`` and ``np.add.at`` are element-sequential C loops), and
the min/max loops reproduce NumPy's NaN propagation (``np.minimum`` is
NaN-sticky), so outputs are bitwise-identical kernel to kernel.

The wrappers normalize dtypes before entering jitted code so call sites
keep passing whatever ``repro.raster.canvas`` accepted before.
"""

from __future__ import annotations

import numpy as np

try:
    from numba import njit

    NUMBA_AVAILABLE = True
except Exception:  # pragma: no cover - exercised by the no-numba CI leg
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):  # type: ignore[misc]
        raise RuntimeError("numba is not available")


if NUMBA_AVAILABLE:

    @njit(cache=True)
    def _scatter_count(pixel_ids, num_pixels):
        out = np.zeros(num_pixels, dtype=np.float64)
        for i in range(pixel_ids.shape[0]):
            out[pixel_ids[i]] += 1.0
        return out

    @njit(cache=True)
    def _scatter_sum(pixel_ids, weights, num_pixels):
        out = np.zeros(num_pixels, dtype=np.float64)
        for i in range(pixel_ids.shape[0]):
            out[pixel_ids[i]] += weights[i]
        return out

    @njit(cache=True)
    def _scatter_min(pixel_ids, values, num_pixels):
        out = np.full(num_pixels, np.inf)
        for i in range(pixel_ids.shape[0]):
            p = pixel_ids[i]
            v = values[i]
            cur = out[p]
            # NaN-sticky min, matching np.minimum: a NaN value poisons
            # the pixel, and a poisoned pixel never recovers.
            if cur == cur and (v < cur or v != v):
                out[p] = v
        return out

    @njit(cache=True)
    def _scatter_max(pixel_ids, values, num_pixels):
        out = np.full(num_pixels, -np.inf)
        for i in range(pixel_ids.shape[0]):
            p = pixel_ids[i]
            v = values[i]
            cur = out[p]
            if cur == cur and (v > cur or v != v):
                out[p] = v
        return out

    @njit(cache=True)
    def _scatter_add_at(canvas, pixel_ids, values):
        for i in range(pixel_ids.shape[0]):
            canvas[pixel_ids[i]] += values[i]

    @njit(cache=True)
    def _gather_sum(canvas, pixel_ids, group_ids, num_groups):
        out = np.zeros(num_groups, dtype=np.float64)
        for k in range(pixel_ids.shape[0]):
            out[group_ids[k]] += canvas[pixel_ids[k]]
        return out

    @njit(cache=True)
    def _gather_min(canvas, pixel_ids, group_ids, num_groups, fill):
        out = np.full(num_groups, fill)
        for k in range(pixel_ids.shape[0]):
            v = canvas[pixel_ids[k]]
            if v != fill:
                g = group_ids[k]
                cur = out[g]
                if cur == cur and (v < cur or v != v):
                    out[g] = v
        return out

    @njit(cache=True)
    def _gather_max(canvas, pixel_ids, group_ids, num_groups, fill):
        out = np.full(num_groups, fill)
        for k in range(pixel_ids.shape[0]):
            v = canvas[pixel_ids[k]]
            if v != fill:
                g = group_ids[k]
                cur = out[g]
                if cur == cur and (v > cur or v != v):
                    out[g] = v
        return out

    @njit(cache=True)
    def _expand_ranges(starts, lengths, total):
        out = np.empty(total, dtype=np.int64)
        pos = 0
        for i in range(starts.shape[0]):
            s = starts[i]
            for j in range(lengths[i]):
                out[pos] = s + j
                pos += 1
        return out


def _ids(a):
    return np.ascontiguousarray(a, dtype=np.int64)


def _vals(a):
    return np.ascontiguousarray(a, dtype=np.float64)


def scatter_count(pixel_ids, num_pixels):
    return _scatter_count(_ids(pixel_ids), num_pixels)


def scatter_sum(pixel_ids, weights, num_pixels):
    return _scatter_sum(_ids(pixel_ids), _vals(weights), num_pixels)


def scatter_min(pixel_ids, values, num_pixels):
    return _scatter_min(_ids(pixel_ids), _vals(values), num_pixels)


def scatter_max(pixel_ids, values, num_pixels):
    return _scatter_max(_ids(pixel_ids), _vals(values), num_pixels)


def scatter_add_at(canvas, pixel_ids, values):
    _scatter_add_at(canvas, _ids(pixel_ids), _vals(values))


def gather_sum(canvas, pixel_ids, group_ids, num_groups):
    return _gather_sum(_vals(canvas), _ids(pixel_ids), _ids(group_ids),
                       num_groups)


def gather_min(canvas, pixel_ids, group_ids, num_groups, fill=np.inf):
    return _gather_min(_vals(canvas), _ids(pixel_ids), _ids(group_ids),
                       num_groups, fill)


def gather_max(canvas, pixel_ids, group_ids, num_groups, fill=-np.inf):
    return _gather_max(_vals(canvas), _ids(pixel_ids), _ids(group_ids),
                       num_groups, fill)


def expand_ranges(starts, lengths):
    lengths = _ids(lengths)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    return _expand_ranges(_ids(starts), lengths, total)


def functions() -> dict:
    return {
        "scatter_count": scatter_count,
        "scatter_sum": scatter_sum,
        "scatter_min": scatter_min,
        "scatter_max": scatter_max,
        "scatter_add_at": scatter_add_at,
        "gather_sum": gather_sum,
        "gather_min": gather_min,
        "gather_max": gather_max,
        "expand_ranges": expand_ranges,
    }
