"""The serve wire protocol, version 1.

JSON request/response payloads shared by the asyncio server and the
stdlib client.  The protocol is deliberately plain: one POST body per
query, one JSON object per response (or one NDJSON line per progressive
snapshot on the streaming path), every payload carrying ``"v": 1`` so
either side can reject a version it does not speak.

Filter expressions cross the wire as a recursive node encoding of the
:mod:`repro.table.filters` AST, so a remote client composes the same
``F("fare") > 10`` predicates a local session would.

Non-finite floats (cost models legitimately produce ``inf``) are
serialized as the Python-JSON ``Infinity``/``NaN`` literals; both ends
of this protocol are the Python ``json`` module, which round-trips
them.

Nothing in this module imports the service or the server, so the
client (and :class:`~repro.urbane.session.RemoteSession`) can depend on
it without dragging in asyncio machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.query import SpatialAggregation
from ..errors import ProtocolError
from ..table import filters as flt

#: Wire protocol version; bump on breaking payload changes.
PROTOCOL_VERSION = 1

#: Per-request knobs accepted by ``POST /v1/query`` beyond the query
#: itself, with their defaults.
REQUEST_KNOBS = {
    "method": "auto",
    "resolution": None,
    "epsilon": None,
    "exact": False,
    "deadline_ms": None,
    "timeout_s": None,
    "cache": True,
    "stream": False,
    "stream_every": 1,
    "tile_pixels": 256,
    # Opaque per-session id: lets the server's gesture-speculative
    # prefetcher keep one transition model per analyst.  Never part of
    # the query's cache/coalescing key — two sessions issuing the same
    # query still coalesce.
    # Record a hierarchical span tree for this request; the response
    # stats carry a ``trace.request_id`` the client can fetch back via
    # ``GET /v1/trace/<request_id>``.
    "trace": False,
    "session": None,
    # Grid-snapped map window (see viewport_to_json): pan/zoom gestures
    # send the full viewport, so block-aligned cache keys match across
    # the wire exactly as they do locally.
    "viewport": None,
}


# -- json sanitation ----------------------------------------------------------


def jsonable(value):
    """Recursively coerce a stats payload into plain JSON types.

    ndarrays become lists, NumPy scalars become Python scalars, tuples
    become lists; anything else unserializable falls back to ``repr``
    so a stats dict can never poison a response.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    return repr(value)


# -- filter AST <-> json ------------------------------------------------------


def filter_to_json(expr: flt.FilterExpr) -> dict:
    """One filter AST node -> its wire encoding (recursive)."""
    if isinstance(expr, flt.Comparison):
        return {"op": "cmp", "column": expr.column, "cmp": expr.op,
                "value": jsonable(expr.value)}
    if isinstance(expr, flt.Between):
        return {"op": "between", "column": expr.column,
                "lo": jsonable(expr.lo), "hi": jsonable(expr.hi)}
    if isinstance(expr, flt.IsIn):
        return {"op": "isin", "column": expr.column,
                "values": [jsonable(v) for v in expr.values]}
    if isinstance(expr, flt.TimeRange):
        return {"op": "timerange", "column": expr.column,
                "start": int(expr.start), "end": int(expr.end)}
    if isinstance(expr, flt.And):
        return {"op": "and", "left": filter_to_json(expr.left),
                "right": filter_to_json(expr.right)}
    if isinstance(expr, flt.Or):
        return {"op": "or", "left": filter_to_json(expr.left),
                "right": filter_to_json(expr.right)}
    if isinstance(expr, flt.Not):
        return {"op": "not", "inner": filter_to_json(expr.inner)}
    if isinstance(expr, flt.TrueFilter):
        return {"op": "true"}
    raise ProtocolError(
        f"cannot serialize filter node {type(expr).__name__}")


def filter_from_json(node) -> flt.FilterExpr:
    """Wire encoding -> filter AST node (validates as it parses)."""
    if not isinstance(node, dict) or "op" not in node:
        raise ProtocolError(f"malformed filter node: {node!r}")
    op = node["op"]
    try:
        if op == "cmp":
            return flt.Comparison(node["column"], node["cmp"], node["value"])
        if op == "between":
            return flt.Between(node["column"], node["lo"], node["hi"])
        if op == "isin":
            return flt.IsIn(node["column"], tuple(node["values"]))
        if op == "timerange":
            return flt.TimeRange(node["column"], int(node["start"]),
                                 int(node["end"]))
        if op == "and":
            return flt.And(filter_from_json(node["left"]),
                           filter_from_json(node["right"]))
        if op == "or":
            return flt.Or(filter_from_json(node["left"]),
                          filter_from_json(node["right"]))
        if op == "not":
            return flt.Not(filter_from_json(node["inner"]))
        if op == "true":
            return flt.TrueFilter()
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"bad filter node {node!r}: {exc}") from None
    raise ProtocolError(f"unknown filter op {op!r}")


# -- query <-> json -----------------------------------------------------------


def query_to_json(query: SpatialAggregation) -> dict:
    return {
        "agg": query.agg,
        "value_column": query.value_column,
        "filters": [filter_to_json(f) for f in query.filters],
    }


def query_from_json(payload: dict) -> SpatialAggregation:
    try:
        return SpatialAggregation(
            agg=payload.get("agg", "count"),
            value_column=payload.get("value_column"),
            filters=tuple(filter_from_json(f)
                          for f in payload.get("filters", [])))
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"bad query payload: {exc}") from None


# -- viewport <-> json --------------------------------------------------------


def viewport_to_json(viewport) -> dict:
    """A :class:`~repro.core.pyramid.GridViewport` -> wire encoding.

    Only the grid anchor (floats) and the integer window coordinates
    cross the wire; the world bbox is *recomputed* from them on decode
    through the exact arithmetic of :meth:`CanvasGrid.viewport`.  Both
    ends therefore hold bit-identical viewport values (Python float
    repr round-trips through JSON), which is what makes a client-side
    ``pan`` and the server's speculative prediction of that pan land on
    the same cache key.
    """
    from ..core.pyramid import GridViewport

    if not isinstance(viewport, GridViewport):
        raise ProtocolError(
            f"only grid-snapped viewports cross the wire, got "
            f"{type(viewport).__name__}")
    grid = viewport.grid
    return {"x0": grid.x0, "y0": grid.y0, "pw": grid.pw, "ph": grid.ph,
            "block": int(grid.block), "level": int(viewport.level),
            "col0": int(viewport.col0), "row0": int(viewport.row0),
            "width": int(viewport.width), "height": int(viewport.height)}


def viewport_from_json(node):
    """Wire encoding -> :class:`~repro.core.pyramid.GridViewport`."""
    from ..core.pyramid import CanvasGrid

    if not isinstance(node, dict):
        raise ProtocolError(f"malformed viewport node: {node!r}")
    try:
        grid = CanvasGrid(float(node["x0"]), float(node["y0"]),
                          float(node["pw"]), float(node["ph"]),
                          int(node["block"]))
        return grid.viewport(int(node["level"]), int(node["col0"]),
                             int(node["row0"]), int(node["width"]),
                             int(node["height"]))
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(f"bad viewport node {node!r}: {exc}") from None


# -- requests -----------------------------------------------------------------


def encode_request(dataset: str, regions: str,
                   query: SpatialAggregation | None = None,
                   sql: str | None = None, **knobs) -> dict:
    """Build a ``POST /v1/query`` body (client side)."""
    unknown = set(knobs) - set(REQUEST_KNOBS)
    if unknown:
        raise ProtocolError(f"unknown request knobs: {sorted(unknown)}")
    if (query is None) == (sql is None):
        raise ProtocolError("exactly one of query/sql is required")
    body = {"v": PROTOCOL_VERSION, "dataset": dataset, "regions": regions}
    if sql is not None:
        body["sql"] = str(sql)
    else:
        body["query"] = query_to_json(query)
    for name, default in REQUEST_KNOBS.items():
        value = knobs.get(name, default)
        if name == "viewport" and value is not None \
                and not isinstance(value, dict):
            value = viewport_to_json(value)
        if value != default:
            body[name] = value
    return body


def decode_request(payload) -> dict:
    """Validate + normalize a request body (server side).

    Returns a flat dict: dataset, regions, the parsed
    :class:`SpatialAggregation` under ``"query"`` (or raw SQL under
    ``"sql"``), and every knob from :data:`REQUEST_KNOBS` filled with
    its default when absent.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: got {version!r}, "
            f"this server speaks {PROTOCOL_VERSION}")
    out: dict = {"sql": None, "query": None}
    if "sql" in payload:
        out["sql"] = str(payload["sql"])
        out["dataset"] = payload.get("dataset")
        out["regions"] = payload.get("regions")
    else:
        for required in ("dataset", "regions", "query"):
            if required not in payload:
                raise ProtocolError(f"request is missing {required!r}")
        out["dataset"] = str(payload["dataset"])
        out["regions"] = str(payload["regions"])
        out["query"] = query_from_json(payload["query"])
    for name, default in REQUEST_KNOBS.items():
        out[name] = payload.get(name, default)
    if out["method"] is None:
        out["method"] = "auto"
    if out["stream_every"] is not None and int(out["stream_every"]) < 1:
        raise ProtocolError("stream_every must be >= 1")
    if out["session"] is not None:
        out["session"] = str(out["session"])
    if out["viewport"] is not None:
        out["viewport"] = viewport_from_json(out["viewport"])
    return out


# -- responses ----------------------------------------------------------------


@dataclass
class RemoteResult:
    """A served answer, rehydrated client-side.

    Mirrors the shape of :class:`~repro.core.result.AggregationResult`
    (values aligned with ``region_names``, optional hard bounds) without
    needing the region geometry on the client.
    """

    region_names: list[str]
    values: np.ndarray
    method: str
    lower: np.ndarray | None = None
    upper: np.ndarray | None = None
    exact: bool = False
    stats: dict = field(default_factory=dict)

    @property
    def has_bounds(self) -> bool:
        return self.lower is not None and self.upper is not None

    def as_dict(self) -> dict[str, float]:
        return {n: float(v) for n, v in zip(self.region_names, self.values)}


def result_to_json(result) -> dict:
    """``AggregationResult`` -> wire payload (server side)."""
    def arr(a):
        return None if a is None else np.asarray(a, dtype=np.float64).tolist()

    return {
        "v": PROTOCOL_VERSION,
        "kind": "result",
        "regions": list(result.regions.region_names),
        "values": arr(result.values),
        "lower": arr(result.lower),
        "upper": arr(result.upper),
        "exact": bool(result.exact),
        "method": result.method,
        "stats": jsonable(result.stats),
    }


def result_from_json(payload: dict) -> RemoteResult:
    """Wire payload -> :class:`RemoteResult` (client side)."""
    if payload.get("kind") != "result":
        raise ProtocolError(f"expected a result payload, got "
                            f"{payload.get('kind')!r}")

    def arr(v):
        return None if v is None else np.asarray(v, dtype=np.float64)

    return RemoteResult(
        region_names=list(payload["regions"]),
        values=arr(payload["values"]),
        method=payload.get("method", ""),
        lower=arr(payload.get("lower")),
        upper=arr(payload.get("upper")),
        exact=bool(payload.get("exact", False)),
        stats=payload.get("stats") or {})


def partial_to_json(partial) -> dict:
    """``TilePartial`` -> one NDJSON streaming line (server side)."""
    def arr(a):
        return None if a is None else np.asarray(a, dtype=np.float64).tolist()

    return {
        "v": PROTOCOL_VERSION,
        "kind": "partial",
        "tile_index": int(partial.tile_index),
        "tiles_total": int(partial.tiles_total),
        "values": arr(partial.values),
        "lower": arr(partial.lower),
        "upper": arr(partial.upper),
        "final": bool(partial.final),
        "stats": jsonable(partial.stats),
    }


def error_to_json(exc: Exception, retry_after_ms: float | None = None
                  ) -> dict:
    payload = {
        "v": PROTOCOL_VERSION,
        "kind": "error",
        "error": type(exc).__name__,
        "message": str(exc),
    }
    if retry_after_ms is None:
        retry_after_ms = getattr(exc, "retry_after_ms", None)
    if retry_after_ms is not None:
        payload["retry_after_ms"] = float(retry_after_ms)
    return payload
