"""Stdlib client for the query service.

``http.client`` only — usable from any Python without the repro
package's heavier imports beyond NumPy.  One connection per request
(the server speaks ``Connection: close``), blocking calls, and typed
errors: a 429 raises :class:`~repro.errors.OverloadedError` carrying
the server's ``retry_after_ms`` so callers can implement honest
back-off; 4xx payloads raise :class:`~repro.errors.ProtocolError` (or
:class:`~repro.errors.QueryError` when the server says the query
itself was bad).

Streaming responses (``stream=True``) yield one decoded partial dict
per NDJSON line as the server produces them — ``http.client`` strips
the chunked framing transparently.

Retry on shed: with ``max_retries > 0`` (opt-in; default 0 preserves
the raise-immediately contract) a 429 is retried up to that many times,
sleeping the server's own ``retry_after_ms`` hint scaled by an
exponential back-off factor per attempt — the client backs off exactly
as hard as the server asked, harder each time.  Only overload is
retried; 4xx/5xx and connection errors raise immediately.
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import quote, urlsplit

from ..errors import OverloadedError, ProtocolError, QueryError, ServeError
from .protocol import (
    PROTOCOL_VERSION,
    RemoteResult,
    encode_request,
    result_from_json,
    viewport_from_json,
)

DEFAULT_TIMEOUT_S = 60.0

#: Per-attempt multiplier on the server's retry hint.
BACKOFF_FACTOR = 2.0

#: A single sleep never exceeds this, however large the hint grows.
MAX_BACKOFF_S = 5.0


def _raise_for_payload(status: int, payload: dict,
                       retry_after_header: str | None) -> None:
    message = payload.get("message", f"HTTP {status}")
    if status == 429:
        retry_ms = payload.get("retry_after_ms")
        if retry_ms is None and retry_after_header:
            retry_ms = float(retry_after_header) * 1000.0
        raise OverloadedError(message, retry_after_ms=retry_ms or 250.0)
    error = payload.get("error", "")
    if status == 400 and error not in ("ProtocolError", "JSONDecodeError"):
        raise QueryError(message)
    if 400 <= status < 500:
        raise ProtocolError(message)
    raise ServeError(f"server error {status}: {message}")


class ServeClient:
    """Blocking client for a ``repro serve`` endpoint."""

    def __init__(self, url: str, timeout_s: float = DEFAULT_TIMEOUT_S,
                 max_retries: int = 0):
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ProtocolError(f"unsupported scheme {parts.scheme!r}")
        if max_retries < 0:
            raise ProtocolError("max_retries must be >= 0")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.timeout_s = float(timeout_s)
        self.max_retries = int(max_retries)
        self.retries = 0

    # -- plumbing ----------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)

    def _get_json(self, path: str) -> dict:
        conn = self._connect()
        try:
            conn.request("GET", path)
            resp = conn.getresponse()
            payload = json.loads(resp.read().decode("utf-8"))
            if resp.status != 200:
                _raise_for_payload(resp.status, payload,
                                   resp.getheader("Retry-After"))
            return payload
        finally:
            conn.close()

    def _get_text(self, path: str) -> str:
        conn = self._connect()
        try:
            conn.request("GET", path)
            resp = conn.getresponse()
            body = resp.read()
            if resp.status != 200:
                _raise_for_payload(resp.status,
                                   json.loads(body.decode("utf-8")),
                                   resp.getheader("Retry-After"))
            return body.decode("utf-8")
        finally:
            conn.close()

    # -- endpoints ---------------------------------------------------------

    def health(self) -> dict:
        return self._get_json("/v1/health")

    def stats(self) -> dict:
        return self._get_json("/v1/stats")

    def metrics(self) -> dict:
        """The process-wide metrics registry as JSON."""
        return self._get_json("/v1/metrics")

    def metrics_prometheus(self) -> str:
        """The metrics registry in the Prometheus text format."""
        return self._get_text("/v1/metrics?format=prometheus")

    def trace(self, request_id: str | None = None) -> dict:
        """Retained trace ids (no argument) or one full span tree."""
        if request_id is None:
            return self._get_json("/v1/trace")
        return self._get_json(f"/v1/trace/{quote(request_id)}")

    def slow_queries(self) -> dict:
        """The server's slow-query log entries."""
        return self._get_json("/v1/slow")

    def plan_viewport(self, regions: str, resolution: int | None = None):
        """The server-planned :class:`~repro.core.pyramid.GridViewport`
        for a region set — the shared grid both ends express pan/zoom
        gestures on (the bbox floats are recomputed locally from the
        grid integers, so keys agree bitwise)."""
        path = f"/v1/viewport?regions={quote(regions)}"
        if resolution is not None:
            path += f"&resolution={int(resolution)}"
        payload = self._get_json(path)
        if payload.get("kind") != "viewport":
            raise ProtocolError(
                f"unexpected viewport payload kind {payload.get('kind')!r}")
        return viewport_from_json(payload["viewport"])

    def query(self, dataset: str, regions: str, query=None, sql=None,
              **knobs) -> RemoteResult:
        """Run one query; returns a :class:`RemoteResult`.

        Accepts the same knobs as the wire protocol (``method``,
        ``resolution``, ``epsilon``, ``exact``, ``deadline_ms``,
        ``cache``, ``session``, ``viewport``...).  For progressive
        results use :meth:`stream`.  When ``max_retries > 0`` a shed
        (429) is retried with server-seeded exponential back-off.
        """
        body = encode_request(dataset, regions, query=query, sql=sql,
                              **knobs)
        if body.get("stream"):
            raise ProtocolError("use stream() for streaming queries")
        attempt = 0
        while True:
            try:
                return self._query_once(body)
            except OverloadedError as exc:
                if attempt >= self.max_retries:
                    raise
                delay_s = (float(exc.retry_after_ms) / 1000.0
                           * BACKOFF_FACTOR ** attempt)
                time.sleep(min(delay_s, MAX_BACKOFF_S))
                attempt += 1
                self.retries += 1

    def _query_once(self, body: dict) -> RemoteResult:
        conn = self._connect()
        try:
            conn.request("POST", "/v1/query", body=json.dumps(body),
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            payload = json.loads(resp.read().decode("utf-8"))
            if resp.status != 200:
                _raise_for_payload(resp.status, payload,
                                   resp.getheader("Retry-After"))
            return result_from_json(payload)
        finally:
            conn.close()

    def stream(self, dataset: str, regions: str, query=None, sql=None,
               **knobs):
        """Run one progressive query; yields partial dicts as decoded
        from the NDJSON stream (``kind="partial"``, ending with
        ``final=true``).  A terminal ``kind="error"`` line raises."""
        knobs.setdefault("stream", True)
        body = encode_request(dataset, regions, query=query, sql=sql,
                              **knobs)
        conn = self._connect()
        try:
            conn.request("POST", "/v1/query", body=json.dumps(body),
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            if resp.status != 200:
                payload = json.loads(resp.read().decode("utf-8"))
                _raise_for_payload(resp.status, payload,
                                   resp.getheader("Retry-After"))
            while True:
                line = resp.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                payload = json.loads(line.decode("utf-8"))
                if payload.get("kind") == "error":
                    _raise_for_payload(500, payload, None)
                if payload.get("v") != PROTOCOL_VERSION:
                    raise ProtocolError(
                        f"unexpected protocol version {payload.get('v')!r}")
                yield payload
        finally:
            conn.close()
