"""Stdlib client for the query service.

``http.client`` only — usable from any Python without the repro
package's heavier imports beyond NumPy.  One connection per request
(the server speaks ``Connection: close``), blocking calls, and typed
errors: a 429 raises :class:`~repro.errors.OverloadedError` carrying
the server's ``retry_after_ms`` so callers can implement honest
back-off; 4xx payloads raise :class:`~repro.errors.ProtocolError` (or
:class:`~repro.errors.QueryError` when the server says the query
itself was bad).

Streaming responses (``stream=True``) yield one decoded partial dict
per NDJSON line as the server produces them — ``http.client`` strips
the chunked framing transparently.
"""

from __future__ import annotations

import http.client
import json
from urllib.parse import urlsplit

from ..errors import OverloadedError, ProtocolError, QueryError, ServeError
from .protocol import (
    PROTOCOL_VERSION,
    RemoteResult,
    encode_request,
    result_from_json,
)

DEFAULT_TIMEOUT_S = 60.0


def _raise_for_payload(status: int, payload: dict,
                       retry_after_header: str | None) -> None:
    message = payload.get("message", f"HTTP {status}")
    if status == 429:
        retry_ms = payload.get("retry_after_ms")
        if retry_ms is None and retry_after_header:
            retry_ms = float(retry_after_header) * 1000.0
        raise OverloadedError(message, retry_after_ms=retry_ms or 250.0)
    error = payload.get("error", "")
    if status == 400 and error not in ("ProtocolError", "JSONDecodeError"):
        raise QueryError(message)
    if 400 <= status < 500:
        raise ProtocolError(message)
    raise ServeError(f"server error {status}: {message}")


class ServeClient:
    """Blocking client for a ``repro serve`` endpoint."""

    def __init__(self, url: str, timeout_s: float = DEFAULT_TIMEOUT_S):
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ProtocolError(f"unsupported scheme {parts.scheme!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.timeout_s = float(timeout_s)

    # -- plumbing ----------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)

    def _get_json(self, path: str) -> dict:
        conn = self._connect()
        try:
            conn.request("GET", path)
            resp = conn.getresponse()
            payload = json.loads(resp.read().decode("utf-8"))
            if resp.status != 200:
                _raise_for_payload(resp.status, payload,
                                   resp.getheader("Retry-After"))
            return payload
        finally:
            conn.close()

    # -- endpoints ---------------------------------------------------------

    def health(self) -> dict:
        return self._get_json("/v1/health")

    def stats(self) -> dict:
        return self._get_json("/v1/stats")

    def query(self, dataset: str, regions: str, query=None, sql=None,
              **knobs) -> RemoteResult:
        """Run one query; returns a :class:`RemoteResult`.

        Accepts the same knobs as the wire protocol (``method``,
        ``resolution``, ``epsilon``, ``exact``, ``deadline_ms``,
        ``cache``...).  For progressive results use :meth:`stream`.
        """
        body = encode_request(dataset, regions, query=query, sql=sql,
                              **knobs)
        if body.get("stream"):
            raise ProtocolError("use stream() for streaming queries")
        conn = self._connect()
        try:
            conn.request("POST", "/v1/query", body=json.dumps(body),
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            payload = json.loads(resp.read().decode("utf-8"))
            if resp.status != 200:
                _raise_for_payload(resp.status, payload,
                                   resp.getheader("Retry-After"))
            return result_from_json(payload)
        finally:
            conn.close()

    def stream(self, dataset: str, regions: str, query=None, sql=None,
               **knobs):
        """Run one progressive query; yields partial dicts as decoded
        from the NDJSON stream (``kind="partial"``, ending with
        ``final=true``).  A terminal ``kind="error"`` line raises."""
        knobs.setdefault("stream", True)
        body = encode_request(dataset, regions, query=query, sql=sql,
                              **knobs)
        conn = self._connect()
        try:
            conn.request("POST", "/v1/query", body=json.dumps(body),
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            if resp.status != 200:
                payload = json.loads(resp.read().decode("utf-8"))
                _raise_for_payload(resp.status, payload,
                                   resp.getheader("Retry-After"))
            while True:
                line = resp.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                payload = json.loads(line.decode("utf-8"))
                if payload.get("kind") == "error":
                    _raise_for_payload(500, payload, None)
                if payload.get("v") != PROTOCOL_VERSION:
                    raise ProtocolError(
                        f"unexpected protocol version {payload.get('v')!r}")
                yield payload
        finally:
            conn.close()
