"""The serve-worker pool: routed engines behind one admission gate.

A single :class:`~repro.serve.service.QueryService` used to own one
engine, one coalescing map and one thread pool; under multi-worker
load every hot structure was a contention point, and naively cloning
the whole service would *duplicate* the caches instead of scaling
them.  The pool takes the middle road the tentpole asks for:

* **one worker = one engine** — its unified cache (results, tcube,
  pyramid blocks, fragments) and its :class:`SingleFlight` map are
  private, and because routing is consistent-hash on the query
  fingerprint, each cache holds its *shard* of the keyspace exactly
  once across the pool;
* **routing** — :class:`~repro.serve.routing.HashRing` over worker
  names; the same key always lands on the same worker, so repeats are
  cache hits and concurrent identical requests coalesce on the one
  worker that owns them;
* **admission stays global** — the service's single
  :class:`~repro.serve.admission.AdmissionController` fronts the whole
  pool (slots aggregate across workers rather than fragmenting into
  per-worker quotas that could shed while siblings idle).

Worker 0 *is* the manager's engine, so a one-worker pool is exactly
the pre-pool service — same cache, same counters, same behavior.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor

from ..core.executor import SpatialAggregationEngine
from .coalesce import SingleFlight
from .routing import HashRing


def clone_engine(engine: SpatialAggregationEngine
                 ) -> SpatialAggregationEngine:
    """A fresh engine with ``engine``'s configuration and empty caches."""
    ctx = engine.ctx
    return SpatialAggregationEngine(
        default_resolution=ctx.default_resolution,
        max_canvas_resolution=ctx.max_canvas_resolution,
        cache_max_bytes=ctx.cache.max_bytes,
        cache_max_entries=ctx.cache.max_entries,
        parallel=ctx.parallel)


class ServeWorker:
    """One pool member: a private engine, flight map and thread pool."""

    def __init__(self, name: str, engine: SpatialAggregationEngine,
                 threads: int):
        self.name = name
        self.engine = engine
        self.flight = SingleFlight()
        self.executor = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix=f"repro-{name}")
        self.queries = 0
        #: Speculative warm-ups issued against this worker's caches.
        self.spec_queries = 0

    def stats(self) -> dict:
        cache = self.engine.cache_stats()
        return {
            "name": self.name,
            "queries": self.queries,
            "spec_queries": self.spec_queries,
            "coalesce": self.flight.stats(),
            "cache_entries": cache.get("entries", 0),
            "cache_bytes": cache.get("bytes", 0),
            "cache_hits": cache.get("hits", 0),
            "cache_misses": cache.get("misses", 0),
        }

    def close(self) -> None:
        self.executor.shutdown(wait=False, cancel_futures=True)


class ServeWorkerPool:
    """``shards`` workers behind a consistent-hash ring.

    ``total_threads`` is the service's aggregate concurrency; it is
    spread (ceiling division) over the workers' private thread pools so
    the pool as a whole can always run as many engine calls as the
    admission controller admits.
    """

    def __init__(self, template: SpatialAggregationEngine, shards: int,
                 total_threads: int, replicas: int = 64):
        shards = max(1, int(shards))
        threads = max(1, math.ceil(max(1, total_threads) / shards))
        self.workers: list[ServeWorker] = []
        for index in range(shards):
            engine = template if index == 0 else clone_engine(template)
            self.workers.append(
                ServeWorker(f"worker-{index}", engine, threads))
        self.ring = HashRing([w.name for w in self.workers],
                             replicas=replicas)
        self._by_name = {w.name: w for w in self.workers}

    @property
    def shards(self) -> int:
        return len(self.workers)

    def worker_for(self, key) -> ServeWorker:
        """The worker owning ``key`` — stable for the pool's lifetime."""
        return self._by_name[self.ring.node_for(key)]

    def stats(self) -> dict:
        return {
            "shards": self.shards,
            "replicas": self.ring.replicas,
            "workers": [w.stats() for w in self.workers],
        }

    def aggregate_cache_stats(self) -> dict:
        """Pool-wide cache counters in the single-cache payload shape.

        Numeric counters sum across workers; derived fractions are
        recomputed from the sums (a mean of ratios would overweight
        idle workers).
        """
        totals: dict = {}
        blocks: dict = {}
        for worker in self.workers:
            stats = worker.engine.cache_stats()
            for field, value in stats.items():
                if field == "blocks":
                    for bfield, bvalue in value.items():
                        if isinstance(bvalue, (int, float)):
                            blocks[bfield] = blocks.get(bfield, 0) + bvalue
                elif isinstance(value, (int, float)) and \
                        not isinstance(value, bool):
                    totals[field] = totals.get(field, 0) + value
        lookups = totals.get("hits", 0) + totals.get("misses", 0)
        totals["hit_rate"] = (totals.get("hits", 0) / lookups
                              if lookups else 0.0)
        pixels = (blocks.get("assembled_pixels", 0)
                  + blocks.get("scattered_pixels", 0))
        blocks["reuse_fraction"] = (
            blocks.get("assembled_pixels", 0) / pixels if pixels else 0.0)
        totals["blocks"] = blocks
        return totals

    def aggregate_coalesce_stats(self) -> dict:
        """Pool-wide flight counters (sums across per-worker maps)."""
        totals: dict = {}
        for worker in self.workers:
            for field, value in worker.flight.stats().items():
                if isinstance(value, (int, float)) and \
                        not isinstance(value, bool):
                    totals[field] = totals.get(field, 0) + value
        return totals

    def close(self) -> None:
        for worker in self.workers:
            worker.close()
