"""Consistent-hash routing for the serve-worker pool.

One query fingerprint must always land on the same worker — that is
what makes per-worker state *shard* instead of duplicate: the
coalescing map only ever sees a given flight on one worker, and the
tcube / pyramid-block / result caches each hold their slice of the
keyspace exactly once across the pool.

:class:`HashRing` is the classic construction: every worker owns
``replicas`` virtual points on a ring keyed by a stable hash
(BLAKE2b — ``hash()`` is salted per process and useless here), and a
key routes to the first virtual point clockwise from its own hash.
Adding or removing one worker therefore remaps only the keys in the
arcs it owned (~1/N of the keyspace) — the property that keeps caches
warm across pool resizes.
"""

from __future__ import annotations

import bisect
import hashlib


def stable_hash(text: str) -> int:
    """A process-independent 64-bit hash of ``text``."""
    digest = hashlib.blake2b(text.encode("utf-8", "surrogatepass"),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring over named nodes with virtual replicas."""

    def __init__(self, nodes, replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be positive")
        self.replicas = int(replicas)
        self._points: list[int] = []
        self._owners: dict[int, str] = {}
        self._nodes: list[str] = []
        for node in nodes:
            self.add(node)
        if not self._nodes:
            raise ValueError("a hash ring needs at least one node")

    @property
    def nodes(self) -> list[str]:
        return list(self._nodes)

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.append(node)
        for replica in range(self.replicas):
            point = stable_hash(f"{node}#{replica}")
            # A (vanishingly unlikely) collision keeps the first owner:
            # both orderings are consistent, first-wins is deterministic
            # for a fixed insertion order.
            if point not in self._owners:
                self._owners[point] = node
                bisect.insort(self._points, point)

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise ValueError(f"node {node!r} not on the ring")
        self._nodes.remove(node)
        for point, owner in list(self._owners.items()):
            if owner == node:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                del self._points[index]

    def node_for(self, key) -> str:
        """The worker owning ``key`` (any object with a stable repr)."""
        point = stable_hash(repr(key))
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0  # wrap: first point clockwise past zero
        return self._owners[self._points[index]]
