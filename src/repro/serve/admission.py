"""Admission control: a bounded front door for the query service.

The engine's thread pool can only run ``max_concurrency`` queries at
once; everything else either waits in a *bounded* queue or is shed
immediately.  Shedding beats queueing unboundedly: an overloaded server
that accepts every request eventually times out all of them, while one
that answers "try again in 200ms" keeps its latency distribution honest
(the classic load-shedding argument).  Shed requests receive an
:class:`~repro.errors.OverloadedError` carrying ``retry_after_ms``
scaled by current queue depth, which the HTTP layer maps to a 429 with
a ``Retry-After`` header.

Everything here runs on the event loop thread, so plain counters are
race-free; the semaphore is the only synchronization primitive.

**Speculative tier**: the controller also grants *speculative* slots —
a strictly lower priority class used by the gesture-speculative
prefetcher (:mod:`repro.serve.speculate`).  The contract:

* a speculative slot is granted only when the system is **fully idle**
  — no real request running or waiting (:meth:`can_speculate`) — so a
  warm-up never competes with a real query for a slot *or* for CPU;
* the moment a real request would have to wait, every speculative
  holder is preempted (:meth:`preempt_speculative` fires each holder's
  cancel callback) — speculation is shed *first*, before any real
  request is shed;
* ``on_idle`` (when set) fires whenever a slot frees with no real
  request waiting, so the speculator wakes exactly when spare capacity
  appears.
"""

from __future__ import annotations

import asyncio
import contextlib

from ..errors import OverloadedError
from ..obs.trace import span

#: Baseline client back-off when shed; scaled up with queue depth.
BASE_RETRY_AFTER_MS = 100.0


class AdmissionController:
    """Concurrency semaphore + bounded wait queue + load shedding."""

    def __init__(self, max_concurrency: int = 4, max_queue: int = 16,
                 max_wait_s: float = 10.0):
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_concurrency = int(max_concurrency)
        self.max_queue = int(max_queue)
        self.max_wait_s = float(max_wait_s)
        self._semaphore = asyncio.Semaphore(self.max_concurrency)
        self._waiting = 0
        self.active = 0
        self.admitted = 0
        self.shed_queue_full = 0
        self.shed_wait_timeout = 0
        # -- speculative (lower-priority) tier --------------------------
        #: Cancel callbacks of the speculative holders currently on a
        #: slot, keyed by an opaque token per holder.
        self._spec_holders: dict[object, object] = {}
        self.spec_active = 0
        self.spec_admitted = 0
        self.spec_denied = 0
        self.spec_preempted = 0
        #: Zero-arg callback fired (on the loop thread) whenever a slot
        #: frees up with no real request waiting — the speculator's
        #: wake-up signal.  Exceptions are swallowed: idle notification
        #: must never break a real request's release path.
        self.on_idle = None

    # -- shedding ----------------------------------------------------------

    def retry_after_ms(self) -> float:
        """Suggested client back-off, scaled by how deep the queue is:
        the fuller the queue, the longer the hint."""
        depth = self._waiting / max(1, self.max_queue)
        return BASE_RETRY_AFTER_MS * (1.0 + 4.0 * depth)

    @contextlib.asynccontextmanager
    async def slot(self, max_wait_s: float | None = None):
        """Hold one execution slot for the duration of the block.

        Sheds immediately when the wait queue is full, and after
        ``max_wait_s`` when a slot never frees up; both paths raise
        :class:`OverloadedError` with a ``retry_after_ms`` hint.  The
        slot is released on every exit path — including cancellation of
        the waiting or the running task — so a disconnected client can
        never leak capacity.
        """
        # A real request about to contend for a permit preempts every
        # speculative holder first: speculation is shed before a real
        # request waits a beat longer than it must (the cancel is
        # cooperative — the engine stops between tiles/blocks — so the
        # permit frees within one block's work).
        if self._spec_holders and \
                self.active + self.spec_active >= self.max_concurrency:
            self.preempt_speculative()
        with span("admission.wait") as sp:
            if self._waiting >= self.max_queue:
                self.shed_queue_full += 1
                sp.set(shed="queue_full")
                raise OverloadedError(
                    f"queue full ({self._waiting} waiting, "
                    f"{self.active} running)",
                    retry_after_ms=self.retry_after_ms())
            if max_wait_s is None:
                max_wait_s = self.max_wait_s
            self._waiting += 1
            acquired = False
            try:
                try:
                    # asyncio.timeout, not wait_for: on 3.11, cancelling
                    # a task parked in wait_for(sem.acquire()) can
                    # deadlock loop teardown (the inner acquire future
                    # and the outer cancellation race); timeout's
                    # cancel-count mechanism does not have that failure
                    # mode.
                    async with asyncio.timeout(max_wait_s):
                        await self._semaphore.acquire()
                        acquired = True
                except TimeoutError:
                    if acquired:
                        # The permit arrived in the same beat the
                        # timeout fired; give it back before shedding.
                        self._semaphore.release()
                    self.shed_wait_timeout += 1
                    sp.set(shed="wait_timeout")
                    raise OverloadedError(
                        f"no slot freed within {max_wait_s:.1f}s",
                        retry_after_ms=self.retry_after_ms()) from None
            finally:
                self._waiting -= 1
        self.active += 1
        self.admitted += 1
        try:
            yield
        finally:
            self.active -= 1
            self._semaphore.release()
            self._notify_idle()

    # -- speculative tier --------------------------------------------------

    def idle_slots(self) -> int:
        """Permits free right now (not held by real or speculative work)."""
        return self.max_concurrency - self.active - self.spec_active

    def can_speculate(self) -> bool:
        """Whether a speculative slot would be granted this instant:
        the system is *fully idle* — no real request running or waiting,
        and a permit free.

        Requiring ``active == 0`` (not merely a free permit) is
        deliberate: on small hosts a free permit is not free compute,
        and a warm-up racing a running real query would steal cycles
        from it.  Speculation fills genuinely dead time — the analyst's
        think time — and nothing else.
        """
        return (self._waiting == 0 and self.active == 0
                and not self._semaphore.locked())

    @contextlib.asynccontextmanager
    async def speculative_slot(self, on_preempt=None):
        """Hold one *speculative* slot — granted only from idle capacity.

        Unlike :meth:`slot` this never waits: if no permit is free, or
        any real request is queued, it sheds immediately (counted in
        ``spec_denied``).  ``on_preempt`` is a zero-arg callable invoked
        when a real request arrives and needs the capacity back; the
        holder is expected to unwind cooperatively (cancel its task,
        which stops the engine between tiles and releases this slot).

        The check-then-acquire pair runs on the loop thread with no
        ``await`` between check and acquire, so the grant is atomic
        with respect to other requests.
        """
        if not self.can_speculate():
            self.spec_denied += 1
            raise OverloadedError(
                "no idle slot for speculative work",
                retry_after_ms=self.retry_after_ms())
        await self._semaphore.acquire()
        self.spec_active += 1
        self.spec_admitted += 1
        token = object()
        if on_preempt is not None:
            self._spec_holders[token] = on_preempt
        try:
            yield
        finally:
            self._spec_holders.pop(token, None)
            self.spec_active -= 1
            self._semaphore.release()
            self._notify_idle()

    def preempt_speculative(self) -> int:
        """Fire every registered speculative holder's cancel callback.

        Returns the number preempted.  Each holder is deregistered
        before its callback runs, so a re-entrant preemption (several
        real requests arriving in one beat) cancels each holder once.
        """
        fired = 0
        for token in list(self._spec_holders):
            cancel = self._spec_holders.pop(token, None)
            if cancel is None:
                continue
            fired += 1
            try:
                cancel()
            except Exception:  # noqa: BLE001 - shedding must not raise
                pass
        self.spec_preempted += fired
        return fired

    def _notify_idle(self) -> None:
        callback = self.on_idle
        if callback is not None and self._waiting == 0:
            try:
                callback()
            except Exception:  # noqa: BLE001 - see on_idle contract
                pass

    # -- introspection -----------------------------------------------------

    @property
    def waiting(self) -> int:
        return self._waiting

    def stats(self) -> dict:
        return {
            "max_concurrency": self.max_concurrency,
            "max_queue": self.max_queue,
            "active": self.active,
            "waiting": self._waiting,
            "admitted": self.admitted,
            "shed_queue_full": self.shed_queue_full,
            "shed_wait_timeout": self.shed_wait_timeout,
            "shed_total": self.shed_queue_full + self.shed_wait_timeout,
            "speculative": {
                "active": self.spec_active,
                "admitted": self.spec_admitted,
                "denied": self.spec_denied,
                "preempted": self.spec_preempted,
            },
        }
