"""Admission control: a bounded front door for the query service.

The engine's thread pool can only run ``max_concurrency`` queries at
once; everything else either waits in a *bounded* queue or is shed
immediately.  Shedding beats queueing unboundedly: an overloaded server
that accepts every request eventually times out all of them, while one
that answers "try again in 200ms" keeps its latency distribution honest
(the classic load-shedding argument).  Shed requests receive an
:class:`~repro.errors.OverloadedError` carrying ``retry_after_ms``
scaled by current queue depth, which the HTTP layer maps to a 429 with
a ``Retry-After`` header.

Everything here runs on the event loop thread, so plain counters are
race-free; the semaphore is the only synchronization primitive.
"""

from __future__ import annotations

import asyncio
import contextlib

from ..errors import OverloadedError

#: Baseline client back-off when shed; scaled up with queue depth.
BASE_RETRY_AFTER_MS = 100.0


class AdmissionController:
    """Concurrency semaphore + bounded wait queue + load shedding."""

    def __init__(self, max_concurrency: int = 4, max_queue: int = 16,
                 max_wait_s: float = 10.0):
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_concurrency = int(max_concurrency)
        self.max_queue = int(max_queue)
        self.max_wait_s = float(max_wait_s)
        self._semaphore = asyncio.Semaphore(self.max_concurrency)
        self._waiting = 0
        self.active = 0
        self.admitted = 0
        self.shed_queue_full = 0
        self.shed_wait_timeout = 0

    # -- shedding ----------------------------------------------------------

    def retry_after_ms(self) -> float:
        """Suggested client back-off, scaled by how deep the queue is:
        the fuller the queue, the longer the hint."""
        depth = self._waiting / max(1, self.max_queue)
        return BASE_RETRY_AFTER_MS * (1.0 + 4.0 * depth)

    @contextlib.asynccontextmanager
    async def slot(self, max_wait_s: float | None = None):
        """Hold one execution slot for the duration of the block.

        Sheds immediately when the wait queue is full, and after
        ``max_wait_s`` when a slot never frees up; both paths raise
        :class:`OverloadedError` with a ``retry_after_ms`` hint.  The
        slot is released on every exit path — including cancellation of
        the waiting or the running task — so a disconnected client can
        never leak capacity.
        """
        if self._waiting >= self.max_queue:
            self.shed_queue_full += 1
            raise OverloadedError(
                f"queue full ({self._waiting} waiting, "
                f"{self.active} running)",
                retry_after_ms=self.retry_after_ms())
        if max_wait_s is None:
            max_wait_s = self.max_wait_s
        self._waiting += 1
        acquired = False
        try:
            try:
                # asyncio.timeout, not wait_for: on 3.11, cancelling a
                # task parked in wait_for(sem.acquire()) can deadlock
                # loop teardown (the inner acquire future and the outer
                # cancellation race); timeout's cancel-count mechanism
                # does not have that failure mode.
                async with asyncio.timeout(max_wait_s):
                    await self._semaphore.acquire()
                    acquired = True
            except TimeoutError:
                if acquired:
                    # The permit arrived in the same beat the timeout
                    # fired; give it back before shedding.
                    self._semaphore.release()
                self.shed_wait_timeout += 1
                raise OverloadedError(
                    f"no slot freed within {max_wait_s:.1f}s",
                    retry_after_ms=self.retry_after_ms()) from None
        finally:
            self._waiting -= 1
        self.active += 1
        self.admitted += 1
        try:
            yield
        finally:
            self.active -= 1
            self._semaphore.release()

    # -- introspection -----------------------------------------------------

    @property
    def waiting(self) -> int:
        return self._waiting

    def stats(self) -> dict:
        return {
            "max_concurrency": self.max_concurrency,
            "max_queue": self.max_queue,
            "active": self.active,
            "waiting": self._waiting,
            "admitted": self.admitted,
            "shed_queue_full": self.shed_queue_full,
            "shed_wait_timeout": self.shed_wait_timeout,
            "shed_total": self.shed_queue_full + self.shed_wait_timeout,
        }
