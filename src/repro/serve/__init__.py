"""Concurrent query serving.

The paper's setting is many analysts exploring shared urban data sets
interactively; this package puts the engine behind a network service
built for that load profile:

* :class:`~repro.serve.service.QueryService` — engine execution on a
  thread pool behind **admission control** (bounded queue + load
  shedding with ``retry_after``) and **single-flight coalescing**
  (identical concurrent queries share one execution, each caller
  receiving an independent copy);
* :class:`~repro.serve.server.QueryServer` — a stdlib asyncio HTTP
  front end speaking the versioned JSON protocol in
  :mod:`repro.serve.protocol`, with chunked NDJSON **progressive
  streaming** of per-tile bounded partials;
* :class:`~repro.serve.client.ServeClient` — the matching blocking
  stdlib client.

Deadline-aware planning (``deadline_ms`` degrading exact -> bounded ->
coarser canvas) lives in the planner; the service merely threads the
per-request deadline through.

**Gesture-speculative prefetch** (:mod:`repro.serve.speculate`): the
service can watch each session's query stream, predict the next gesture
(adjacent time-brush bucket, neighboring pyramid blocks, +/-1 zoom
level) and warm the caches for it on otherwise-idle slots — strictly
lower priority than real work, shed first under load.
"""

from .admission import AdmissionController
from .client import ServeClient
from .coalesce import SingleFlight
from .mounts import mount_datasets
from .pool import ServeWorker, ServeWorkerPool
from .protocol import (
    PROTOCOL_VERSION,
    RemoteResult,
    decode_request,
    encode_request,
    filter_from_json,
    filter_to_json,
    query_from_json,
    query_to_json,
    result_from_json,
    result_to_json,
    viewport_from_json,
    viewport_to_json,
)
from .routing import HashRing
from .server import QueryServer, ServerThread
from .service import QueryService
from .speculate import GestureModel, SpeculationPlanner, Speculator

__all__ = [
    "AdmissionController",
    "GestureModel",
    "HashRing",
    "PROTOCOL_VERSION",
    "QueryServer",
    "QueryService",
    "RemoteResult",
    "ServeClient",
    "ServeWorker",
    "ServeWorkerPool",
    "ServerThread",
    "SingleFlight",
    "SpeculationPlanner",
    "Speculator",
    "decode_request",
    "encode_request",
    "filter_from_json",
    "filter_to_json",
    "mount_datasets",
    "query_from_json",
    "query_to_json",
    "result_from_json",
    "result_to_json",
    "viewport_from_json",
    "viewport_to_json",
]
