"""The query service: engine execution behind admission + coalescing.

:class:`QueryService` is the asyncio-facing seam between the HTTP
layer and the (synchronous, NumPy-bound) engine.  Each request flows
through four stages:

1. **Admission** (:mod:`repro.serve.admission`) — a bounded queue in
   front of a concurrency semaphore sized to the thread pool; overload
   sheds with ``retry_after_ms`` instead of queueing without bound.
2. **Coalescing** (:mod:`repro.serve.coalesce`) — requests with the
   same fingerprint key share one execution; every participant gets an
   independent ``result.copy()``, so no response aliases another.
3. **Execution** — the engine runs on a thread pool (the event loop
   never blocks on NumPy); results are cached in the engine's own
   unified cache under a ``("served", ...)`` key, so a repeated query
   is a cache hit even after its flight has landed.
4. **Streaming** (:meth:`QueryService.stream`) — long queries route
   through the progressive tiled join and yield per-tile partials with
   hard error bounds as they accumulate.

Cancellation is cooperative end to end: a disconnected client cancels
its handler task, the single-flight refcount drops, and when the last
participant is gone the flight's ``threading.Event`` stops the engine
between tiles.
"""

from __future__ import annotations

import asyncio
import threading
import time

from ..core.cache import fingerprint
from ..core.tiling import iter_tiled_partials
from ..errors import ProtocolError, QueryError
from ..obs import REGISTRY, SlowQueryLog, Tracer, record_query_stats
from ..obs.trace import activate, span
from ..urbane.datamanager import DataManager
from .admission import AdmissionController
from .pool import ServeWorkerPool
from .speculate import SPECULATION_DENIED, Speculator

#: Sentinel closing a streaming queue.
_DONE = object()


class QueryService:
    """Admission-controlled, coalescing front end over a DataManager.

    With ``shards > 1`` the service fronts a
    :class:`~repro.serve.pool.ServeWorkerPool`: requests route by
    consistent hash of their query fingerprint to one of ``shards``
    workers, each owning a private engine (unified cache, tcube,
    pyramid blocks) and coalescing map — the caches *shard* across
    workers instead of duplicating.  Admission stays global: one
    controller aggregates the concurrency slots for the whole pool.
    """

    def __init__(self, manager: DataManager,
                 max_concurrency: int = 4,
                 max_queue: int = 16,
                 max_wait_s: float = 10.0,
                 default_deadline_ms: float | None = None,
                 shards: int = 1,
                 speculate: bool = False,
                 speculate_budget_ms: float = 250.0,
                 slow_query_ms: float | None = None,
                 model_dir: str | None = None,
                 trace_retain: int = 64):
        self.manager = manager
        self.admission = AdmissionController(
            max_concurrency=max_concurrency, max_queue=max_queue,
            max_wait_s=max_wait_s)
        self.default_deadline_ms = default_deadline_ms
        # Worker 0 wraps the manager's engine, so a one-shard pool is
        # exactly the pre-pool service (same cache, same counters).
        self.workers = ServeWorkerPool(manager.engine, shards,
                                       total_threads=max_concurrency)
        self._streams: dict[str, object] = {}
        self.queries = 0
        self.stream_queries = 0
        self.errors = 0
        # Gesture-speculative prefetch: watches the per-session query
        # stream and warms caches for the predicted next gestures on
        # idle slots only (see repro.serve.speculate).  Constructed
        # even when disabled so stats keep a stable shape.
        self.speculator = Speculator(self, budget_ms=speculate_budget_ms,
                                     enabled=bool(speculate))
        # Observability: a ring buffer of recent request traces and a
        # threshold-gated slow-query log.  Tracing stays off unless a
        # request asks for it or the slow-query log needs every request
        # timed; the span fast path makes the quiet case near-free.
        self.tracer = Tracer(retain=trace_retain)
        self.slowlog = SlowQueryLog(threshold_ms=slow_query_ms)
        self.model_dir = model_dir
        if model_dir:
            self.speculator.load_model(model_dir)

    @property
    def flight(self):
        """Worker 0's coalescing map (single-shard back-compat)."""
        return self.workers.workers[0].flight

    @property
    def pool(self):
        """Worker 0's thread pool (single-shard back-compat)."""
        return self.workers.workers[0].executor

    # -- registration ------------------------------------------------------

    def add_stream(self, stream, name: str) -> str:
        """Serve a live :class:`~repro.stream.buffer.PointStream`.

        The stream's consolidated table is resolved *per query*, so
        appends between requests are picked up automatically — and
        because consolidation produces a fresh table object per append,
        stale cached results stop matching by construction.
        """
        if name in self._streams or name in self.manager.dataset_names:
            raise QueryError(f"dataset {name!r} already registered")
        self._streams[name] = stream
        return name

    def _resolve_table(self, dataset: str):
        """(table, stream version or None) for a dataset name."""
        stream = self._streams.get(dataset)
        if stream is not None:
            return stream.table(), stream.version
        return self.manager.dataset(dataset), None

    # -- keys --------------------------------------------------------------

    def query_key(self, req: dict) -> tuple:
        """The coalescing/caching identity of a request.

        Content fingerprints for the data, the full repr of the frozen
        query (filters included), and every knob that can change the
        answer — ``deadline_ms`` included, since degradation changes
        what comes back, and the viewport (a pinned canvas changes the
        raster answer).  The ``session`` id is deliberately *not* part
        of the key: identical gestures from different sessions must
        coalesce and share cache entries.
        """
        table, _version = self._resolve_table(req["dataset"])
        regions = self.manager.region_set(req["regions"])
        query = req["query"]
        if query is None:
            raise ProtocolError("request has no parsed query")
        return ("served", fingerprint(table), fingerprint(regions),
                repr(query), req["method"], req["resolution"],
                req["epsilon"], bool(req["exact"]), req["deadline_ms"],
                req.get("viewport"))

    # -- one-shot queries --------------------------------------------------

    def _parse_sql(self, req: dict) -> None:
        """Resolve a ``sql`` request into dataset/regions/query fields."""
        from ..core.sql import parse_query

        parsed = parse_query(req["sql"])
        req["dataset"] = req["dataset"] or parsed.table
        req["regions"] = req["regions"] or parsed.regions
        req["query"] = parsed.aggregation

    def _run(self, req: dict, key: tuple, cancel: threading.Event,
             engine=None, speculative: bool = False):
        """Engine execution (thread-pool side).

        ``speculative`` builds insert at the cache's LRU *cold* end
        (wrong predictions must never evict blocks real queries keep
        hot) but are otherwise byte-for-byte the real execution — that
        identity is what lets a real query join a speculative flight.
        """
        table, stream_version = self._resolve_table(req["dataset"])
        regions = self.manager.region_set(req["regions"])
        if engine is None:
            engine = self.manager.engine
        deadline = req["deadline_ms"]
        if deadline is None:
            deadline = self.default_deadline_ms

        def build():
            result = engine.execute(
                table, regions, req["query"], method=req["method"],
                resolution=req["resolution"], epsilon=req["epsilon"],
                exact=bool(req["exact"]), viewport=req.get("viewport"),
                deadline_ms=deadline, cancel=cancel)
            if stream_version is not None:
                result.stats["stream_version"] = stream_version
            return result

        def run_cached():
            if req.get("cache", True):
                # The unified cache defensively copies results on read,
                # so the stored original is never the object handed out.
                return engine.ctx.cache.get_or_build(key, build)
            return build()

        def dispatch():
            if speculative:
                with engine.ctx.cache.speculative_inserts():
                    return run_cached()
            return run_cached()

        # run_in_executor does not propagate contextvars, so the
        # request's root span (when tracing) rides in on the request
        # dict and is re-activated on this pool thread.
        with activate(req.get("_span")), span("execute"):
            return dispatch()

    async def execute(self, req: dict):
        """Serve one non-streaming request; returns a private
        :class:`~repro.core.result.AggregationResult` copy.

        When the request asks for a trace (``trace`` knob) or the
        slow-query log is armed, the whole request runs under a root
        span: admission wait, coalesce join, execution (including
        grafted child-process shard spans) all land in one tree, kept
        in the tracer's ring buffer under a ``request_id`` the client
        can fetch back via ``GET /v1/trace/<id>``.
        """
        traced = bool(req.get("trace")) or self.slowlog.enabled
        if not traced:
            return await self._execute(req)
        request_id = self.tracer.new_request_id()
        root = self.tracer.start("request", request_id=request_id)
        req["_span"] = root
        result = None
        try:
            with root:
                root.set(dataset=req.get("dataset") or req.get("sql"))
                result = await self._execute(req)
        finally:
            payload = root.to_dict()
            self.tracer.keep(request_id, payload)
            self.slowlog.note(
                request_id, root.wall_s * 1000.0, payload,
                summary={"dataset": req.get("dataset"),
                         "method": req.get("method")})
        # Only an explicit ``trace`` knob surfaces the reference in the
        # response stats — slowlog-armed tracing stays server-side.
        if req.get("trace"):
            result.stats["trace"] = {"request_id": request_id,
                                     "wall_ms": root.wall_s * 1000.0}
        return result

    async def _execute(self, req: dict):
        """Serve one non-streaming request; returns a private
        :class:`~repro.core.result.AggregationResult` copy.

        Coalescing happens *before* admission: joiners of an in-flight
        identical query never consume a slot (they do no work), so
        under a burst of identical requests the admission queue only
        sees distinct work.  A shed leader sheds its joiners with it —
        shared fate, shared ``retry_after``.
        """
        t0 = time.perf_counter()
        if req.get("sql"):
            self._parse_sql(req)
        self.queries += 1
        key = self.query_key(req)
        # Consistent-hash routing: this key's worker owns its flights
        # and its cache slice for the pool's lifetime.
        worker = self.workers.worker_for(key)
        worker.queries += 1
        loop = asyncio.get_running_loop()
        # Hit attribution *before* running: a warm cache entry or an
        # in-flight speculative build for this key is a prediction the
        # user confirmed.
        spec = self.speculator
        spec_hit = spec.enabled and spec.note_real_query(key)

        async def start(cancel: threading.Event):
            async with self.admission.slot(req.get("timeout_s")):
                return await loop.run_in_executor(
                    worker.executor, self._run, req, key, cancel,
                    worker.engine)

        try:
            result = await worker.flight.run(key, start)
            # A real query that joined a speculative flight inherits
            # the denial *value* when admission refused the idle slot;
            # it retries as real work (queueing like any request)
            # rather than surfacing a speculative shed to the client.
            while result is SPECULATION_DENIED:
                result = await worker.flight.run(key, start)
        except Exception:
            self.errors += 1
            REGISTRY.counter("repro_errors_total").inc()
            raise
        # Feed the gesture model and (re)plan during think time — the
        # answer is already on its way out.
        spec.observe(req)
        # Each participant gets an independent copy — coalesced
        # responses must not alias one another's arrays or stats.
        copy = result.copy()
        copy.stats["speculate"] = {"hit": bool(spec_hit)}
        # Metrics record once per *served response*: coalesced joiners
        # each count, so registry totals reconcile with summed
        # per-response stats.
        record_query_stats(copy.stats, time.perf_counter() - t0)
        return copy

    # -- streaming queries -------------------------------------------------

    async def stream(self, req: dict):
        """Serve one progressive request: an async iterator of
        :class:`~repro.core.tiling.TilePartial` snapshots.

        Streaming runs are not coalesced (each client owns its pace and
        its cancel token) but still pass admission, so a flood of
        streamers sheds like everything else.
        """
        if req.get("sql"):
            self._parse_sql(req)
        # Streams are not coalesced or cached, but routing them keeps
        # the pool's thread budgets honest (a flood of streamers lands
        # spread across workers, not all on worker 0).
        worker = self.workers.worker_for(self.query_key(req))
        async with self.admission.slot(req.get("timeout_s")):
            self.queries += 1
            self.stream_queries += 1
            worker.queries += 1
            table, _version = self._resolve_table(req["dataset"])
            regions = self.manager.region_set(req["regions"])
            if req["query"] is None:
                raise ProtocolError("request has no parsed query")
            resolution = (req["resolution"]
                          or self.manager.engine.default_resolution)
            cancel = threading.Event()
            loop = asyncio.get_running_loop()
            queue: asyncio.Queue = asyncio.Queue(maxsize=4)

            def produce():
                try:
                    for partial in iter_tiled_partials(
                            table, regions, req["query"], resolution,
                            tile_pixels=int(req["tile_pixels"]),
                            every=int(req["stream_every"]),
                            cancel=cancel):
                        asyncio.run_coroutine_threadsafe(
                            queue.put(partial), loop).result()
                    asyncio.run_coroutine_threadsafe(
                        queue.put(_DONE), loop).result()
                except BaseException as exc:  # noqa: BLE001 - forwarded
                    try:
                        asyncio.run_coroutine_threadsafe(
                            queue.put(exc), loop).result()
                    except RuntimeError:
                        pass  # loop already gone; nothing to notify

            future = loop.run_in_executor(worker.executor, produce)
            try:
                while True:
                    item = await queue.get()
                    if item is _DONE:
                        break
                    if isinstance(item, BaseException):
                        self.errors += 1
                        raise item
                    yield item
            finally:
                # Consumer gone (disconnect) or exhausted: stop the
                # producer between tiles and drain so it can finish.
                cancel.set()
                while not future.done():
                    try:
                        queue.get_nowait()
                    except asyncio.QueueEmpty:
                        await asyncio.sleep(0.01)

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        # Pool-wide aggregates: for a one-shard pool these equal the
        # manager engine's own counters (worker 0 *is* that engine).
        cache = self.workers.aggregate_cache_stats()
        blocks = cache.get("blocks", {})
        return {
            "queries": self.queries,
            "stream_queries": self.stream_queries,
            "errors": self.errors,
            "admission": self.admission.stats(),
            "coalesce": self.workers.aggregate_coalesce_stats(),
            "cache": cache,
            "pool": self.workers.stats(),
            # Lifetime pyramid block-tier reuse, surfaced at the top
            # level so operators see canvas reuse without digging into
            # the cache counters.
            "pyramid": {
                "block_hits": blocks.get("hits", 0),
                "block_derived": blocks.get("derived", 0),
                "block_misses": blocks.get("misses", 0),
                "reuse_fraction": blocks.get("reuse_fraction", 0.0),
            },
            "speculate": self.speculator.stats(),
            "tracer": self.tracer.stats(),
            "slowlog": self.slowlog.stats(),
            "datasets": sorted(self.manager.dataset_names
                               + list(self._streams)),
            "region_sets": self.manager.region_set_names,
        }

    def close(self) -> None:
        if self.model_dir:
            self.speculator.save_model(self.model_dir)
        self.speculator.close()
        self.workers.close()
