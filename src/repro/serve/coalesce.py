"""Single-flight coalescing for identical concurrent queries.

Interactive dashboards are bursty in a very particular way: when ten
clients look at the same view, they issue the *same* query within the
same beat.  Running it ten times multiplies latency for everyone;
running it once and fanning the answer out costs one execution.  A
:class:`SingleFlight` keyed by query fingerprint does exactly that: the
first arrival becomes the leader and starts the work, later arrivals
("joiners") await the same task.

Cancellation is reference-counted: every participant that drops out
(client disconnect -> its handler task is cancelled) decrements the
flight's refcount, and only when the *last* participant leaves is the
flight's cooperative cancel token set — a leader's disconnect must not
kill an answer nine joiners are still waiting for.

The value resolved by the shared task is handed to every participant
**by reference** — callers that hand out mutable results must copy per
participant (the query service returns ``result.copy()`` to each).
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass, field

from ..obs.trace import span


@dataclass
class Flight:
    """One in-progress execution shared by every coalesced request."""

    task: asyncio.Task
    #: Cooperative token threaded into the engine (checked between
    #: tiles); set only when the last participant abandons the flight.
    cancel: threading.Event = field(default_factory=threading.Event)
    refs: int = 0


class SingleFlight:
    """Fingerprint-keyed coalescing of concurrent identical work."""

    def __init__(self):
        self._flights: dict = {}
        self.leaders = 0
        self.coalesced = 0
        self.cancelled_flights = 0

    def inflight(self) -> int:
        return len(self._flights)

    async def run(self, key, start):
        """Run ``start`` once per key across concurrent callers.

        ``start(cancel_event)`` must return an awaitable; it is invoked
        only by the leader.  Every caller (leader and joiners alike)
        receives the same resolved value or the same raised exception.
        A caller cancelled while waiting leaves the flight; the last
        one out sets the cancel event and cancels the shared task.
        """
        flight = self._flights.get(key)
        if flight is None:
            role = "leader"
            cancel = threading.Event()
            # ensure_future copies the *current* context at task
            # creation, so the leader's execution inherits any active
            # trace span from this caller.
            task = asyncio.ensure_future(start(cancel))
            flight = Flight(task=task, cancel=cancel)
            self._flights[key] = flight
            self.leaders += 1

            def _cleanup(t: asyncio.Task) -> None:
                # Drop the registry entry and retrieve the exception so
                # an all-participants-cancelled flight never logs a
                # "exception was never retrieved" warning.
                if self._flights.get(key) is flight:
                    del self._flights[key]
                if not t.cancelled():
                    t.exception()

            task.add_done_callback(_cleanup)
        else:
            role = "joiner"
            self.coalesced += 1
        flight.refs += 1
        try:
            # shield(): cancelling *this* caller must not cancel the
            # shared task other participants still await.
            with span("flight.wait", role=role):
                return await asyncio.shield(flight.task)
        except asyncio.CancelledError:
            if not flight.task.done():
                flight.refs -= 1
                if flight.refs <= 0:
                    flight.cancel.set()
                    flight.task.cancel()
                    self.cancelled_flights += 1
            raise

    def stats(self) -> dict:
        lookups = self.leaders + self.coalesced
        return {
            "leaders": self.leaders,
            "coalesced": self.coalesced,
            "inflight": len(self._flights),
            "cancelled_flights": self.cancelled_flights,
            "coalesce_rate": (self.coalesced / lookups) if lookups else 0.0,
        }
