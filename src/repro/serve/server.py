"""The asyncio HTTP front end — stdlib only.

A deliberately small HTTP/1.1 implementation over
``asyncio.start_server`` (the container has no web framework, and the
protocol needs only a handful of routes):

* ``GET /v1/health`` — liveness;
* ``GET /v1/stats``  — service counters (admission, coalescing, cache);
* ``GET /v1/metrics`` — the process-wide metrics registry (JSON, or
  the Prometheus text format with ``?format=prometheus``);
* ``GET /v1/trace`` / ``GET /v1/trace/<request_id>`` — the ring buffer
  of recent request traces and one full span tree;
* ``GET /v1/slow`` — the slow-query log (threshold-gated span dumps);
* ``GET /v1/viewport?regions=...&resolution=...`` — the server-planned
  canvas grid viewport for a region set, so remote clients can express
  pan/zoom gestures on exactly the grid the server caches blocks on;
* ``POST /v1/query`` — one JSON request body per query.  Non-streaming
  requests get one JSON object back; ``"stream": true`` requests get a
  chunked ``application/x-ndjson`` response, one
  :class:`~repro.core.tiling.TilePartial` per line, ending with the
  ``final`` snapshot.

Error mapping: malformed requests and unknown datasets are 400s,
admission sheds are **429 + Retry-After** (seconds, from the
controller's ``retry_after_ms`` hint), engine faults are 500s — always
with a JSON error payload so clients never parse prose.

Disconnect handling: each request runs as a task racing an EOF watch on
the connection; when the client goes away mid-query the task is
cancelled, which unwinds admission (slot freed) and single-flight
(refcount dropped, engine cancelled between tiles once the last
participant leaves).

One request per connection (``Connection: close``) — the protocol is
request/response, and skipping keep-alive keeps the parser honest.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading

from ..errors import (
    OverloadedError,
    ProtocolError,
    QueryCancelled,
    ReproError,
)
from .protocol import (
    decode_request,
    error_to_json,
    partial_to_json,
    result_to_json,
)
from .service import QueryService

_MAX_BODY_BYTES = 8 * 1024 * 1024
_MAX_HEADER_LINES = 100


def _head(status: str, content_type: str, length: int | None,
          extra: dict | None = None) -> bytes:
    lines = [f"HTTP/1.1 {status}", f"Content-Type: {content_type}",
             "Connection: close"]
    if length is None:
        lines.append("Transfer-Encoding: chunked")
    else:
        lines.append(f"Content-Length: {length}")
    for key, value in (extra or {}).items():
        lines.append(f"{key}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


def _json_bytes(payload: dict) -> bytes:
    return json.dumps(payload).encode("utf-8")


def _chunk(data: bytes) -> bytes:
    return f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n"


def _error_response(exc: Exception) -> tuple[str, dict, dict]:
    """(status, payload, extra headers) for a failed request."""
    if isinstance(exc, OverloadedError):
        retry_s = max(1, math.ceil(exc.retry_after_ms / 1000.0))
        return ("429 Too Many Requests", error_to_json(exc),
                {"Retry-After": str(retry_s)})
    if isinstance(exc, (ProtocolError, json.JSONDecodeError)):
        return "400 Bad Request", error_to_json(exc), {}
    if isinstance(exc, ReproError):
        # Unknown dataset, bad column, malformed query, ...: the
        # client's fault, not the server's.
        return "400 Bad Request", error_to_json(exc), {}
    return "500 Internal Server Error", error_to_json(exc), {}


class QueryServer:
    """Serves a :class:`QueryService` over HTTP."""

    def __init__(self, service: QueryService, host: str = "127.0.0.1",
                 port: int = 0):
        self.service = service
        self.host = host
        self._requested_port = port
        self._server: asyncio.AbstractServer | None = None
        self.connections = 0
        self.disconnects = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port)

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.service.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- request handling --------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        try:
            method, path, headers = await self._read_head(reader)
            length = int(headers.get("content-length", "0"))
            if length > _MAX_BODY_BYTES:
                raise ProtocolError(f"request body over {_MAX_BODY_BYTES}B")
            body = await reader.readexactly(length) if length else b""
            await self._dispatch(method, path, body, reader, writer)
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError):
            self.disconnects += 1
        except Exception as exc:  # noqa: BLE001 - boundary: report as JSON
            await self._send_error(writer, exc)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_head(self, reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line:
            raise asyncio.IncompleteReadError(b"", 1)
        try:
            method, path, _version = request_line.decode("ascii").split()
        except ValueError:
            raise ProtocolError(
                f"malformed request line {request_line!r}") from None
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise ProtocolError("too many header lines")
        return method, path, headers

    async def _dispatch(self, method: str, path: str, body: bytes,
                        reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter) -> None:
        if method == "GET" and path == "/v1/health":
            await self._send_json(writer, "200 OK", {"ok": True, "v": 1})
            return
        if method == "GET" and path == "/v1/stats":
            from .protocol import jsonable

            await self._send_json(writer, "200 OK",
                                  jsonable(self.service.stats()))
            return
        if method == "GET" and path.split("?", 1)[0] == "/v1/metrics":
            await self._metrics(path, writer)
            return
        if method == "GET" and (path == "/v1/trace"
                                or path.startswith("/v1/trace/")):
            await self._trace(path, writer)
            return
        if method == "GET" and path == "/v1/slow":
            await self._send_json(
                writer, "200 OK",
                {"v": 1, "kind": "slow_queries",
                 "slowlog": self.service.slowlog.stats(),
                 "entries": self.service.slowlog.entries()})
            return
        if method == "GET" and path.split("?", 1)[0] == "/v1/viewport":
            await self._plan_viewport(path, writer)
            return
        if method == "POST" and path == "/v1/query":
            req = decode_request(json.loads(body.decode("utf-8")))
            if req["stream"]:
                await self._stream_query(req, writer)
            else:
                await self._unary_query(req, reader, writer)
            return
        await self._send_json(
            writer, "404 Not Found",
            {"kind": "error", "error": "NotFound",
             "message": f"no route {method} {path}"})

    async def _metrics(self, path: str,
                       writer: asyncio.StreamWriter) -> None:
        """GET /v1/metrics: the process-wide registry, refreshed with
        the service's current gauge readings.  JSON by default;
        ``?format=prometheus`` renders the text exposition format."""
        from urllib.parse import parse_qs, urlsplit

        from ..obs import REGISTRY, sample_service_stats

        sample_service_stats(self.service.stats())
        params = parse_qs(urlsplit(path).query)
        fmt = params.get("format", ["json"])[0]
        if fmt == "prometheus":
            body = REGISTRY.render_prometheus().encode("utf-8")
            try:
                writer.write(_head("200 OK",
                                   "text/plain; version=0.0.4",
                                   len(body)) + body)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                self.disconnects += 1
            return
        await self._send_json(writer, "200 OK",
                              {"v": 1, "kind": "metrics",
                               **REGISTRY.snapshot()})

    async def _trace(self, path: str,
                     writer: asyncio.StreamWriter) -> None:
        """GET /v1/trace lists retained request ids; /v1/trace/<id>
        returns that request's full span tree."""
        tracer = self.service.tracer
        if path == "/v1/trace":
            await self._send_json(writer, "200 OK",
                                  {"v": 1, "kind": "traces",
                                   "tracer": tracer.stats(),
                                   "request_ids": tracer.ids()})
            return
        request_id = path[len("/v1/trace/"):]
        payload = tracer.get(request_id)
        if payload is None:
            await self._send_json(
                writer, "404 Not Found",
                {"kind": "error", "error": "NotFound",
                 "message": f"no retained trace {request_id!r}"})
            return
        await self._send_json(writer, "200 OK",
                              {"v": 1, "kind": "trace",
                               "request_id": request_id,
                               "trace": payload})

    async def _plan_viewport(self, path: str,
                             writer: asyncio.StreamWriter) -> None:
        """GET /v1/viewport: the canvas-grid viewport the server plans
        for a region set — the anchor for client-side pan/zoom."""
        from urllib.parse import parse_qs, urlsplit

        from .protocol import viewport_to_json

        params = parse_qs(urlsplit(path).query)
        regions = params.get("regions", [None])[0]
        if not regions:
            raise ProtocolError("/v1/viewport needs a regions= parameter")
        resolution = params.get("resolution", [None])[0]
        if resolution is not None:
            try:
                resolution = int(resolution)
            except ValueError:
                raise ProtocolError(
                    f"bad resolution {resolution!r}") from None
        region_set = self.service.manager.region_set(regions)
        viewport = self.service.manager.engine.plan_grid_viewport(
            region_set, resolution)
        await self._send_json(writer, "200 OK",
                              {"v": 1, "kind": "viewport",
                               "viewport": viewport_to_json(viewport)})

    async def _unary_query(self, req: dict, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        # Race the query against connection EOF: a client that hangs up
        # must release its slot (admission) and its vote (coalescing)
        # immediately, not when the result is ready.
        work = asyncio.ensure_future(self.service.execute(req))
        eof_watch = asyncio.ensure_future(reader.read(1))
        try:
            done, _pending = await asyncio.wait(
                {work, eof_watch}, return_when=asyncio.FIRST_COMPLETED)
            if work not in done:
                # EOF (or stray bytes; either way this connection can
                # no longer receive an answer).
                self.disconnects += 1
                work.cancel()
                try:
                    await work
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
                return
            result = work.result()
            await self._send_json(writer, "200 OK", result_to_json(result))
        except asyncio.CancelledError:
            work.cancel()
            raise
        except QueryCancelled:
            self.disconnects += 1
        except Exception as exc:  # noqa: BLE001 - boundary
            await self._send_error(writer, exc)
        finally:
            eof_watch.cancel()

    async def _stream_query(self, req: dict,
                            writer: asyncio.StreamWriter) -> None:
        started = False
        try:
            async for partial in self.service.stream(req):
                if not started:
                    writer.write(_head("200 OK", "application/x-ndjson",
                                       None))
                    started = True
                line = _json_bytes(partial_to_json(partial)) + b"\n"
                writer.write(_chunk(line))
                await writer.drain()
            if started:
                writer.write(b"0\r\n\r\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            self.disconnects += 1
        except QueryCancelled:
            self.disconnects += 1
        except Exception as exc:  # noqa: BLE001 - boundary
            if not started:
                await self._send_error(writer, exc)
            else:
                # Mid-stream failure: emit a terminal error line so the
                # client can tell truncation from completion.
                try:
                    line = _json_bytes(error_to_json(exc)) + b"\n"
                    writer.write(_chunk(line) + b"0\r\n\r\n")
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    self.disconnects += 1

    # -- response writers --------------------------------------------------

    async def _send_json(self, writer: asyncio.StreamWriter, status: str,
                         payload: dict, extra: dict | None = None) -> None:
        body = _json_bytes(payload)
        try:
            writer.write(_head(status, "application/json", len(body), extra)
                         + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            self.disconnects += 1

    async def _send_error(self, writer: asyncio.StreamWriter,
                          exc: Exception) -> None:
        status, payload, extra = _error_response(exc)
        await self._send_json(writer, status, payload, extra)


class ServerThread:
    """A :class:`QueryServer` on a private event loop in a daemon thread.

    The synchronous harnesses (tests, the throughput benchmark, the
    CLI's self-test) need a live server without owning an event loop;
    this wraps start/stop behind plain calls.
    """

    def __init__(self, service: QueryService, host: str = "127.0.0.1",
                 port: int = 0):
        self.server = QueryServer(service, host=host, port=port)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> str:
        """Start serving; returns the base URL."""
        ready = threading.Event()

        def run() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self.server.start())
            ready.set()
            loop.run_forever()
            loop.run_until_complete(self.server.stop())
            # Speculative warm-ups (and any straggler handlers) may
            # still be unwinding their cancellation; give them a
            # bounded window before the loop is torn down so no task
            # is destroyed while pending.
            leftovers = asyncio.all_tasks(loop)
            if leftovers:
                for task in leftovers:
                    task.cancel()
                loop.run_until_complete(
                    asyncio.wait(leftovers, timeout=5.0))
            loop.close()

        self._thread = threading.Thread(target=run, name="repro-serve",
                                        daemon=True)
        self._thread.start()
        if not ready.wait(timeout=10.0):
            raise RuntimeError("server failed to start within 10s")
        return self.server.url

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()
