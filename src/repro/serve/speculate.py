"""Gesture-speculative prefetch: warm the caches for the *next* query.

Interactive sessions have strong gesture locality — after a time brush
the next query is almost always the adjacent bucket, after a pan the
neighboring viewport blocks, after a zoom the +/-1 power-of-two level.
This module gets *ahead* of the user: it watches the per-session query
stream, predicts the likely next queries, and executes them as strictly
lower-priority background work so their results are already sitting in
the unified cache (tcube rows, pyramid blocks, served-result entries)
when the real gesture arrives.

Three parts:

* :class:`GestureModel` — classifies each request against the session's
  previous one (``brush+1``, ``brush-1``, ``pan``, ``zoom-in``, ...),
  maintains a Laplace-smoothed Markov transition table over gesture
  kinds, and emits ranked candidate next requests: shifted time-brush
  buckets, the momentum pan plus one-block ring shifts, and the +/-1
  zoom levels.
* :class:`SpeculationPlanner` — turns ranked candidates into concrete
  :class:`WorkItem` warm-ups: resolves each candidate's cache key and
  owning worker (the same :class:`~repro.serve.routing.HashRing` route
  the real query will take), drops candidates that are already cached
  or fall outside the cached tcube's time span, prices the rest through
  the engine's EWMA-calibrated cost model
  (:meth:`~repro.core.planner.CostBasedPlanner.predict_plan_ms`), and
  keeps what fits a per-gesture millisecond budget.
* :class:`Speculator` — the background executor.  Items run one at a
  time on **speculative admission slots**
  (:meth:`~repro.serve.admission.AdmissionController.speculative_slot`):
  granted only from idle capacity, preempted (cooperatively cancelled)
  the moment a real request needs the slot, shed *before* any real
  query is rejected.  Each item runs through its worker's
  :class:`~repro.serve.coalesce.SingleFlight` map under the *real*
  query key, so a real query arriving mid-speculation joins the
  in-flight build instead of re-running it — and the ref-counted cancel
  protocol guarantees that preempting the speculative leader can never
  kill a real joiner.  Results are inserted at the cache's LRU *cold*
  end (:meth:`~repro.core.cache.QueryCache.speculative_inserts`), so a
  burst of wrong predictions cannot evict blocks real queries keep hot.

Speculation may only ever change *latency*: every answer a real query
receives is either its own execution or a cache/coalesce artifact of
the identical request, so results with speculation on are bitwise-equal
to speculation off.
"""

from __future__ import annotations

import asyncio
import json
import logging
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path

from ..core.backends.base import ExecutionPlan
from ..core.pyramid import GridViewport
from ..core.query import SpatialAggregation
from ..core.tcube import cached_time_span, find_answering_cube, \
    split_time_filter
from ..errors import OverloadedError, QueryCancelled, ReproError
from ..raster.pyramid import block_span
from ..table.filters import TimeRange

#: Returned by a speculative flight's ``start`` when admission denies
#: the idle slot.  A *value*, not an exception: a real query that
#: already joined the flight must see "retry as real work", never
#: inherit a speculative shed.
SPECULATION_DENIED = object()

#: Model bucket for requests that carry no ``session`` id.
GLOBAL_SESSION = "__global__"

#: Laplace priors over gesture kinds — the cold-start encoding of
#: gesture locality (forward brush sweeps and pans dominate real
#: sessions) before the transition table has observed anything.
_PRIORS = {
    "brush+1": 4.0,
    "brush-1": 2.0,
    "brush-jump": 0.5,
    "pan": 4.0,
    "zoom-in": 1.0,
    "zoom-out": 1.0,
    "other": 0.5,
}

#: Each one-block ring shift shares the pan family's probability mass
#: at this discount (the momentum pan keeps the full mass).
_RING_WEIGHT = 0.25

#: Completed warm-ups remembered for hit attribution (bounded; the
#: cache itself is the source of truth for whether the entry survived).
_MAX_WARMED = 512

#: Sidecar file name for the persisted transition table
#: (``serve --model-dir``).
MODEL_FILENAME = "gesture_model.json"

log = logging.getLogger("repro.speculate")


# -- gesture classification ---------------------------------------------------


def classify_gesture(prev: dict, req: dict) -> tuple[str | None,
                                                     tuple[int, int]]:
    """``(kind, pan_delta)`` of the step from ``prev`` to ``req``.

    Kinds: ``brush+1``/``brush-1`` (time brush stepped forward/back by
    exactly its own width), ``brush-jump`` (any other brush move),
    ``pan`` (same grid + level, window shifted; the delta in level
    pixels rides along), ``zoom-in``/``zoom-out`` (level change on one
    grid), ``other`` (dataset/regions/query changed), or ``None`` when
    the request is identical to the previous one (no transition
    signal).
    """
    if (prev.get("dataset"), prev.get("regions")) != \
            (req.get("dataset"), req.get("regions")):
        return "other", (0, 0)
    pv, cv = prev.get("viewport"), req.get("viewport")
    if isinstance(pv, GridViewport) and isinstance(cv, GridViewport) \
            and pv.grid == cv.grid and pv != cv:
        if cv.level == pv.level:
            return "pan", (cv.col0 - pv.col0, cv.row0 - pv.row0)
        return ("zoom-out" if cv.level > pv.level else "zoom-in"), (0, 0)
    pq, cq = prev.get("query"), req.get("query")
    if pq is None or cq is None:
        return "other", (0, 0)
    ptr, prest = split_time_filter(pq)
    ctr, crest = split_time_filter(cq)
    if ptr is not None and ctr is not None and ptr.column == ctr.column \
            and (pq.agg, pq.value_column) == (cq.agg, cq.value_column) \
            and sorted(map(repr, prest)) == sorted(map(repr, crest)) \
            and (ptr.start, ptr.end) != (ctr.start, ctr.end):
        width = int(ptr.end) - int(ptr.start)
        if int(ctr.end) - int(ctr.start) == width:
            if int(ctr.start) == int(ptr.start) + width:
                return "brush+1", (0, 0)
            if int(ctr.start) == int(ptr.start) - width:
                return "brush-1", (0, 0)
        return "brush-jump", (0, 0)
    if repr(pq) != repr(cq):
        return "other", (0, 0)
    return None, (0, 0)


def shift_brush(query: SpatialAggregation, brush: TimeRange,
                shift: int) -> SpatialAggregation:
    """The query with ``brush`` (one of its filters) moved by ``shift``
    seconds — the identical frozen shape a client stepping its brush
    would send, so the cache keys agree."""
    moved = TimeRange(brush.column, int(brush.start) + int(shift),
                      int(brush.end) + int(shift))
    filters = tuple(moved if f is brush else f for f in query.filters)
    return SpatialAggregation(query.agg, query.value_column, filters)


@dataclass
class _SessionTrace:
    """Last-seen state of one session's query stream."""

    last_req: dict | None = None
    last_kind: str | None = None
    last_pan: tuple[int, int] = (0, 0)


class GestureModel:
    """Markov transition statistics over per-session gesture kinds.

    The transition table is shared across sessions (gesture locality is
    a property of interaction, not of one analyst) while the *state* —
    the previous request a prediction extends — is per session.
    """

    def __init__(self, max_sessions: int = 256):
        if max_sessions < 1:
            raise ValueError("max_sessions must be positive")
        self.max_sessions = int(max_sessions)
        self._sessions: OrderedDict[str, _SessionTrace] = OrderedDict()
        #: (from_kind, to_kind) -> observation count.
        self.transitions: dict[tuple[str, str], int] = {}
        self.observed = 0

    # -- observation -------------------------------------------------------

    def _trace(self, session: str | None) -> _SessionTrace:
        name = session or GLOBAL_SESSION
        trace = self._sessions.get(name)
        if trace is None:
            trace = self._sessions[name] = _SessionTrace()
        self._sessions.move_to_end(name)
        while len(self._sessions) > self.max_sessions:
            self._sessions.popitem(last=False)
        return trace

    def observe(self, req: dict) -> str | None:
        """Fold one served request into the model; returns the gesture
        kind it was classified as (``None`` for a verbatim repeat)."""
        trace = self._trace(req.get("session"))
        kind, pan = (None, (0, 0))
        if trace.last_req is not None:
            kind, pan = classify_gesture(trace.last_req, req)
            if trace.last_kind is not None and kind is not None:
                edge = (trace.last_kind, kind)
                self.transitions[edge] = self.transitions.get(edge, 0) + 1
        trace.last_req = dict(req)
        if kind is not None:
            trace.last_kind = kind
            trace.last_pan = pan
        self.observed += 1
        return kind

    # -- persistence -------------------------------------------------------

    def to_json(self) -> dict:
        """The transition table in sidecar form.

        Only the cross-session knowledge persists: the table and its
        observation count.  Per-session state (the last request a
        prediction would extend) is deliberately ephemeral — a restart
        has no sessions.
        """
        return {
            "version": 1,
            "observed": self.observed,
            "transitions": [[frm, to, count] for (frm, to), count
                            in sorted(self.transitions.items())],
        }

    def load_json(self, payload: dict) -> None:
        """Fold a persisted sidecar into this model (additive, so a
        table loaded on top of live observations never loses either)."""
        if not isinstance(payload, dict) or payload.get("version") != 1:
            raise ValueError("unrecognized gesture-model payload")
        for entry in payload.get("transitions") or []:
            frm, to, count = entry
            edge = (str(frm), str(to))
            self.transitions[edge] = (self.transitions.get(edge, 0)
                                      + int(count))
        self.observed += int(payload.get("observed", 0))

    # -- prediction --------------------------------------------------------

    def probability(self, last_kind: str | None, kind: str) -> float:
        """Laplace-smoothed ``P(kind | last_kind)``."""
        prior = _PRIORS.get(kind, 0.5)
        prior_mass = sum(_PRIORS.values())
        if last_kind is None:
            return prior / prior_mass
        row = {to: count for (frm, to), count in self.transitions.items()
               if frm == last_kind}
        return (row.get(kind, 0) + prior) / (sum(row.values()) + prior_mass)

    def predict(self, session: str | None) -> list[tuple[float, str, dict]]:
        """Ranked ``(score, kind, candidate request)`` — the session's
        likely next requests, highest probability first."""
        trace = self._sessions.get(session or GLOBAL_SESSION)
        if trace is None or trace.last_req is None:
            return []
        candidates = (self._brush_candidates(trace)
                      + self._viewport_candidates(trace))
        candidates.sort(key=lambda c: -c[0])
        return candidates

    def _candidate(self, trace: _SessionTrace, **overrides) -> dict:
        req = dict(trace.last_req)
        req.update(overrides)
        req["speculative"] = True
        req["sql"] = None
        req["stream"] = False
        req["cache"] = True
        return req

    def _brush_candidates(self, trace: _SessionTrace) -> list:
        query = trace.last_req.get("query")
        if query is None:
            return []
        brush, _residual = split_time_filter(query)
        if brush is None:
            return []
        width = int(brush.end) - int(brush.start)
        if width <= 0:
            return []
        out = []
        for kind, shift in (("brush+1", width), ("brush-1", -width)):
            cand = self._candidate(
                trace, query=shift_brush(query, brush, shift))
            out.append((self.probability(trace.last_kind, kind), kind, cand))
        return out

    def _viewport_candidates(self, trace: _SessionTrace) -> list:
        viewport = trace.last_req.get("viewport")
        if not isinstance(viewport, GridViewport):
            return []
        out = []
        seen = {viewport}
        p_pan = self.probability(trace.last_kind, "pan")
        # Momentum: a pan tends to continue — repeat the last delta.
        if trace.last_kind == "pan" and trace.last_pan != (0, 0):
            momentum = viewport.pan(*trace.last_pan)
            if momentum not in seen:
                seen.add(momentum)
                out.append((p_pan, "pan",
                            self._candidate(trace, viewport=momentum)))
        # Ring: one cache-block shift along each axis — together these
        # four windows cover the one-block ring of neighboring pyramid
        # blocks a pan can expose next (see raster.pyramid.block_ring).
        block = viewport.grid.block
        for dx, dy in ((block, 0), (-block, 0), (0, block), (0, -block)):
            shifted = viewport.pan(dx, dy)
            if shifted in seen:
                continue
            seen.add(shifted)
            out.append((p_pan * _RING_WEIGHT, "pan",
                        self._candidate(trace, viewport=shifted)))
        # Zoom: +/-1 power-of-two level (zoom below level 0 clamps to a
        # no-op viewport, which dedups out).
        for kind, factor in (("zoom-out", 2.0), ("zoom-in", 0.5)):
            zoomed = viewport.zoom(factor)
            if zoomed in seen:
                continue
            seen.add(zoomed)
            out.append((self.probability(trace.last_kind, kind), kind,
                        self._candidate(trace, viewport=zoomed)))
        return out


# -- planning -----------------------------------------------------------------


@dataclass
class WorkItem:
    """One priced warm-up: a concrete request plus where it routes."""

    req: dict
    key: tuple
    kind: str            # gesture kind the prediction extends
    work: str            # "tcube-gather" | "block-scatter" | "query"
    score: float
    predicted_ms: float
    new_blocks: int = 0  # level blocks a viewport candidate would touch
    generation: int = field(default=0, compare=False)


class SpeculationPlanner:
    """Candidates -> budgeted :class:`WorkItem` list.

    Owns the skip/budget policy and its counters; stateless with
    respect to the query stream (that is the model's job).
    """

    def __init__(self, service, budget_ms: float = 250.0,
                 max_candidates: int = 8):
        self.service = service
        self.budget_ms = float(budget_ms)
        self.max_candidates = int(max_candidates)
        self.planned = 0
        self.budget_dropped = 0
        self.skipped_cached = 0
        self.skipped_span = 0
        self.unpriceable = 0

    def plan(self, candidates: list[tuple[float, str, dict]]
             ) -> list[WorkItem]:
        items: list[WorkItem] = []
        spent_ms = 0.0
        for score, kind, req in candidates[: self.max_candidates]:
            item = self._price(score, kind, req)
            if item is None:
                continue
            if spent_ms + item.predicted_ms > self.budget_ms:
                self.budget_dropped += 1
                continue
            spent_ms += item.predicted_ms
            items.append(item)
        self.planned += len(items)
        return items

    def _price(self, score: float, kind: str, req: dict) -> WorkItem | None:
        service = self.service
        try:
            key = service.query_key(req)
        except ReproError:
            return None
        # Route by the fingerprint of the *predicted* query: the warmed
        # cache must live on the worker the real query will hit.
        worker = service.workers.worker_for(key)
        ctx = worker.engine.ctx
        if ctx.cache.peek(key) is not None:
            self.skipped_cached += 1
            return None
        try:
            table, _version = service._resolve_table(req["dataset"])
            regions = service.manager.region_set(req["regions"])
        except ReproError:
            return None
        query = req["query"]
        viewport = req.get("viewport")
        work = "query"
        new_blocks = 0
        if kind.startswith("brush"):
            # Clamp to the time span cached cubes actually cover — a
            # brush at the timeline's edge must not speculate into
            # buckets no data spans.
            span = cached_time_span(ctx, table)
            brush, _residual = split_time_filter(query)
            if span is not None and brush is not None and (
                    int(brush.end) <= span[0] or int(brush.start) >= span[1]):
                self.skipped_span += 1
                return None
            work = "tcube-gather" if self._cube_answers(
                worker, table, regions, query, req) else "query"
        elif isinstance(viewport, GridViewport):
            work = "block-scatter"
            bx0, by0, bx1, by1 = block_span(
                viewport.col0, viewport.row0, viewport.width,
                viewport.height, viewport.grid.block)
            new_blocks = (bx1 - bx0) * (by1 - by0)
        try:
            plan = ExecutionPlan(
                table=table, regions=regions, query=query,
                method=req["method"], resolution=req["resolution"],
                epsilon=req["epsilon"], exact=bool(req["exact"]),
                viewport=viewport)
            predicted_ms = worker.engine.planner.predict_plan_ms(ctx, plan)
        except Exception:  # noqa: BLE001 - pricing is advisory
            # Store-backed and custom paths may not price; assume a
            # quarter budget so unpriceable work is bounded, not free.
            self.unpriceable += 1
            predicted_ms = self.budget_ms / 4.0
        return WorkItem(req=req, key=key, kind=kind, work=work, score=score,
                        predicted_ms=predicted_ms, new_blocks=new_blocks)

    @staticmethod
    def _cube_answers(worker, table, regions, query, req) -> bool:
        try:
            viewport = req.get("viewport")
            if viewport is None:
                viewport = worker.engine.plan_viewport(
                    regions, req["resolution"], req["epsilon"])
            return find_answering_cube(worker.engine.ctx, table, query,
                                       viewport) is not None
        except ReproError:
            return False


# -- execution ----------------------------------------------------------------


class Speculator:
    """The background executor tying model + planner to the service.

    Runs entirely on the service's event loop; items execute one at a
    time (speculation is a strictly-background citizen, one idle slot
    is all it ever holds) and a fresh gesture supersedes whatever was
    still pending — stale predictions are worthless.
    """

    def __init__(self, service, budget_ms: float = 250.0,
                 max_candidates: int = 8, enabled: bool = True):
        self.service = service
        self.model = GestureModel()
        self.planner = SpeculationPlanner(service, budget_ms=budget_ms,
                                          max_candidates=max_candidates)
        self.budget_ms = float(budget_ms)
        self.enabled = bool(enabled)
        self._pending: deque[WorkItem] = deque()
        self._generation = 0
        self._drain_task: asyncio.Task | None = None
        #: Keys currently being built speculatively.
        self._inflight: set[tuple] = set()
        #: In-flight speculative keys a real query has joined (their
        #: completion is already attributed as a hit).
        self._joined: set[tuple] = set()
        #: Completed warm-ups awaiting their real query.
        self._warmed: OrderedDict[tuple, float] = OrderedDict()
        self.issued = 0
        self.completed = 0
        self.hits = 0
        self.errors = 0
        self.skipped_busy = 0
        self.superseded = 0
        self.shed_denied = 0
        self.shed_preempted = 0
        self.shed_cancelled = 0
        self.by_kind: dict[str, int] = {}
        self.by_work: dict[str, int] = {}
        # Wake on idle capacity: the admission controller fires this
        # whenever a slot frees with no real request waiting.
        if self.enabled:
            service.admission.on_idle = self.kick

    # -- real-query side (event-loop thread) -------------------------------

    def note_real_query(self, key: tuple) -> bool:
        """Hit attribution for one real query, called before it runs.

        A hit is a real query that lands on speculatively-warmed state:
        either its key is being built right now (it will join the
        flight) or a completed warm-up for it still sits in the cache.
        """
        if key in self._inflight:
            self._joined.add(key)
            self.hits += 1
            return True
        if key in self._warmed:
            del self._warmed[key]
            worker = self.service.workers.worker_for(key)
            if worker.engine.ctx.cache.peek(key) is not None:
                self.hits += 1
                return True
        return False

    def observe(self, req: dict) -> None:
        """Feed one served request into the model and (re)plan.

        Called after the real query completed, so planning and warm-up
        run during the user's think time.  Never raises: speculation
        failures must not affect the serving path.
        """
        if not self.enabled or req.get("speculative"):
            return
        try:
            self.model.observe(req)
        except Exception:  # noqa: BLE001 - advisory subsystem
            self.errors += 1
            return
        self._generation += 1
        if self._pending:
            # Latest gesture wins: predictions extending an older state
            # are stale the moment a new request arrives.
            self.superseded += len(self._pending)
            self._pending.clear()
        if not self.service.admission.can_speculate():
            # Busy system: learn the transition but don't even price
            # candidates — planning runs on the event loop, and under
            # load every microsecond there is a real request's latency.
            self.skipped_busy += 1
            return
        try:
            items = self.planner.plan(self.model.predict(req.get("session")))
        except Exception:  # noqa: BLE001 - advisory subsystem
            self.errors += 1
            return
        for item in items:
            item.generation = self._generation
            self._pending.append(item)
        self.kick()

    # -- background drain --------------------------------------------------

    def kick(self) -> None:
        """Start (or let continue) the drain task if work is pending."""
        if not self.enabled or not self._pending:
            return
        if self._drain_task is not None and not self._drain_task.done():
            return
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return  # not on the loop (e.g. sync teardown): next kick wins
        self._drain_task = loop.create_task(self._drain())

    async def _drain(self) -> None:
        try:
            while self.enabled and self._pending:
                if not self.service.admission.can_speculate():
                    # No idle capacity: leave the queue; the admission
                    # on_idle callback re-kicks when a slot frees.
                    return
                item = self._pending.popleft()
                if item.generation != self._generation:
                    self.superseded += 1
                    continue
                task = asyncio.get_running_loop().create_task(
                    self._run_item(item))
                # wait(), not await: preemption cancels the item task,
                # and that cancellation must not tear down the drain.
                try:
                    await asyncio.wait({task})
                except asyncio.CancelledError:
                    # The drain itself was cancelled (shutdown): the
                    # in-flight item must not outlive the loop.
                    task.cancel()
                    raise
                if task.cancelled():
                    self.shed_preempted += 1
                elif task.exception() is not None:
                    self.errors += 1
        finally:
            self._drain_task = None

    async def _run_item(self, item: WorkItem) -> None:
        service = self.service
        worker = service.workers.worker_for(item.key)
        me = asyncio.current_task()
        loop = asyncio.get_running_loop()
        self.issued += 1
        self.by_kind[item.kind] = self.by_kind.get(item.kind, 0) + 1
        self.by_work[item.work] = self.by_work.get(item.work, 0) + 1
        worker.spec_queries += 1
        self._inflight.add(item.key)

        async def start(cancel):
            try:
                # Preemption cancels *this participant's* task; the
                # single-flight refcount then decides whether the build
                # dies (no joiners) or keeps running for a real joiner.
                async with service.admission.speculative_slot(me.cancel):
                    return await loop.run_in_executor(
                        worker.executor, service._run, item.req, item.key,
                        cancel, worker.engine, True)
            except OverloadedError:
                return SPECULATION_DENIED

        try:
            result = await worker.flight.run(item.key, start)
            if result is SPECULATION_DENIED:
                self.shed_denied += 1
                return
            self.completed += 1
            if item.key not in self._joined:
                self._warmed[item.key] = time.monotonic()
                while len(self._warmed) > _MAX_WARMED:
                    self._warmed.popitem(last=False)
        except asyncio.CancelledError:
            raise  # preemption: the drain loop does the accounting
        except QueryCancelled:
            self.shed_cancelled += 1
        except OverloadedError:
            self.shed_denied += 1
        except Exception:  # noqa: BLE001 - advisory subsystem
            self.errors += 1
        finally:
            self._inflight.discard(item.key)
            self._joined.discard(item.key)

    # -- persistence -------------------------------------------------------

    def load_model(self, model_dir) -> bool:
        """Reload a persisted transition table; returns whether one
        loaded.  Missing and malformed sidecars both warm-start from
        scratch — persistence must never block serving."""
        path = Path(model_dir) / MODEL_FILENAME
        try:
            payload = json.loads(path.read_text())
            self.model.load_json(payload)
        except FileNotFoundError:
            return False
        except (OSError, TypeError, ValueError) as exc:
            log.warning("ignoring unreadable gesture model %s: %s",
                        path, exc)
            return False
        log.info("loaded gesture model from %s (%d observations)",
                 path, self.model.observed)
        return True

    def save_model(self, model_dir) -> bool:
        """Persist the transition table (atomic tmp + rename); returns
        whether the write landed."""
        directory = Path(model_dir)
        path = directory / MODEL_FILENAME
        try:
            directory.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(path.name + ".tmp")
            tmp.write_text(json.dumps(self.model.to_json(), indent=2)
                           + "\n")
            tmp.replace(path)
        except OSError as exc:
            log.warning("could not persist gesture model to %s: %s",
                        path, exc)
            return False
        return True

    # -- lifecycle / introspection -----------------------------------------

    def close(self) -> None:
        self.enabled = False
        self._pending.clear()
        if self.service.admission.on_idle is self.kick:
            self.service.admission.on_idle = None
        task = self._drain_task
        if task is not None and not task.done():
            try:
                task.cancel()
            except RuntimeError:
                pass  # foreign/closed loop: the loop's teardown wins

    def stats(self) -> dict:
        shed = {
            "denied": self.shed_denied,
            "preempted": self.shed_preempted,
            "cancelled": self.shed_cancelled,
            "superseded": self.superseded,
        }
        return {
            "enabled": self.enabled,
            "budget_ms": self.budget_ms,
            "observed": self.model.observed,
            "planned": self.planner.planned,
            "issued": self.issued,
            "completed": self.completed,
            "hits": self.hits,
            "shed": sum(shed.values()),
            "shed_detail": shed,
            "errors": self.errors,
            "skipped_busy": self.skipped_busy,
            "pending": len(self._pending),
            "inflight": len(self._inflight),
            "warmed": len(self._warmed),
            "skipped_cached": self.planner.skipped_cached,
            "skipped_span": self.planner.skipped_span,
            "budget_dropped": self.planner.budget_dropped,
            "unpriceable": self.planner.unpriceable,
            "by_kind": dict(self.by_kind),
            "by_work": dict(self.by_work),
        }
