"""Lazy dataset mounting for the query service.

A server rarely wants every data set resident: a ``datasets.json``
manifest declares what *can* be served, and out-of-core stores listed
there are registered lazily — the directory is opened on the first
query that names it, and its partitions are mmapped under an LRU
memory budget (see :mod:`repro.store`).  In-memory tables and region
sets are loaded eagerly since queries need them whole anyway.

Manifest schema::

    {
      "stores":  [{"name": "taxi", "path": "stores/taxi",
                   "memory_budget_mb": 256}],
      "tables":  [{"name": "small", "path": "small.npz"}],
      "regions": [{"name": "nbhd", "path": "nbhd.geojson"}]
    }

Relative paths resolve against the manifest's own directory; every
section is optional.  ``memory_budget_mb`` is per-store and optional
(unbudgeted stores keep all touched partitions mapped).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import SchemaError
from ..geometry import read_geojson
from ..table import load_csv, load_npz


def _load_regions(path: Path, name: str):
    from ..core import RegionSet

    geometries, props = read_geojson(path)
    names = [p.get("name", f"region-{i}") for i, p in enumerate(props)]
    return RegionSet(name, geometries, names)


def _load_table(path: Path):
    if path.suffix == ".csv":
        return load_csv(path)
    return load_npz(path)


def mount_datasets(manager, manifest_path) -> list[str]:
    """Register a ``datasets.json`` manifest on a
    :class:`~repro.urbane.DataManager`.

    Returns one human-readable line per entry registered (the serve CLI
    prints them).  Stores are *not* opened here — only named.
    """
    manifest_path = Path(manifest_path)
    try:
        spec = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SchemaError(f"cannot read datasets manifest "
                          f"{manifest_path}: {exc}") from None
    if not isinstance(spec, dict):
        raise SchemaError("datasets manifest must be a JSON object")
    base = manifest_path.parent
    lines: list[str] = []

    for entry in spec.get("stores", ()):
        path = base / entry["path"]
        budget_mb = entry.get("memory_budget_mb")
        budget = None if budget_mb is None else int(budget_mb * 1024 * 1024)
        name = manager.add_store(path, name=entry.get("name"),
                                 memory_budget_bytes=budget)
        budget_note = (f", budget {budget_mb} MiB"
                       if budget_mb is not None else "")
        lines.append(f"store {name!r}: lazy mount of {path}{budget_note}")

    for entry in spec.get("tables", ()):
        path = base / entry["path"]
        table = _load_table(path)
        name = manager.add_dataset(table, entry.get("name"))
        lines.append(f"dataset {name!r}: {len(table):,} rows from {path}")

    for entry in spec.get("regions", ()):
        path = base / entry["path"]
        name = entry.get("name") or path.stem
        regions = _load_regions(path, name)
        manager.add_region_set(regions, name)
        lines.append(f"regions {name!r}: {len(regions)} regions "
                     f"from {path}")
    return lines
