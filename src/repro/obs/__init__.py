"""Observability: hierarchical query tracing + process-wide metrics.

Two halves, both zero-dependency:

* :mod:`repro.obs.trace` — a context-var-based tracer producing
  hierarchical spans with wall + CPU time and key-value attributes.
  Disabled tracing costs one module-global bool check per
  instrumentation point (the ``span()`` fast path returns a shared
  no-op singleton), so the hot paths stay hot.
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and fixed-bucket latency histograms, fed per served response
  from the existing ``stats`` counters and exported as JSON or
  Prometheus text by ``GET /v1/metrics``.

:mod:`repro.obs.slowlog` ties the two together: a threshold-gated log
of rendered span trees for queries that blew their budget.
"""

from .metrics import (
    REGISTRY,
    MetricsRegistry,
    record_query_stats,
    sample_service_stats,
)
from .slowlog import SlowQueryLog
from .trace import (
    NULL_SPAN,
    Span,
    Tracer,
    activate,
    current_span,
    disable,
    enable,
    enabled,
    graft,
    render,
    span,
)

__all__ = [
    "NULL_SPAN",
    "REGISTRY",
    "MetricsRegistry",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "activate",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "graft",
    "record_query_stats",
    "render",
    "sample_service_stats",
    "span",
]
