"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

The subsystems already count everything (`stats["cache"]`,
``stats["store"]``, the admission/coalesce/speculate funnels) — what
was missing is one place those counters accumulate across queries and
one endpoint that exports them.  The registry here is that place:

* **Counters** accumulate once per *served response* via
  :func:`record_query_stats` — so registry totals reconcile exactly
  with the sum of the per-query ``stats`` payloads clients received
  (coalesced joiners each get a response, so each records; that is the
  reconciliation contract, not a double count).
* **Gauges** are sampled at scrape time by :func:`sample_service_stats`
  from ``QueryService.stats()`` — funnel states, cache occupancy,
  per-worker pool breakouts.
* **Histograms** use fixed millisecond buckets (no quantile sketches —
  zero-dependency and mergeable), exported in both JSON and Prometheus
  text exposition by ``GET /v1/metrics``.

Everything is threadsafe: responses finish on the event loop, scrapes
arrive on handler tasks, and tests poke from anywhere.
"""

from __future__ import annotations

import threading

#: Latency buckets in milliseconds.  Fixed so histograms merge across
#: processes and restarts; the +Inf bucket is implicit.
DEFAULT_BUCKETS_MS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)


class Counter:
    """Monotonic accumulator."""

    __slots__ = ("value", "_lock")

    def __init__(self):
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-write-wins sample."""

    __slots__ = ("value", "_lock")

    def __init__(self):
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Histogram:
    """Fixed-bucket latency histogram (observations in milliseconds).

    ``counts[i]`` is the number of observations ``<= buckets_ms[i]``
    *non*-cumulative; the final slot is the +Inf overflow.  Prometheus
    rendering cumulates on the way out.
    """

    __slots__ = ("buckets_ms", "counts", "sum_ms", "count", "_lock")

    def __init__(self, buckets_ms=DEFAULT_BUCKETS_MS):
        self.buckets_ms = tuple(float(b) for b in buckets_ms)
        if list(self.buckets_ms) != sorted(self.buckets_ms):
            raise ValueError("buckets must be sorted ascending")
        self.counts = [0] * (len(self.buckets_ms) + 1)
        self.sum_ms = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value_ms: float) -> None:
        index = len(self.buckets_ms)
        for i, bound in enumerate(self.buckets_ms):
            if value_ms <= bound:
                index = i
                break
        with self._lock:
            self.counts[index] += 1
            self.sum_ms += value_ms
            self.count += 1


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Get-or-create store of named, labeled metrics.

    Metrics are keyed by ``(name, sorted label items)``; asking for the
    same pair twice returns the same object, so call sites never hold
    references across the registry's lifetime.  :meth:`reset` exists
    for tests — production registries only ever grow.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter()
            return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge()
            return metric

    def histogram(self, name: str, buckets_ms=DEFAULT_BUCKETS_MS,
                  **labels) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(buckets_ms)
            return metric

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """The JSON body of ``GET /v1/metrics``."""
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        return {
            "counters": [
                {"name": name, "labels": dict(labels), "value": m.value}
                for (name, labels), m in sorted(counters,
                                                key=lambda kv: kv[0])],
            "gauges": [
                {"name": name, "labels": dict(labels), "value": m.value}
                for (name, labels), m in sorted(gauges,
                                                key=lambda kv: kv[0])],
            "histograms": [
                {"name": name, "labels": dict(labels),
                 "buckets_ms": list(m.buckets_ms),
                 "counts": list(m.counts),
                 "sum_ms": m.sum_ms, "count": m.count}
                for (name, labels), m in sorted(histograms,
                                                key=lambda kv: kv[0])],
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        snap = self.snapshot()
        typed: set[str] = set()

        def fmt_labels(labels: dict, extra: dict | None = None) -> str:
            merged = dict(labels)
            if extra:
                merged.update(extra)
            if not merged:
                return ""
            body = ",".join(f'{k}="{v}"' for k, v in sorted(merged.items()))
            return "{" + body + "}"

        def head(name: str, kind: str) -> None:
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} {kind}")

        for entry in snap["counters"]:
            head(entry["name"], "counter")
            lines.append(f"{entry['name']}{fmt_labels(entry['labels'])}"
                         f" {entry['value']:g}")
        for entry in snap["gauges"]:
            head(entry["name"], "gauge")
            lines.append(f"{entry['name']}{fmt_labels(entry['labels'])}"
                         f" {entry['value']:g}")
        for entry in snap["histograms"]:
            name = entry["name"]
            head(name, "histogram")
            running = 0
            for bound, count in zip(entry["buckets_ms"], entry["counts"]):
                running += count
                lines.append(
                    f"{name}_bucket"
                    f"{fmt_labels(entry['labels'], {'le': f'{bound:g}'})}"
                    f" {running}")
            lines.append(
                f"{name}_bucket"
                f"{fmt_labels(entry['labels'], {'le': '+Inf'})}"
                f" {entry['count']}")
            lines.append(f"{name}_sum{fmt_labels(entry['labels'])}"
                         f" {entry['sum_ms']:g}")
            lines.append(f"{name}_count{fmt_labels(entry['labels'])}"
                         f" {entry['count']}")
        return "\n".join(lines) + "\n"


#: The process-wide registry every instrumentation point feeds.
REGISTRY = MetricsRegistry()


# -- bridges from the existing stats payloads ---------------------------------


def record_query_stats(stats: dict, wall_s: float,
                       registry: MetricsRegistry = REGISTRY) -> None:
    """Accumulate one served response's ``stats`` into the registry.

    Called exactly once per response the service hands back, so every
    counter here reconciles with the sum of the corresponding per-query
    ``stats`` fields across all responses — the invariant the endpoint
    smoke test asserts.
    """
    plan = stats.get("plan") or {}
    decision = plan.get("decision") or {}
    method = str(decision.get("chosen") or "unknown")
    registry.counter("repro_queries_total", method=method).inc()
    registry.histogram("repro_query_latency_ms").observe(wall_s * 1000.0)

    degraded = plan.get("degraded")
    if degraded and degraded.get("applied"):
        registry.counter("repro_degraded_total").inc()

    cache = stats.get("cache") or {}
    registry.counter("repro_cache_query_hits_total").inc(
        cache.get("query_hits", 0))
    registry.counter("repro_cache_query_misses_total").inc(
        cache.get("query_misses", 0))
    blocks = cache.get("blocks") or {}
    for field in ("hits", "derived", "misses"):
        registry.counter(f"repro_block_{field}_total").inc(
            blocks.get(field, 0))

    store = stats.get("store") or {}
    partitions = store.get("partitions") or {}
    registry.counter("repro_store_partitions_scanned_total").inc(
        partitions.get("scanned", 0))
    registry.counter("repro_store_partitions_pruned_total").inc(
        partitions.get("pruned", 0))
    rows = store.get("rows") or {}
    registry.counter("repro_store_rows_scanned_total").inc(
        rows.get("scanned", 0))

    tcube = stats.get("tcube") or {}
    registry.counter("repro_tcube_slices_touched_total").inc(
        tcube.get("slices_touched", 0))

    speculate = stats.get("speculate") or {}
    if speculate.get("hit"):
        registry.counter("repro_speculate_hits_total").inc()


def sample_service_stats(stats: dict,
                         registry: MetricsRegistry = REGISTRY) -> None:
    """Refresh gauges from one ``QueryService.stats()`` payload.

    Called at scrape time (the ``/v1/metrics`` handler), so gauges are
    always current without a background sampler thread.  Numeric leaves
    flatten into underscore-joined gauge names; per-worker breakouts
    keep their identity as a ``worker`` label.
    """
    def set_flat(prefix: str, payload: dict, **labels) -> None:
        for key, value in payload.items():
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                registry.gauge(f"{prefix}_{key}", **labels).set(value)
            elif isinstance(value, dict):
                set_flat(f"{prefix}_{key}", value, **labels)

    for field in ("queries", "stream_queries", "errors"):
        registry.gauge(f"repro_service_{field}").set(stats.get(field, 0))
    set_flat("repro_admission", stats.get("admission") or {})
    set_flat("repro_coalesce", stats.get("coalesce") or {})
    cache = dict(stats.get("cache") or {})
    cache.pop("blocks", None)
    set_flat("repro_cache", cache)
    set_flat("repro_pyramid", stats.get("pyramid") or {})
    set_flat("repro_speculate", stats.get("speculate") or {})
    pool = stats.get("pool") or {}
    registry.gauge("repro_pool_shards").set(pool.get("shards", 0))
    for worker in pool.get("workers") or []:
        payload = {k: v for k, v in worker.items() if k != "name"}
        set_flat("repro_worker", payload,
                 worker=str(worker.get("name", "?")))
