"""Hierarchical query tracing: where did this 80 ms go?

A trace is a tree of :class:`Span` objects.  Instrumented code calls
:func:`span` at stage boundaries (``plan``, ``store.scan``,
``shard.scatter``, ...); each span records wall time, thread CPU time
and key-value attributes, and nests under whatever span is active in
the current :mod:`contextvars` context.  The serve layer opens one
root span per traced request and the whole tree comes back under one
``request_id`` (ring-buffered, served by ``GET /v1/trace/<id>``).

**The disabled fast path is the design center.**  Tracing is off until
something asks for it (a ``--trace`` query, a server with a slow-query
threshold).  While off, :func:`span` is one module-global bool check
returning the shared :data:`NULL_SPAN` singleton — no allocation, no
contextvar read — so instrumentation in the engine's hot paths costs
<2% even when sprinkled across every layer.  Even while *on*, spans
only record inside an active trace: a span with no parent in the
current context is also the null span, so concurrent untraced requests
pay one bool + one contextvar read.

**Crossing threads.**  ``loop.run_in_executor`` does not propagate
contextvars, so the serve layer carries the root span to the worker
thread explicitly and re-activates it there with :func:`activate`.

**Crossing processes.**  Forked shard workers inherit the enabled
flag and the active span *by memory copy* — their appends land in the
child's copy and would be lost.  Each shard therefore serializes its
own subtree (:meth:`Span.to_dict`) into the merge payload it already
returns, and the coordinator :func:`graft`\\ s the deserialized tree
under its live span.  In the no-fork fallback the shard code runs in
the parent's context and its spans attach directly (no graft needed).
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import threading
import time
from collections import OrderedDict

#: Module-global master switch.  One bool load is the entire cost of a
#: ``span()`` call while tracing is disabled.
_enabled = False

_current: contextvars.ContextVar = contextvars.ContextVar(
    "repro_obs_current_span", default=None)


def enabled() -> bool:
    """Whether tracing may record anything at all."""
    return _enabled


def enable() -> None:
    """Turn tracing on (sticky for the process; cheap to call again)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn tracing off (tests and the overhead benchmark)."""
    global _enabled
    _enabled = False


class _NullSpan:
    """Shared no-op span: the return value of :func:`span` whenever
    nothing should be recorded.  Every method is a no-op so call sites
    never branch on whether tracing is live."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        return False

    def set(self, **_attrs):
        return self

    def to_dict(self):
        return None


NULL_SPAN = _NullSpan()


class Span:
    """One timed node of a trace tree.

    Entering the span starts its clocks and makes it the current
    context span; exiting stops the clocks and restores the parent.
    ``cpu_s`` is *thread* CPU time — spans time the thread they run on,
    which is exactly what "was this wall time compute or waiting?"
    needs.
    """

    __slots__ = ("name", "attrs", "children", "wall_s", "cpu_s",
                 "_t0", "_cpu0", "_token")

    def __init__(self, name: str, attrs: dict | None = None):
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.children: list[Span] = []
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._t0 = None
        self._cpu0 = None
        self._token = None

    def __enter__(self) -> "Span":
        self._token = _current.set(self)
        self._t0 = time.perf_counter()
        self._cpu0 = time.thread_time()
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        self.cpu_s = time.thread_time() - self._cpu0
        self.wall_s = time.perf_counter() - self._t0
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        if self._token is not None:
            _current.reset(self._token)
            self._token = None
        return False

    def set(self, **attrs) -> "Span":
        """Attach key-value attributes; chainable, no-op on NULL_SPAN."""
        self.attrs.update(attrs)
        return self

    # -- serialization (cross-process grafting, the trace endpoint) --------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        s = cls(str(payload.get("name", "?")), payload.get("attrs") or {})
        s.wall_s = float(payload.get("wall_s", 0.0))
        s.cpu_s = float(payload.get("cpu_s", 0.0))
        s.children = [cls.from_dict(c)
                      for c in payload.get("children") or []]
        return s


def span(name: str, **attrs):
    """A child span of the currently active span, or :data:`NULL_SPAN`.

    The instrumentation entry point: ``with span("store.scan") as s:``.
    Returns the null singleton when tracing is disabled *or* no trace
    is active in this context — both checks are O(1), keeping
    instrumented hot paths within the <2% overhead budget.  Prefer
    ``s.set(key=value)`` over keyword attrs for values that are costly
    to compute: keyword arguments are evaluated even on the fast path.
    """
    if not _enabled:
        return NULL_SPAN
    parent = _current.get()
    if parent is None:
        return NULL_SPAN
    child = Span(name, attrs)
    parent.children.append(child)
    return child


def current_span():
    """The active span in this context, or ``None``."""
    return _current.get()


@contextlib.contextmanager
def activate(root):
    """Make ``root`` the current span for the block *without* timing it.

    The cross-thread handoff: the serve layer enters the root span on
    the event loop (so its wall time covers the whole request) and the
    worker thread re-activates it here so engine spans nest under it.
    ``activate(None)`` is a no-op block.
    """
    if root is None or root is NULL_SPAN:
        yield None
        return
    token = _current.set(root)
    try:
        yield root
    finally:
        _current.reset(token)


def graft(payload: dict | None) -> None:
    """Attach a serialized child-process subtree under the live span.

    Called by the shard coordinator with the span dict a forked worker
    returned in its merge payload.  No-op when tracing is off, no trace
    is active, or the payload is empty — the coordinator never has to
    branch.
    """
    if not _enabled or not payload:
        return
    parent = _current.get()
    if parent is None:
        return
    parent.children.append(Span.from_dict(payload))


# -- retention ----------------------------------------------------------------


class Tracer:
    """Root-span factory + bounded ring buffer of finished traces.

    The serve layer owns one: it mints request ids, starts root spans
    (flipping the global enable switch on first use), and retains the
    last ``retain`` finished trees for ``GET /v1/trace/<request_id>``.
    Thread-safe — traces finish on the event loop thread but are read
    from request handlers and tests.
    """

    def __init__(self, retain: int = 64):
        if retain < 1:
            raise ValueError("retain must be positive")
        self.retain = int(retain)
        self._ring: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self.started = 0
        self.retained = 0

    def new_request_id(self) -> str:
        return f"q{next(self._seq):08x}"

    def start(self, name: str, **attrs) -> Span:
        """A new root span (not yet entered); enables tracing."""
        enable()
        self.started += 1
        return Span(name, attrs)

    def keep(self, request_id: str, root: Span | dict) -> dict:
        """Retain one finished trace; returns the stored payload."""
        payload = root if isinstance(root, dict) else root.to_dict()
        with self._lock:
            self._ring[request_id] = payload
            self._ring.move_to_end(request_id)
            while len(self._ring) > self.retain:
                self._ring.popitem(last=False)
            self.retained += 1
        return payload

    def get(self, request_id: str) -> dict | None:
        with self._lock:
            return self._ring.get(request_id)

    def ids(self) -> list[str]:
        """Retained request ids, oldest first."""
        with self._lock:
            return list(self._ring)

    def stats(self) -> dict:
        with self._lock:
            return {"enabled": _enabled, "retain": self.retain,
                    "started": self.started, "retained": self.retained,
                    "held": len(self._ring)}


# -- rendering ----------------------------------------------------------------


def _fmt_attrs(attrs: dict) -> str:
    if not attrs:
        return ""
    parts = []
    for key, value in attrs.items():
        if isinstance(value, float):
            value = f"{value:.4g}"
        parts.append(f"{key}={value}")
    return "  [" + " ".join(parts) + "]"


def render(root: Span | dict, max_depth: int = 12) -> str:
    """An ASCII tree of one span tree — the slow-query-log / ``query
    --trace`` view.  Accepts a live :class:`Span` or its dict form."""
    payload = root if isinstance(root, dict) else root.to_dict()
    lines: list[str] = []

    def walk(node: dict, depth: int) -> None:
        indent = "  " * depth
        name = str(node.get("name", "?"))
        wall = float(node.get("wall_s", 0.0)) * 1000.0
        cpu = float(node.get("cpu_s", 0.0)) * 1000.0
        label = f"{indent}{name}"
        lines.append(f"{label:<44} {wall:>9.2f}ms  cpu {cpu:>8.2f}ms"
                     f"{_fmt_attrs(node.get('attrs') or {})}")
        if depth >= max_depth:
            return
        for child in node.get("children") or []:
            walk(child, depth + 1)

    walk(payload, 0)
    return "\n".join(lines)


def leaf_coverage(root: Span | dict) -> float:
    """Fraction of the root's wall time covered by instrumented spans.

    Recursively: a leaf covers its own wall time; an inner span covers
    the sum of its children's coverage *capped at its own wall time*
    (grafted shard subtrees run in parallel, so their sum may exceed
    the parent's wall — the cap keeps coverage honest).  The
    acceptance gate for instrumentation completeness.
    """
    payload = root if isinstance(root, dict) else root.to_dict()

    def covered(node: dict) -> float:
        wall = float(node.get("wall_s", 0.0))
        children = node.get("children") or []
        if not children:
            return wall
        return min(wall, sum(covered(c) for c in children))

    wall = float(payload.get("wall_s", 0.0))
    return covered(payload) / wall if wall > 0 else 0.0
