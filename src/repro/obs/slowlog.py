"""The slow-query log: span trees for queries that blew their budget.

Wiring tracing to a threshold turns it from a debugging tool into a
standing safety net: with ``serve --slow-query-ms 200`` every request
is traced (the spans are cheap once a trace is active), but only the
ones that finish over the threshold are kept — rendered to the server
log and retained for ``GET /v1/slow``.  The ring is bounded, so a
pathological workload can't grow the log without bound.
"""

from __future__ import annotations

import logging
import threading
from collections import deque

from .trace import render

log = logging.getLogger("repro.slowlog")


class SlowQueryLog:
    """Threshold-gated ring of slow-query trace dumps."""

    def __init__(self, threshold_ms: float | None = None,
                 capacity: int = 32):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.threshold_ms = (None if threshold_ms is None
                             else float(threshold_ms))
        self._ring: deque = deque(maxlen=int(capacity))
        self._lock = threading.Lock()
        self.noted = 0

    @property
    def enabled(self) -> bool:
        return self.threshold_ms is not None

    def note(self, request_id: str, wall_ms: float, root: dict,
             summary: dict | None = None) -> bool:
        """Record one finished trace if it crossed the threshold.

        ``root`` is the span tree in dict form (already detached from
        the live trace), ``summary`` whatever small context the caller
        wants alongside (dataset, method, shed/degraded flags).
        Returns whether the query was logged.
        """
        if self.threshold_ms is None or wall_ms < self.threshold_ms:
            return False
        entry = {
            "request_id": request_id,
            "wall_ms": float(wall_ms),
            "threshold_ms": self.threshold_ms,
            "summary": dict(summary) if summary else {},
            "trace": root,
        }
        with self._lock:
            self._ring.append(entry)
            self.noted += 1
        log.warning("slow query %s: %.1fms (threshold %.1fms)\n%s",
                    request_id, wall_ms, self.threshold_ms, render(root))
        return True

    def entries(self) -> list[dict]:
        """Retained slow queries, oldest first — the ``/v1/slow`` body."""
        with self._lock:
            return list(self._ring)

    def stats(self) -> dict:
        with self._lock:
            return {"enabled": self.enabled,
                    "threshold_ms": self.threshold_ms,
                    "noted": self.noted, "held": len(self._ring)}
