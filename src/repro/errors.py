"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the common failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GeometryError(ReproError):
    """Invalid geometric input (degenerate polygon, empty ring, ...)."""


class SchemaError(ReproError):
    """A column or attribute referenced by a query does not exist or has
    an incompatible dtype."""


class QueryError(ReproError):
    """Malformed query: unknown aggregate, bad filter expression, ..."""


class ExecutionError(ReproError):
    """A query failed during execution (backend cannot satisfy it)."""


class CubeError(ExecutionError):
    """A pre-aggregation cube cannot answer the requested query (ad-hoc
    polygon or filter combination that was not materialized)."""


class QueryCancelled(ExecutionError):
    """The query's cancellation token was set (client disconnected or
    the caller gave up) before or during execution."""


class ServeError(ReproError):
    """Base class for errors raised by the concurrent query service."""


class OverloadedError(ServeError):
    """The serving layer shed this request (admission queue full or the
    queue wait exceeded the request deadline).

    Carries ``retry_after_ms`` — the client-visible backoff hint that
    becomes the structured ``retry_after`` field of the error payload
    (and the HTTP ``Retry-After`` header).
    """

    def __init__(self, message: str, retry_after_ms: float = 250.0):
        super().__init__(message)
        self.retry_after_ms = float(retry_after_ms)


class ProtocolError(ServeError):
    """A malformed or version-incompatible request/response payload."""


class DataGenerationError(ReproError):
    """Invalid parameters passed to a synthetic data generator."""
