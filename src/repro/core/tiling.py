"""Tiled execution for canvases beyond the maximum texture size.

GPUs cap render-target sizes (the paper tiles its canvas when a small
error bound demands more pixels than one texture holds); the software
pipeline has an analogous memory cap.  :func:`tiled_bounded_raster_join`
splits the global pixel grid into tiles, runs the render passes per
tile, and merges the per-region partials — pixels belong to exactly one
tile, so additive partials merge by summation and min/max by
combination, and the numeric error bounds remain hard.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import QueryError
from ..geometry import BBox
from ..raster import Viewport, build_fragment_table, gather_reduce, gather_sum
from ..table import PointTable
from .aggregates import BOUNDABLE_AGGREGATES, COUNT, PartialAggregate
from .bounded import blend_canvases
from .parallel import ParallelConfig, _even_ranges, _fork_map
from .query import SpatialAggregation
from .regions import RegionSet
from .result import AggregationResult


def make_tiles(viewport: Viewport, tile_pixels: int
               ) -> list[tuple[Viewport, int, int]]:
    """Split a global viewport into aligned tiles.

    Returns (tile viewport, col0, row0) triples; tile world windows are
    derived from exact pixel ranges so the union of tiles reproduces the
    global pixel grid bit-for-bit.
    """
    if tile_pixels < 1:
        raise QueryError("tile_pixels must be >= 1")
    tiles = []
    pw = viewport.pixel_width
    ph = viewport.pixel_height
    for row0 in range(0, viewport.height, tile_pixels):
        rows = min(tile_pixels, viewport.height - row0)
        for col0 in range(0, viewport.width, tile_pixels):
            cols = min(tile_pixels, viewport.width - col0)
            bbox = BBox(
                viewport.bbox.xmin + col0 * pw,
                viewport.bbox.ymin + row0 * ph,
                viewport.bbox.xmin + (col0 + cols) * pw,
                viewport.bbox.ymin + (row0 + rows) * ph,
            )
            tiles.append((Viewport(bbox, cols, rows), col0, row0))
    return tiles


def _accumulate_covered(part: PartialAggregate, fragments, canvases,
                        agg: str) -> None:
    """Fold one tile's covered-pixel join into the global partial."""
    n = fragments.num_polygons
    pix = fragments.covered_pixels
    polys = fragments.covered_polys
    if part.counts is not None:
        part.counts += gather_sum(canvases["count"], pix, polys, n)
    if part.sums is not None:
        part.sums += gather_sum(canvases["sum"], pix, polys, n)
    if part.mins is not None:
        np.minimum(part.mins,
                   gather_reduce(canvases["min"], pix, polys, n,
                                 np.minimum, np.inf), out=part.mins)
    if part.maxs is not None:
        np.maximum(part.maxs,
                   gather_reduce(canvases["max"], pix, polys, n,
                                 np.maximum, -np.inf), out=part.maxs)


def tiled_bounded_raster_join(
    table: PointTable,
    regions: RegionSet,
    query: SpatialAggregation,
    resolution: int,
    tile_pixels: int = 1024,
    config: ParallelConfig | None = None,
) -> AggregationResult:
    """Bounded raster join over a virtual canvas of arbitrary size.

    With a :class:`ParallelConfig`, contiguous tile ranges run in worker
    processes; tiles partition the pixel grid, so per-range partials and
    boundary masses merge by plain addition (min/max by combination)
    and results match the serial order exactly for COUNT.
    """
    t_start = time.perf_counter()
    viewport = Viewport.fit(regions.bbox, resolution)
    tiles = make_tiles(viewport, tile_pixels)

    # One global point pass: filter, project to global pixel coords,
    # then route points to tiles by integer division.
    mask = query.filter_mask(table)
    values = query.values_for(table)
    x = table.x[mask]
    y = table.y[mask]
    if values is not None:
        values = values[mask]
    ix, iy = viewport.pixel_of(x, y)
    valid = ((ix >= 0) & (ix < viewport.width)
             & (iy >= 0) & (iy < viewport.height))
    ix = ix[valid]
    iy = iy[valid]
    if values is not None:
        values = values[valid]

    tiles_per_row = -(-viewport.width // tile_pixels)  # ceil div
    tile_of_point = ((iy // tile_pixels) * tiles_per_row
                     + (ix // tile_pixels))
    order = np.argsort(tile_of_point, kind="stable")
    tile_sorted = tile_of_point[order]
    tile_offsets = np.searchsorted(
        tile_sorted, np.arange(len(tiles) + 1), side="left")

    geometries = list(regions.geometries)
    geom_boxes = [g.bbox for g in geometries]

    def run_tile(tile_idx: int, part: PartialAggregate,
                 mass_in: np.ndarray, mass_out: np.ndarray) -> None:
        tile_vp, col0, row0 = tiles[tile_idx]
        # Regions overlapping this tile (ids must be preserved).
        local_ids = [gid for gid, gb in enumerate(geom_boxes)
                     if gb.intersects(tile_vp.bbox)]
        sel = order[tile_offsets[tile_idx]:tile_offsets[tile_idx + 1]]
        if not local_ids and len(sel) == 0:
            return

        local_pix = ((iy[sel] - row0) * tile_vp.width + (ix[sel] - col0))
        local_vals = values[sel] if values is not None else None
        canvases = blend_canvases(local_pix, local_vals, query.agg,
                                  tile_vp.num_pixels)

        if not local_ids:
            return
        local_fragments = build_fragment_table(
            [geometries[gid] for gid in local_ids], tile_vp)
        # Remap the local polygon ids back to global region ids.
        remap = np.asarray(local_ids, dtype=np.int64)

        # Accumulate through a local partial, then scatter to global ids.
        local_part = PartialAggregate.empty(query.agg, len(local_ids))
        _accumulate_covered(local_part, local_fragments, canvases, query.agg)
        if part.counts is not None:
            part.counts[remap] += local_part.counts
        if part.sums is not None:
            part.sums[remap] += local_part.sums
        if part.mins is not None:
            np.minimum.at(part.mins, remap, local_part.mins)
        if part.maxs is not None:
            np.maximum.at(part.maxs, remap, local_part.maxs)

        if query.agg in BOUNDABLE_AGGREGATES:
            if query.agg == COUNT:
                mass = canvases["count"]
            else:
                from ..raster import scatter_sum

                mass = scatter_sum(local_pix, np.abs(local_vals),
                                   tile_vp.num_pixels)
            m_in = gather_sum(mass, local_fragments.covered_boundary_pixels,
                              local_fragments.covered_boundary_polys,
                              len(local_ids))
            m_all = gather_sum(mass, local_fragments.boundary_pixels,
                               local_fragments.boundary_polys,
                               len(local_ids))
            mass_in[remap] += m_in
            mass_out[remap] += m_all - m_in

    def range_task(tlo: int, thi: int):
        local = PartialAggregate.empty(query.agg, len(regions))
        m_in = np.zeros(len(regions))
        m_out = np.zeros(len(regions))
        for tile_idx in range(tlo, thi):
            run_tile(tile_idx, local, m_in, m_out)
        return local, m_in, m_out

    workers = config.resolve_workers() if config is not None else 1
    ranges = _even_ranges(len(tiles), min(workers, len(tiles)))
    results, pooled = _fork_map(range_task, ranges, workers)

    part, mass_in, mass_out = results[0]
    for other, m_in, m_out in results[1:]:
        part.merge(other)
        mass_in += m_in
        mass_out += m_out

    estimate = part.finalize()
    lower = upper = None
    if query.agg in BOUNDABLE_AGGREGATES:
        lower = estimate - mass_in
        upper = estimate + mass_out

    return AggregationResult(
        regions=regions,
        values=estimate,
        method="tiled-bounded-raster-join",
        lower=lower,
        upper=upper,
        exact=False,
        stats={
            "tiles": len(tiles),
            "resolution": resolution,
            "tile_pixels": tile_pixels,
            "time_total_s": time.perf_counter() - t_start,
            "epsilon_world_units": viewport.pixel_diag,
            "parallel": {
                "mode": "parallel" if pooled else "serial",
                "workers": min(workers, len(ranges)),
                "pooled": pooled,
                "tile_ranges": len(ranges),
            },
        },
    )
