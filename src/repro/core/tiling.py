"""Tiled execution for canvases beyond the maximum texture size.

GPUs cap render-target sizes (the paper tiles its canvas when a small
error bound demands more pixels than one texture holds); the software
pipeline has an analogous memory cap.  :func:`tiled_bounded_raster_join`
splits the global pixel grid into tiles, runs the render passes per
tile, and merges the per-region partials — pixels belong to exactly one
tile, so additive partials merge by summation and min/max by
combination, and the numeric error bounds remain hard.

Because every tile contributes an independent additive partial, the
same machinery also supports *progressive* execution:
:func:`iter_tiled_partials` yields a :class:`TilePartial` snapshot
after each tile (or every ``every`` tiles) — estimate plus hard bounds
over the pixels processed so far — and the serving layer streams those
snapshots to clients as they arrive.  The final snapshot is computed in
the exact accumulation order of the serial full run, so a streamed
answer converges bitwise to :func:`tiled_bounded_raster_join`'s.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import QueryCancelled, QueryError
from ..geometry import BBox
from ..raster import Viewport, build_fragment_table, gather_reduce, gather_sum
from ..table import PointTable
from .aggregates import BOUNDABLE_AGGREGATES, COUNT, PartialAggregate
from .bounded import blend_canvases
from .parallel import ParallelConfig, _even_ranges, _fork_map
from .query import SpatialAggregation
from .regions import RegionSet
from .result import AggregationResult


def make_tiles(viewport: Viewport, tile_pixels: int
               ) -> list[tuple[Viewport, int, int]]:
    """Split a global viewport into aligned tiles.

    Returns (tile viewport, col0, row0) triples; tile world windows are
    derived from exact pixel ranges so the union of tiles reproduces the
    global pixel grid bit-for-bit.
    """
    if tile_pixels < 1:
        raise QueryError("tile_pixels must be >= 1")
    tiles = []
    pw = viewport.pixel_width
    ph = viewport.pixel_height
    for row0 in range(0, viewport.height, tile_pixels):
        rows = min(tile_pixels, viewport.height - row0)
        for col0 in range(0, viewport.width, tile_pixels):
            cols = min(tile_pixels, viewport.width - col0)
            bbox = BBox(
                viewport.bbox.xmin + col0 * pw,
                viewport.bbox.ymin + row0 * ph,
                viewport.bbox.xmin + (col0 + cols) * pw,
                viewport.bbox.ymin + (row0 + rows) * ph,
            )
            tiles.append((Viewport(bbox, cols, rows), col0, row0))
    return tiles


def grid_block_tiles(viewport) -> list[tuple[int, int, tuple, tuple]]:
    """Pyramid-aware tiling: the canvas-grid blocks under a viewport.

    Where :func:`make_tiles` cuts a viewport into viewport-relative
    tiles, this enumerates the *world-anchored* blocks of a
    :class:`~repro.core.pyramid.GridViewport`'s canvas grid — the units
    the block cache stores, so a panned viewport lands on the same block
    identities and only its margin is new.  Duck-typed on the
    ``grid``/``level``/``col0``/``row0`` fields (this module must not
    import :mod:`repro.core.pyramid`, which imports it).

    Returns ``(bx, by, view_slices, block_slices)`` per overlapping
    block: ``view_slices`` indexes the 2-D viewport canvas,
    ``block_slices`` the block's full ``(block, block)`` plane, and the
    two select the same pixels.  Blocks partition the pixel lattice, so
    pasting every pair covers each viewport pixel exactly once.
    """
    size = viewport.grid.block
    c0, r0 = viewport.col0, viewport.row0
    c1, r1 = c0 + viewport.width, r0 + viewport.height
    tiles = []
    for by in range((r0 // size), ((r1 - 1) // size) + 1):
        gy = by * size
        rlo, rhi = max(r0, gy), min(r1, gy + size)
        for bx in range((c0 // size), ((c1 - 1) // size) + 1):
            gx = bx * size
            clo, chi = max(c0, gx), min(c1, gx + size)
            tiles.append((
                bx, by,
                (slice(rlo - r0, rhi - r0), slice(clo - c0, chi - c0)),
                (slice(rlo - gy, rhi - gy), slice(clo - gx, chi - gx)),
            ))
    return tiles


def _accumulate_covered(part: PartialAggregate, fragments, canvases,
                        agg: str) -> None:
    """Fold one tile's covered-pixel join into the global partial."""
    n = fragments.num_polygons
    pix = fragments.covered_pixels
    polys = fragments.covered_polys
    if part.counts is not None:
        part.counts += gather_sum(canvases["count"], pix, polys, n)
    if part.sums is not None:
        part.sums += gather_sum(canvases["sum"], pix, polys, n)
    if part.mins is not None:
        np.minimum(part.mins,
                   gather_reduce(canvases["min"], pix, polys, n,
                                 np.minimum, np.inf), out=part.mins)
    if part.maxs is not None:
        np.maximum(part.maxs,
                   gather_reduce(canvases["max"], pix, polys, n,
                                 np.maximum, -np.inf), out=part.maxs)


def fold_tile_join(geometries, local_ids: list[int],
                   query: SpatialAggregation, tile_vp: Viewport,
                   canvases: dict, mass_canvas,
                   part: PartialAggregate, mass_in: np.ndarray,
                   mass_out: np.ndarray) -> None:
    """Fold one tile's polygon pass + gather join into global
    accumulators.

    ``canvases`` are the tile's blended point canvases and
    ``mass_canvas`` the per-pixel absolute-contribution mass (None for
    unboundable aggregates).  Shared by the in-memory tiled join and
    the out-of-core store scan: both produce identical tile canvases,
    so folding through one code path keeps their results bitwise-equal.
    """
    if not local_ids:
        return
    local_fragments = build_fragment_table(
        [geometries[gid] for gid in local_ids], tile_vp)
    # Remap the local polygon ids back to global region ids.
    remap = np.asarray(local_ids, dtype=np.int64)

    # Accumulate through a local partial, then scatter to global ids.
    local_part = PartialAggregate.empty(query.agg, len(local_ids))
    _accumulate_covered(local_part, local_fragments, canvases, query.agg)
    if part.counts is not None:
        part.counts[remap] += local_part.counts
    if part.sums is not None:
        part.sums[remap] += local_part.sums
    if part.mins is not None:
        np.minimum.at(part.mins, remap, local_part.mins)
    if part.maxs is not None:
        np.maximum.at(part.maxs, remap, local_part.maxs)

    if query.agg in BOUNDABLE_AGGREGATES:
        m_in = gather_sum(mass_canvas,
                          local_fragments.covered_boundary_pixels,
                          local_fragments.covered_boundary_polys,
                          len(local_ids))
        m_all = gather_sum(mass_canvas, local_fragments.boundary_pixels,
                           local_fragments.boundary_polys,
                           len(local_ids))
        mass_in[remap] += m_in
        mass_out[remap] += m_all - m_in


@dataclass
class TilePartial:
    """One progressive snapshot of a tiled join in flight.

    ``values``/``lower``/``upper`` cover only the tiles processed so
    far — the hard-bound contract holds per snapshot: the true answer
    restricted to those pixels lies within [lower, upper].  The last
    snapshot (``final=True``) equals the full tiled join bitwise.
    """

    tile_index: int        #: 1-based count of tiles folded in so far.
    tiles_total: int
    values: np.ndarray
    lower: np.ndarray | None
    upper: np.ndarray | None
    final: bool
    stats: dict


class _TileJoinState:
    """The shared prep + per-tile kernel behind both the one-shot and
    the progressive tiled joins: one global point pass (filter, project,
    stable-sort route to tiles), then :meth:`run_tile` folds one tile's
    render passes into caller-owned accumulators."""

    def __init__(self, table: PointTable, regions: RegionSet,
                 query: SpatialAggregation, resolution: int,
                 tile_pixels: int):
        self.regions = regions
        self.query = query
        self.resolution = resolution
        self.tile_pixels = tile_pixels
        self.viewport = Viewport.fit(regions.bbox, resolution)
        self.tiles = make_tiles(self.viewport, tile_pixels)

        # One global point pass: filter, project to global pixel coords,
        # then route points to tiles by integer division.
        mask = query.filter_mask(table)
        values = query.values_for(table)
        x = table.x[mask]
        y = table.y[mask]
        if values is not None:
            values = values[mask]
        ix, iy = self.viewport.pixel_of(x, y)
        valid = ((ix >= 0) & (ix < self.viewport.width)
                 & (iy >= 0) & (iy < self.viewport.height))
        self.ix = ix[valid]
        self.iy = iy[valid]
        self.values = values[valid] if values is not None else None

        tiles_per_row = -(-self.viewport.width // tile_pixels)  # ceil div
        tile_of_point = ((self.iy // tile_pixels) * tiles_per_row
                         + (self.ix // tile_pixels))
        self.order = np.argsort(tile_of_point, kind="stable")
        tile_sorted = tile_of_point[self.order]
        self.tile_offsets = np.searchsorted(
            tile_sorted, np.arange(len(self.tiles) + 1), side="left")

        self.geometries = list(regions.geometries)
        self.geom_boxes = [g.bbox for g in self.geometries]

    def empty_accumulators(self
                           ) -> tuple[PartialAggregate, np.ndarray, np.ndarray]:
        n = len(self.regions)
        return (PartialAggregate.empty(self.query.agg, n),
                np.zeros(n), np.zeros(n))

    def run_tile(self, tile_idx: int, part: PartialAggregate,
                 mass_in: np.ndarray, mass_out: np.ndarray) -> None:
        query = self.query
        ix, iy, values = self.ix, self.iy, self.values
        tile_vp, col0, row0 = self.tiles[tile_idx]
        # Regions overlapping this tile (ids must be preserved).
        local_ids = [gid for gid, gb in enumerate(self.geom_boxes)
                     if gb.intersects(tile_vp.bbox)]
        sel = self.order[
            self.tile_offsets[tile_idx]:self.tile_offsets[tile_idx + 1]]
        if not local_ids and len(sel) == 0:
            return

        local_pix = ((iy[sel] - row0) * tile_vp.width + (ix[sel] - col0))
        local_vals = values[sel] if values is not None else None
        canvases = blend_canvases(local_pix, local_vals, query.agg,
                                  tile_vp.num_pixels)

        if not local_ids:
            return
        mass = None
        if query.agg in BOUNDABLE_AGGREGATES:
            if query.agg == COUNT:
                mass = canvases["count"]
            else:
                from ..raster import scatter_sum

                mass = scatter_sum(local_pix, np.abs(local_vals),
                                   tile_vp.num_pixels)
        fold_tile_join(self.geometries, local_ids, query, tile_vp,
                       canvases, mass, part, mass_in, mass_out)

    def snapshot(self, part: PartialAggregate, mass_in: np.ndarray,
                 mass_out: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray | None, np.ndarray | None]:
        """Finalize the accumulators without consuming them.

        ``PartialAggregate.finalize`` returns fresh arrays, so the
        accumulators keep absorbing later tiles untouched.
        """
        estimate = part.finalize()
        lower = upper = None
        if self.query.agg in BOUNDABLE_AGGREGATES:
            lower = estimate - mass_in
            upper = estimate + mass_out
        return estimate, lower, upper


def tiled_bounded_raster_join(
    table: PointTable,
    regions: RegionSet,
    query: SpatialAggregation,
    resolution: int,
    tile_pixels: int = 1024,
    config: ParallelConfig | None = None,
    cancel=None,
) -> AggregationResult:
    """Bounded raster join over a virtual canvas of arbitrary size.

    With a :class:`ParallelConfig`, contiguous tile ranges run in worker
    processes; tiles partition the pixel grid, so per-range partials and
    boundary masses merge by plain addition (min/max by combination)
    and results match the serial order exactly for COUNT.

    ``cancel`` (``threading.Event``-like) is honored between tiles on
    the serial path — fork workers cannot observe a parent-set event,
    so a pooled run completes its ranges before the token is rechecked.
    """
    t_start = time.perf_counter()
    state = _TileJoinState(table, regions, query, resolution, tile_pixels)
    tiles = state.tiles

    def range_task(tlo: int, thi: int):
        local, m_in, m_out = state.empty_accumulators()
        for tile_idx in range(tlo, thi):
            if cancel is not None and cancel.is_set():
                raise QueryCancelled("tiled join cancelled mid-run")
            state.run_tile(tile_idx, local, m_in, m_out)
        return local, m_in, m_out

    workers = config.resolve_workers() if config is not None else 1
    ranges = _even_ranges(len(tiles), min(workers, len(tiles)))
    results, pooled = _fork_map(range_task, ranges, workers)
    if cancel is not None and cancel.is_set():
        raise QueryCancelled("tiled join cancelled")

    part, mass_in, mass_out = results[0]
    for other, m_in, m_out in results[1:]:
        part.merge(other)
        mass_in += m_in
        mass_out += m_out

    estimate, lower, upper = state.snapshot(part, mass_in, mass_out)

    return AggregationResult(
        regions=regions,
        values=estimate,
        method="tiled-bounded-raster-join",
        lower=lower,
        upper=upper,
        exact=False,
        stats={
            "tiles": len(tiles),
            "resolution": resolution,
            "tile_pixels": tile_pixels,
            "time_total_s": time.perf_counter() - t_start,
            "epsilon_world_units": state.viewport.pixel_diag,
            "parallel": {
                "mode": "parallel" if pooled else "serial",
                "workers": min(workers, len(ranges)),
                "pooled": pooled,
                "tile_ranges": len(ranges),
            },
        },
    )


def iter_tiled_partials(
    table: PointTable,
    regions: RegionSet,
    query: SpatialAggregation,
    resolution: int,
    tile_pixels: int = 1024,
    every: int = 1,
    cancel=None,
):
    """Progressive tiled join: yield a :class:`TilePartial` snapshot
    every ``every`` tiles, always serially and always ending with a
    ``final=True`` snapshot.

    Tiles are processed in the serial order of
    :func:`tiled_bounded_raster_join`, so the final snapshot's values
    and bounds are bitwise-identical to the one-shot serial result.
    Each snapshot's [lower, upper] interval is a hard bound on the true
    answer *restricted to the pixels folded in so far* — the serving
    layer forwards them as bounded-error progress metadata.

    A set ``cancel`` token stops the generator between tiles with
    :class:`~repro.errors.QueryCancelled`.
    """
    if every < 1:
        raise QueryError("every must be >= 1")
    t_start = time.perf_counter()
    state = _TileJoinState(table, regions, query, resolution, tile_pixels)
    tiles_total = len(state.tiles)
    part, mass_in, mass_out = state.empty_accumulators()

    for tile_idx in range(tiles_total):
        if cancel is not None and cancel.is_set():
            raise QueryCancelled("progressive tiled join cancelled")
        state.run_tile(tile_idx, part, mass_in, mass_out)
        done = tile_idx + 1
        final = done == tiles_total
        if not final and done % every:
            continue
        values, lower, upper = state.snapshot(part, mass_in, mass_out)
        yield TilePartial(
            tile_index=done,
            tiles_total=tiles_total,
            values=values,
            lower=lower,
            upper=upper,
            final=final,
            stats={
                "resolution": resolution,
                "tile_pixels": tile_pixels,
                "progress": done / tiles_total,
                "epsilon_world_units": state.viewport.pixel_diag,
                "time_elapsed_s": time.perf_counter() - t_start,
            },
        )
