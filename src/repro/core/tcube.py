"""Temporal canvas cube: prefix-summed time-sliced canvases.

Brushing the timeline re-runs the whole point pass per gesture even
though only the :class:`TimeRange` predicate changed — O(|P|) per brush
step.  The paper's argument against data cubes is that *polygons* are ad
hoc; the canvas, however, is polygon-agnostic, so pre-aggregating along
time **on the canvas** keeps arbitrary polygons and filters while making
any time-range query a two-slice difference:

1. **Bucket once** — the residual-filtered, in-viewport points are
   assigned a time bucket (``(t - origin) // bucket_seconds``) and a
   canvas pixel.
2. **Scatter per bucket** — count/sum contributions accumulate into
   per-bucket slices stored sparsely over the *active pixels* (the
   sorted union of pixels any point touches; NYC-style canvases are
   mostly empty, so this is the CSR-style compression that keeps the
   cube small).
3. **Prefix-sum along time** — slices are cumulatively summed, so the
   canvas for any aligned ``[t0, t1)`` materializes as
   ``prefix[b1] - prefix[b0]`` in O(pixels + active), independent of
   point count.

The gather join is linear in the canvas, so it distributes over the
prefix sum: :meth:`TemporalCanvasCube.answer` gathers each prefix row
per region once per fragment table (the same covered / boundary
pairings :func:`~repro.core.bounded._join_covered` and
:func:`~repro.core.bounds.boundary_mass_bounds` iterate), after which
every brush is an O(regions) row difference.  The bounded raster
join's hard error guarantees survive verbatim: COUNT answers and
bounds are bitwise-identical to a fresh scatter (integer counts are
exact in float64 regardless of addition order); SUM matches bitwise
for integer-valued columns and to float round-off otherwise; AVG
follows from the two.

Cube construction fans out across :mod:`repro.core.parallel` workers —
one contiguous bucket shard per worker scattered into a shared-memory
delta block — so the one-time build amortizes within a few brush steps.
Appends (streaming) increment the tail bucket in place instead of
invalidating the cube.
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..errors import CubeError, QueryError
from ..raster import FragmentTable, Viewport
from ..raster.pyramid import reduce2x2
from ..table import TIMESTAMP, PointTable, TimeRange, combine_filters
from .aggregates import AVG, COUNT, SUM
from .bounded import _join_covered
from .bounds import boundary_mass_bounds, epsilon_for_viewport
from .parallel import (
    ParallelConfig,
    _even_ranges,
    _fork_map,
    _SharedCanvasBlock,
)
from .query import SpatialAggregation
from .regions import RegionSet
from .result import AggregationResult

#: Aggregates a temporal canvas cube can answer.  Prefix sums only
#: difference for *additive* canvases; MIN/MAX slices do not subtract.
TCUBE_AGGREGATES = (COUNT, SUM, AVG)

#: Hard cap on the number of time slices one cube may hold.
MAX_TCUBE_SLICES = 4096

#: Memory ceiling for a single cube's prefix planes.  Estimated before
#: building with ``active <= min(points, pixels)``; a brush whose
#: alignment would need more slices than fit simply is not served from
#: a cube (the caller falls back to re-scattering).
MAX_TCUBE_BYTES = 256 * 1024 * 1024

#: Bucket widths the inference ladder tries, coarsest first: week, day,
#: quarter-day, hour, 15 min, minute, second.  Coarsest-aligned wins, so
#: repeated brushes at the UI's granularity all hit one cube.
BUCKET_LADDER = (7 * 86_400, 86_400, 6 * 3_600, 3_600, 900, 60, 1)


def split_time_filter(query: SpatialAggregation,
                      time_column: str | None = None
                      ) -> tuple[TimeRange | None, tuple]:
    """Split a query's filters into (the TimeRange, everything else).

    Returns ``(None, query.filters)`` unless exactly one
    :class:`TimeRange` (on ``time_column``, when given) is present —
    the cube replaces one changing time predicate, not arbitrary
    temporal algebra.
    """
    times = [f for f in query.filters if isinstance(f, TimeRange)
             and (time_column is None or f.column == time_column)]
    if len(times) != 1:
        return None, query.filters
    residual = tuple(f for f in query.filters if f is not times[0])
    return times[0], residual


def _same_filters(a, b) -> bool:
    """Order-insensitive filter-tuple equality (filters are frozen
    dataclasses, so ``repr`` is canonical)."""
    return sorted(map(repr, a)) == sorted(map(repr, b))


def infer_bucket_seconds(start: int, end: int, tmin: int, tmax: int,
                         max_slices: int = MAX_TCUBE_SLICES) -> int | None:
    """The coarsest bucket width whose grid can answer ``[start, end)``.

    A grid with origin ``floor(tmin / c) * c`` answers the brush when
    each endpoint either lands on a bucket edge or clamps past the data
    span, and the span fits in ``max_slices`` buckets.  The ladder is
    tried coarsest-first so the chosen granularity matches the UI's
    (every same-granularity brush then hits the same cube);
    ``gcd(start, end)`` is the last-resort fallback.
    """
    start, end, tmin, tmax = int(start), int(end), int(tmin), int(tmax)

    def fits(c: int) -> bool:
        if c < 1:
            return False
        origin = tmin // c * c
        buckets = (tmax - origin) // c + 1
        if buckets > max_slices:
            return False
        grid_end = origin + buckets * c
        return ((start <= origin or start % c == 0)
                and (end >= grid_end or end % c == 0))

    for c in BUCKET_LADDER:
        if fits(c):
            return c
    fallback = math.gcd(start, end)
    if fallback and fits(fallback):
        return fallback
    return None


class TemporalCanvasCube:
    """Prefix-summed per-bucket canvases over a fixed viewport.

    ``prefix[kind]`` is a ``(num_buckets + 1, num_active_pixels)``
    float64 plane with ``prefix[0] == 0`` and ``prefix[b + 1] ==
    prefix[b] + slice_b``; ``active_pixels`` maps its columns back to
    flat canvas pixel ids.  Kinds: ``count`` always; ``sum`` when a
    value column is stored; ``mass`` (sum of |value|, for the SUM error
    bounds) only when the column has negative values — for non-negative
    columns the sum plane *is* the mass plane, the same reuse
    :mod:`repro.core.bounded` applies.
    """

    def __init__(self, viewport: Viewport, time_column: str,
                 bucket_seconds: int, origin: int | None,
                 active_pixels: np.ndarray, prefix: dict[str, np.ndarray],
                 value_column: str | None = None,
                 residual_filters: tuple = (),
                 nonnegative_values: bool = True,
                 covers_all_points: bool = True,
                 stats: dict | None = None):
        self.viewport = viewport
        self.time_column = time_column
        self.bucket_seconds = int(bucket_seconds)
        self.origin = None if origin is None else int(origin)
        self.active_pixels = active_pixels
        self.prefix = prefix
        self.value_column = value_column
        self.residual_filters = tuple(residual_filters)
        self.nonnegative_values = bool(nonnegative_values)
        self.covers_all_points = bool(covers_all_points)
        self.stats = stats or {}
        self._totals: dict[str, np.ndarray] = {}
        # Per-fragment-table prefix gathers (see _join_rows): keyed by
        # id() with a strong reference held inside, so an id can never
        # be recycled while its entry lives.
        self._joins: dict[int, tuple[FragmentTable, dict]] = {}

    # -- geometry of the cube ---------------------------------------------

    @property
    def num_buckets(self) -> int:
        return next(iter(self.prefix.values())).shape[0] - 1

    @property
    def num_active_pixels(self) -> int:
        return int(len(self.active_pixels))

    @property
    def bucket_starts(self) -> np.ndarray:
        return ((self.origin or 0)
                + np.arange(self.num_buckets, dtype=np.int64)
                * self.bucket_seconds)

    @property
    def spec(self) -> tuple:
        """The hashable build spec — the unified-cache key component."""
        return (self.viewport, self.time_column, self.bucket_seconds,
                self.value_column, self.residual_filters)

    def memory_bytes(self) -> int:
        """Resident bytes (the unified cache's byte accounting)."""
        return (int(self.active_pixels.nbytes)
                + sum(int(p.nbytes) for p in self.prefix.values()))

    # -- answerability -----------------------------------------------------

    def bucket_range(self, start: int, end: int) -> tuple[int, int] | None:
        """Map ``[start, end)`` onto slice indices, or None if unaligned.

        Endpoints must land on bucket edges; endpoints at or beyond the
        grid's edges clamp (no point lives out there, so clamping is
        exact).  An aligned range entirely outside the data maps to an
        empty ``(b, b)`` pair — still exactly answerable (all zeros).
        """
        num = self.num_buckets
        if num == 0:
            return 0, 0
        grid_end = self.origin + num * self.bucket_seconds

        def edge(t: int) -> int | None:
            if t <= self.origin:
                return 0
            if t >= grid_end:
                return num
            q, r = divmod(int(t) - self.origin, self.bucket_seconds)
            return int(q) if r == 0 else None

        b0, b1 = edge(start), edge(end)
        if b0 is None or b1 is None:
            return None
        return b0, max(b0, b1)

    def reduce_levels_for(self, viewport: Viewport) -> int | None:
        """How many 2x2 reductions turn this cube's canvas into
        ``viewport``'s — 0 for the cube's own viewport, ``d > 0`` when
        both are :class:`~repro.core.pyramid.GridViewport`\\ s on the
        same grid with the query ``d`` levels coarser and its window a
        coarse-aligned crop of the cube's (the zoom-out brush), None
        otherwise.

        Every query coarse pixel's base-pixel footprint must lie fully
        inside the cube's window: the cube's origin must sit on the
        coarse lattice, and the query window must not poke past the
        cube's — a partially-covered edge pixel would mix cube-covered
        base pixels with world the cube never scattered.
        """
        if viewport == self.viewport:
            return 0
        from .pyramid import GridViewport

        cv, qv = self.viewport, viewport
        if not (isinstance(cv, GridViewport)
                and isinstance(qv, GridViewport)):
            return None
        if cv.grid != qv.grid or qv.level <= cv.level:
            return None
        d = qv.level - cv.level
        scale = 1 << d
        if cv.col0 % scale or cv.row0 % scale:
            return None
        if (qv.col0 * scale < cv.col0
                or qv.row0 * scale < cv.row0
                or (qv.col0 + qv.width) * scale > cv.col0 + cv.width
                or (qv.row0 + qv.height) * scale > cv.row0 + cv.height):
            return None
        return d

    def can_answer(self, query: SpatialAggregation,
                   viewport: Viewport) -> bool:
        """Whether this cube answers ``query`` exactly as the bounded
        raster join would at ``viewport`` — the cube's own viewport, or
        (COUNT only) a same-grid viewport a whole number of pyramid
        levels coarser, served by 2x2-reducing the sliced canvas."""
        levels = self.reduce_levels_for(viewport)
        if levels is None:
            return False
        if levels and query.agg != COUNT:
            # A reduced SUM reassociates float additions; only the
            # integer-exact count canvas keeps the bitwise contract.
            return False
        if query.agg not in TCUBE_AGGREGATES:
            return False
        if query.agg != COUNT and query.value_column != self.value_column:
            return False  # the count plane is always stored; sums are not
        tr, residual = split_time_filter(query, self.time_column)
        if tr is None:
            return False
        if not _same_filters(residual, self.residual_filters):
            return False
        return self.bucket_range(tr.start, tr.end) is not None

    # -- range materialization ---------------------------------------------

    def range_canvas(self, kind: str, b0: int, b1: int) -> np.ndarray:
        """Dense canvas for buckets ``[b0, b1)``: the prefix-sum trick."""
        out = np.zeros(self.viewport.num_pixels, dtype=np.float64)
        if b1 > b0 and self.num_active_pixels:
            out[self.active_pixels] = (self.prefix[kind][b1]
                                       - self.prefix[kind][b0])
        return out

    def bucket_totals(self, kind: str = "count") -> np.ndarray:
        """Per-bucket viewport-wide totals (the timeline series)."""
        cached = self._totals.get(kind)
        if cached is None:
            plane = self.prefix[kind]
            cached = (plane[1:] - plane[:-1]).sum(axis=1)
            self._totals[kind] = cached
        return cached.copy()

    def region_matrix(self, labels: np.ndarray, num_regions: int,
                      kind: str = "count") -> np.ndarray:
        """Assemble the (region, bucket) matrix from the cube's slices.

        ``labels`` is the pixel -> region map from
        :func:`~repro.core.heatmatrix.pixel_region_labels`; the result
        matches :func:`~repro.core.heatmatrix.region_time_matrix` (same
        pixel-center labeling) over the cube's full bucket span.
        """
        num = self.num_buckets
        out = np.zeros((num_regions, num), dtype=np.float64)
        if num == 0 or self.num_active_pixels == 0:
            return out
        lab = labels[self.active_pixels]
        sel = np.flatnonzero(lab >= 0)
        if len(sel) == 0:
            return out
        lab = lab[sel].astype(np.int64)
        plane = self.prefix[kind]
        for b in range(num):
            delta = plane[b + 1, sel] - plane[b, sel]
            out[:, b] = np.bincount(lab, weights=delta,
                                    minlength=num_regions)[:num_regions]
        return out

    # -- the query path ----------------------------------------------------

    def _join_rows(self, fragments: FragmentTable) -> dict:
        """Per-region gathers of every prefix row, per fragment pairing.

        The gather join is *linear* in the canvas, so it distributes
        over the prefix sum: gathering each prefix row once per
        (cube, fragment table) turns every later brush into an
        O(regions) row difference — the join itself is prefix-summed.
        Three pairings mirror the bounded path: ``covered`` (the
        estimate), ``covered_boundary`` and ``boundary`` (the mass
        bounds).  Additive gathers of the integer-exact count/sum
        planes keep the bitwise-equality guarantees intact.
        """
        cached = self._joins.get(id(fragments))
        if cached is not None and cached[0] is fragments:
            return cached[1]
        n = fragments.num_polygons
        nrows = self.num_buckets + 1
        state: dict[str, dict[str, np.ndarray]] = {}
        pairings = {
            "covered": (fragments.covered_pixels, fragments.covered_polys),
            "covered_boundary": (fragments.covered_boundary_pixels,
                                 fragments.covered_boundary_polys),
            "boundary": (fragments.boundary_pixels,
                         fragments.boundary_polys),
        }
        for name, (pix, polys) in pairings.items():
            width = self.num_active_pixels
            if width and len(pix):
                idx = np.minimum(np.searchsorted(self.active_pixels, pix),
                                 width - 1)
                present = self.active_pixels[idx] == pix
                cols = idx[present]
                p = polys[present].astype(np.int64)
            else:
                cols = np.empty(0, dtype=np.int64)
                p = np.empty(0, dtype=np.int64)
            per_kind: dict[str, np.ndarray] = {}
            if len(p):
                order = np.argsort(p, kind="stable")
                p_sorted = p[order]
                starts = np.flatnonzero(
                    np.r_[True, p_sorted[1:] != p_sorted[:-1]])
                groups = p_sorted[starts]
                src = cols[order]
                for kind, plane in self.prefix.items():
                    rows = np.zeros((nrows, n))
                    rows[:, groups] = np.add.reduceat(
                        plane[:, src], starts, axis=1)
                    per_kind[kind] = rows
            else:
                for kind in self.prefix:
                    per_kind[kind] = np.zeros((nrows, n))
            state[name] = per_kind
        if len(self._joins) >= 4:  # a cube rarely sees >1-2 region sets
            self._joins.pop(next(iter(self._joins)))
        self._joins[id(fragments)] = (fragments, state)
        return state

    def answer(self, regions: RegionSet, fragments: FragmentTable,
               query: SpatialAggregation,
               viewport: Viewport | None = None) -> AggregationResult:
        """Answer one aggregate over the query's TimeRange.

        Serves the same estimate + boundary-mass bounds the bounded
        raster join computes, but from prefix-gathered join rows (see
        :meth:`_join_rows`): after the first gesture against a region
        set, a brush step costs O(regions), independent of both point
        count and canvas size.

        ``viewport`` (default: the cube's own) may be a same-grid
        viewport ``d`` pyramid levels coarser — the zoom-out brush.
        ``fragments`` must then be the polygon pass at *that* viewport;
        the sliced count canvas is 2x2-reduced ``d`` times before the
        gather join (COUNT only, see :meth:`reduce_levels_for`).
        """
        tr, __ = split_time_filter(query, self.time_column)
        if tr is None:
            raise QueryError(
                "tcube answers need exactly one TimeRange filter on "
                f"{self.time_column!r}")
        rng = self.bucket_range(tr.start, tr.end)
        if rng is None:
            raise CubeError(
                f"brush [{tr.start}, {tr.end}) does not align with the "
                f"cube's {self.bucket_seconds}s bucket grid")
        b0, b1 = rng

        if viewport is None:
            viewport = self.viewport
        levels = self.reduce_levels_for(viewport)
        if levels is None:
            raise CubeError(
                "viewport is neither the cube's own nor a same-grid "
                "pyramid coarsening of it")
        if levels:
            return self._answer_reduced(regions, fragments, query,
                                        viewport, levels, b0, b1)

        t0 = time.perf_counter()
        rows = self._join_rows(fragments)
        covered = rows["covered"]
        if query.agg == COUNT:
            estimate = covered["count"][b1] - covered["count"][b0]
        elif query.agg == SUM:
            estimate = covered["sum"][b1] - covered["sum"][b0]
        else:  # AVG — same nan-for-empty convention as _join_covered
            sums = covered["sum"][b1] - covered["sum"][b0]
            counts = covered["count"][b1] - covered["count"][b0]
            with np.errstate(divide="ignore", invalid="ignore"):
                estimate = sums / counts
            estimate[counts == 0] = np.nan

        lower = upper = None
        if query.agg in (COUNT, SUM):
            kind = "count" if query.agg == COUNT else (
                "sum" if self.nonnegative_values else "mass")
            in_rows = rows["covered_boundary"][kind]
            all_rows = rows["boundary"][kind]
            mass_in = in_rows[b1] - in_rows[b0]
            mass_out = (all_rows[b1] - all_rows[b0]) - mass_in
            lower, upper = estimate - mass_in, estimate + mass_out
        t_join = time.perf_counter() - t0

        points = int(round(self.bucket_totals("count")[b0:b1].sum()))
        stats = {
            "points_total": int(self.stats.get("points_total", points)),
            "points_after_filter": points,
            "points_in_viewport": points,
            "time_polygon_pass_s": 0.0,
            "time_point_pass_s": 0.0,
            "time_join_s": t_join,
            "interior_fragments": fragments.num_interior_fragments,
            "boundary_fragments": fragments.num_boundary_fragments,
            "canvas_pixels": self.viewport.num_pixels,
            "epsilon_world_units": epsilon_for_viewport(self.viewport),
            "tcube": {
                "slices": self.num_buckets,
                "slices_touched": b1 - b0,
                "slice_range": [b0, b1],
                "bucket_seconds": self.bucket_seconds,
                "active_pixels": self.num_active_pixels,
                "memory_bytes": self.memory_bytes(),
                "reduced_levels": 0,
            },
        }
        return AggregationResult(
            regions=regions,
            values=estimate,
            method="tcube-raster-join",
            lower=lower,
            upper=upper,
            exact=False,
            stats=stats,
        )

    def _answer_reduced(self, regions: RegionSet, fragments: FragmentTable,
                        query: SpatialAggregation, viewport: Viewport,
                        levels: int, b0: int, b1: int) -> AggregationResult:
        """The pyramid-coarsened brush: slice-difference the count
        canvas, 2x2-reduce it ``levels`` times, then run the ordinary
        gather join + boundary-mass bounds at the coarse viewport.

        Count planes hold small integers, so the pairwise reduction is
        exact — the answer is bitwise-equal to re-scattering the brushed
        points at the coarse viewport.  O(pixels) per brush rather than
        the O(regions) row difference, but still point-count-free.
        """
        if query.agg != COUNT:
            raise QueryError(
                "pyramid-reduced tcube answers serve COUNT only; "
                f"got {query.agg!r}")
        t0 = time.perf_counter()
        canvas = self.range_canvas("count", b0, b1).reshape(
            self.viewport.height, self.viewport.width)
        for __ in range(levels):
            canvas = reduce2x2(canvas, "sum")
        # Crop to the query window: reduced pixel (j, i) is absolute
        # coarse pixel (cube.row0 / scale + j, cube.col0 / scale + i),
        # and reduce_levels_for guaranteed the query window lies inside.
        scale = 1 << levels
        offx = viewport.col0 - self.viewport.col0 // scale
        offy = viewport.row0 - self.viewport.row0 // scale
        canvas = canvas[offy:offy + viewport.height,
                        offx:offx + viewport.width]
        flat = np.ascontiguousarray(canvas).ravel()
        estimate = _join_covered(fragments, {"count": flat}, COUNT)
        lower, upper = boundary_mass_bounds(fragments, estimate, flat)
        t_join = time.perf_counter() - t0

        points = int(round(self.bucket_totals("count")[b0:b1].sum()))
        stats = {
            "points_total": int(self.stats.get("points_total", points)),
            "points_after_filter": points,
            "points_in_viewport": points,
            "time_polygon_pass_s": 0.0,
            "time_point_pass_s": 0.0,
            "time_join_s": t_join,
            "interior_fragments": fragments.num_interior_fragments,
            "boundary_fragments": fragments.num_boundary_fragments,
            "canvas_pixels": viewport.num_pixels,
            "epsilon_world_units": epsilon_for_viewport(viewport),
            "tcube": {
                "slices": self.num_buckets,
                "slices_touched": b1 - b0,
                "slice_range": [b0, b1],
                "bucket_seconds": self.bucket_seconds,
                "active_pixels": self.num_active_pixels,
                "memory_bytes": self.memory_bytes(),
                "reduced_levels": levels,
            },
        }
        return AggregationResult(
            regions=regions,
            values=estimate,
            method="tcube-raster-join",
            lower=lower,
            upper=upper,
            exact=False,
            stats=stats,
        )

    # -- incremental maintenance ------------------------------------------

    def append(self, pixel_ids: np.ndarray, tvals: np.ndarray,
               values: np.ndarray | None = None,
               all_in_viewport: bool = True) -> None:
        """Fold a batch of new points into the tail of the cube.

        Streaming batches arrive in event-log order, so new points may
        only land in the current tail bucket (its prefix row is bumped
        in place) or later ones (cumsum-extended rows) — never in
        settled history.  New pixels extend the active set; their past
        prefix entries are zero by construction, so history stays exact.
        """
        if self.value_column is not None and values is None:
            raise QueryError(
                f"cube stores {self.value_column!r} sums; append needs "
                f"the matching values")
        pixel_ids = np.asarray(pixel_ids, dtype=np.int64)
        tvals = np.asarray(tvals)
        self.covers_all_points = self.covers_all_points and bool(
            all_in_viewport)
        if len(pixel_ids) == 0:
            return

        if self.origin is None:
            self.origin = (int(tvals.min()) // self.bucket_seconds
                           * self.bucket_seconds)
        buckets = ((tvals - self.origin)
                   // self.bucket_seconds).astype(np.int64)
        num = self.num_buckets
        if int(buckets.min()) < num - 1:
            raise QueryError(
                "append may only touch the tail bucket onward; batch "
                f"reaches back to bucket {int(buckets.min())} < {num - 1}")
        new_num = max(num, int(buckets.max()) + 1)
        if new_num > MAX_TCUBE_SLICES:
            raise CubeError(
                f"appending would grow the cube to {new_num} slices "
                f"(cap {MAX_TCUBE_SLICES})")

        # Column growth for never-before-seen pixels.
        uniq = np.unique(pixel_ids)
        missing = uniq[np.isin(uniq, self.active_pixels,
                               assume_unique=True, invert=True)]
        if len(missing):
            new_active = np.union1d(self.active_pixels, missing)
            old_cols = np.searchsorted(new_active, self.active_pixels)
            for kind, plane in self.prefix.items():
                grown = np.zeros((plane.shape[0], len(new_active)))
                grown[:, old_cols] = plane
                self.prefix[kind] = grown
            self.active_pixels = new_active
        cols = np.searchsorted(self.active_pixels, pixel_ids)

        vals = None
        if self.value_column is not None:
            vals = np.asarray(values, dtype=np.float64)
            if self.nonnegative_values and len(vals) and vals.min() < 0:
                # Non-negativity just broke.  All historical |v| sums
                # equal the v sums, so the mass plane starts as a copy
                # of the sum plane and diverges from here on.
                self.prefix["mass"] = self.prefix["sum"].copy()
                self.nonnegative_values = False

        weights = {"count": None}
        if vals is not None:
            weights["sum"] = vals
            if "mass" in self.prefix:
                weights["mass"] = np.abs(vals)

        width = len(self.active_pixels)
        base = max(0, num - 1)
        lin = (buckets - base) * width + cols
        slices = new_num - base
        for kind, w in weights.items():
            plane = self.prefix[kind]
            delta = np.bincount(lin, weights=w, minlength=slices * width
                                ).astype(np.float64).reshape(slices, width)
            if num > 0:
                plane[num] += delta[0]
                tail = delta[1:]
            else:
                tail = delta
            if len(tail):
                plane = np.vstack([plane, plane[-1] + np.cumsum(tail,
                                                                axis=0)])
            self.prefix[kind] = plane
        self._totals.clear()
        self._joins.clear()
        self.stats["points_total"] = (self.stats.get("points_total", 0)
                                      + len(pixel_ids))


def build_temporal_canvas_cube(
    table: PointTable,
    viewport: Viewport,
    time_column: str,
    bucket_seconds: int,
    value_column: str | None = None,
    residual_filters=(),
    origin: int | None = None,
    config: ParallelConfig | None = None,
) -> TemporalCanvasCube:
    """Bucket, scatter, and prefix-sum a table into a cube.

    Workers each scatter one contiguous *bucket shard* into a
    shared-memory delta block (the table's bucket-sorted columns are
    inherited copy-on-write through the fork); the parent cumsums the
    deltas along the bucket axis.  Points are stable-sorted by bucket
    first, so every (bucket, pixel) cell is one worker's ``bincount``
    over an order that does not depend on the worker count — results
    are bitwise-reproducible at any parallelism.
    """
    t_start = time.perf_counter()
    bucket_seconds = int(bucket_seconds)
    if bucket_seconds < 1:
        raise QueryError("bucket_seconds must be >= 1")
    col = table.column(time_column)
    if col.kind != TIMESTAMP:
        raise QueryError(
            f"{time_column!r} is not a timestamp column (kind "
            f"{col.kind!r})")
    residual_filters = tuple(residual_filters)

    mask = combine_filters(list(residual_filters)).mask(table)
    keep = np.flatnonzero(mask)
    pixel_ids, valid = viewport.pixel_ids_of(table.x[keep], table.y[keep])
    covers_all = bool(valid.all())
    if not covers_all:
        keep = keep[valid]
        pixel_ids = pixel_ids[valid]
    tvals = col.values[keep]

    values = None
    nonneg = True
    kinds = ["count"]
    if value_column is not None:
        vcol = table.column(value_column)
        if vcol.kind == "categorical":
            raise QueryError(
                f"cannot aggregate categorical column {value_column!r}")
        values = vcol.values.astype(np.float64, copy=False)[keep]
        nonneg = bool(len(values) == 0 or values.min() >= 0)
        kinds.append("sum")
        if not nonneg:
            kinds.append("mass")

    def finish(active, prefix, origin_, num_buckets, build_stats):
        build_stats.update({
            "points_total": len(table),
            "points_in_cube": int(len(pixel_ids)),
            "buckets": num_buckets,
            "active_pixels": int(len(active)),
            "build_s": time.perf_counter() - t_start,
        })
        return TemporalCanvasCube(
            viewport=viewport, time_column=time_column,
            bucket_seconds=bucket_seconds, origin=origin_,
            active_pixels=active, prefix=prefix,
            value_column=value_column, residual_filters=residual_filters,
            nonnegative_values=nonneg, covers_all_points=covers_all,
            stats=build_stats)

    if len(tvals) == 0:
        active = np.empty(0, dtype=np.int64)
        prefix = {k: np.zeros((1, 0)) for k in kinds}
        return finish(active, prefix, origin, 0, {"pooled": False})

    if origin is None:
        origin = int(tvals.min()) // bucket_seconds * bucket_seconds
    buckets = ((tvals - origin) // bucket_seconds).astype(np.int64)
    if int(buckets.min()) < 0:
        raise QueryError("points precede the cube origin")
    num_buckets = int(buckets.max()) + 1
    if num_buckets > MAX_TCUBE_SLICES:
        raise CubeError(
            f"{num_buckets} time slices exceed the cube cap "
            f"{MAX_TCUBE_SLICES}; use a coarser bucket")
    active = np.unique(pixel_ids)
    width = int(len(active))
    estimated = len(kinds) * (num_buckets + 1) * width * 8
    if estimated > MAX_TCUBE_BYTES:
        raise CubeError(
            f"cube would need ~{estimated // (1024 * 1024)} MB "
            f"(cap {MAX_TCUBE_BYTES // (1024 * 1024)} MB); use a "
            f"coarser bucket")
    cols = np.searchsorted(active, pixel_ids)

    # Stable bucket sort: shard boundaries become contiguous row ranges
    # and within-bucket order is fixed regardless of sharding.
    order = np.argsort(buckets, kind="stable")
    bsorted = buckets[order]
    csorted = cols[order]
    vsorted = values[order] if values is not None else None

    config = config or ParallelConfig()
    decision = config.decide(len(bsorted))
    workers = decision["workers"] if decision["use"] else 1
    shards = _even_ranges(num_buckets, workers)
    pooled_wanted = decision["use"] and len(shards) > 1
    block = _SharedCanvasBlock([0.0] * len(kinds), num_buckets, width,
                               shared=pooled_wanted)
    array = block.array

    def shard_task(blo: int, bhi: int) -> dict:
        ts = time.perf_counter()
        lo = int(np.searchsorted(bsorted, blo, side="left"))
        hi = int(np.searchsorted(bsorted, bhi, side="left"))
        if hi > lo:
            lin = (bsorted[lo:hi] - blo) * width + csorted[lo:hi]
            size = (bhi - blo) * width
            for k, kind in enumerate(kinds):
                if kind == "count":
                    w = None
                elif kind == "sum":
                    w = vsorted[lo:hi]
                else:
                    w = np.abs(vsorted[lo:hi])
                array[k, blo:bhi, :] = np.bincount(
                    lin, weights=w, minlength=size).reshape(bhi - blo, width)
        return {"buckets": bhi - blo, "rows": hi - lo,
                "time_s": time.perf_counter() - ts}

    try:
        per_worker, pooled = _fork_map(shard_task, shards, workers)
        prefix = {}
        for k, kind in enumerate(kinds):
            plane = np.zeros((num_buckets + 1, width))
            np.cumsum(array[k], axis=0, out=plane[1:])
            prefix[kind] = plane
    finally:
        block.close()

    return finish(active, prefix, origin, num_buckets,
                  {"pooled": pooled, "shards": len(shards),
                   "per_worker": per_worker})


# -- context probes ------------------------------------------------------------


def find_answering_cube(ctx, table: PointTable, query: SpatialAggregation,
                        viewport: Viewport) -> TemporalCanvasCube | None:
    """The first cached cube that can answer (peek only, no LRU touch)."""
    for cube in ctx.cached_tcubes(table):
        if cube is not None and cube.can_answer(query, viewport):
            return cube
    return None


def cached_time_span(ctx, table: PointTable,
                     time_column: str | None = None
                     ) -> tuple[int, int, int] | None:
    """``(tmin, tmax_exclusive, bucket_seconds)`` covered by cached cubes.

    Peeks the already-materialized temporal canvas cubes for ``table``
    (no LRU touch, no column scan) and returns the widest span any of
    them covers, with the coarsest bucket width among the covering
    cubes.  The speculation gesture model uses this to clamp
    adjacent-bucket brush predictions to time ranges the data actually
    spans — without it, a brush at the timeline's edge would speculate
    into empty buckets forever.  Returns ``None`` when no cube (with a
    known origin) is cached.
    """
    best = None
    for cube in ctx.cached_tcubes(table):
        if cube.origin is None:
            continue
        if time_column is not None and cube.time_column != time_column:
            continue
        lo = int(cube.origin)
        hi = lo + cube.num_buckets * cube.bucket_seconds
        if best is None:
            best = (lo, hi, int(cube.bucket_seconds))
        else:
            best = (min(best[0], lo), max(best[1], hi),
                    max(best[2], int(cube.bucket_seconds)))
    return best


def tcube_servable(ctx, table: PointTable, query: SpatialAggregation,
                   viewport: Viewport) -> bool:
    """Whether ``method='tcube-raster'`` could serve this query — either
    a cached cube already answers, or one build within the slice/memory
    caps would.  Cheap (no scatter); the session's brush gate."""
    if query.agg not in TCUBE_AGGREGATES:
        return False
    tr, __ = split_time_filter(query)
    if tr is None:
        return False
    if not table.has_column(tr.column) or \
            table.column(tr.column).kind != TIMESTAMP:
        return False
    if query.agg != COUNT:
        if not table.has_column(query.value_column) or \
                table.column(query.value_column).kind == "categorical":
            return False
    if find_answering_cube(ctx, table, query, viewport) is not None:
        return True
    if len(table) == 0:
        return True
    tvals = table.column(tr.column).values
    bucket = infer_bucket_seconds(tr.start, tr.end,
                                  int(tvals.min()), int(tvals.max()))
    if bucket is None:
        return False
    origin = int(tvals.min()) // bucket * bucket
    num_buckets = (int(tvals.max()) - origin) // bucket + 1
    planes = 1 if query.agg == COUNT else 2
    bound_active = min(len(table), viewport.num_pixels)
    estimated = planes * (num_buckets + 1) * bound_active * 8
    return estimated <= MAX_TCUBE_BYTES
