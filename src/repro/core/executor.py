"""Query executor and planner.

:class:`SpatialAggregationEngine` is the public entry point a front end
like Urbane talks to.  It

* picks a backend (``auto``: accurate raster join when the caller needs
  exact answers, bounded otherwise, with an epsilon knob that sizes the
  canvas);
* caches the polygon render pass per (region set, viewport) — the
  dominant reuse pattern in visual exploration, where the user brushes
  filters/time while the region resolution stays fixed;
* caches baseline indexes per table so comparisons are fair.
"""

from __future__ import annotations

import time

# Submodule imports (not the package) to stay cycle-free: repro.baselines
# re-exports these and itself depends on repro.core submodules.
from ..baselines.grid_join import grid_index_join
from ..baselines.naive import naive_join
from ..baselines.quadtree_join import quadtree_index_join
from ..baselines.rtree_join import rtree_index_join
from ..errors import QueryError
from ..index import PointGridIndex, QuadTree, RTree
from ..raster import FragmentTable, Viewport, build_fragment_table
from ..table import PointTable
from .accurate import accurate_raster_join
from .bounded import bounded_raster_join
from .bounds import resolution_for_epsilon
from .query import SpatialAggregation
from .regions import RegionSet
from .result import AggregationResult
from .tiling import tiled_bounded_raster_join

METHODS = ("auto", "bounded", "accurate", "tiled", "grid", "rtree",
           "quadtree", "naive")

DEFAULT_RESOLUTION = 512
MAX_CANVAS_RESOLUTION = 4096


class SpatialAggregationEngine:
    """Executes spatial aggregation queries with plan caching."""

    def __init__(self, default_resolution: int = DEFAULT_RESOLUTION,
                 max_canvas_resolution: int = MAX_CANVAS_RESOLUTION):
        if default_resolution < 1:
            raise QueryError("default_resolution must be positive")
        self.default_resolution = int(default_resolution)
        self.max_canvas_resolution = int(max_canvas_resolution)
        self._fragment_cache: dict[tuple, FragmentTable] = {}
        self._grid_cache: dict[int, PointGridIndex] = {}
        self._rtree_cache: dict[int, RTree] = {}
        self._quadtree_cache: dict[int, QuadTree] = {}

    # -- cache plumbing ---------------------------------------------------

    def fragments_for(self, regions: RegionSet,
                      viewport: Viewport) -> FragmentTable:
        """The (cached) polygon render pass for a region set + viewport."""
        key = (id(regions), viewport)
        table = self._fragment_cache.get(key)
        if table is None:
            table = build_fragment_table(list(regions.geometries), viewport)
            self._fragment_cache[key] = table
        return table

    def _grid_index(self, table: PointTable) -> PointGridIndex:
        index = self._grid_cache.get(id(table))
        if index is None:
            index = PointGridIndex(table.x, table.y, table.bbox,
                                   nx=128, ny=128)
            self._grid_cache[id(table)] = index
        return index

    def _rtree_index(self, table: PointTable) -> RTree:
        index = self._rtree_cache.get(id(table))
        if index is None:
            index = RTree.from_points(table.x, table.y, leaf_capacity=64)
            self._rtree_cache[id(table)] = index
        return index

    def _quadtree_index(self, table: PointTable) -> QuadTree:
        index = self._quadtree_cache.get(id(table))
        if index is None:
            index = QuadTree(table.x, table.y, table.bbox, capacity=256)
            self._quadtree_cache[id(table)] = index
        return index

    def clear_caches(self) -> None:
        self._fragment_cache.clear()
        self._grid_cache.clear()
        self._rtree_cache.clear()
        self._quadtree_cache.clear()

    # -- planning -----------------------------------------------------------

    def plan_viewport(self, regions: RegionSet, resolution: int | None,
                      epsilon: float | None) -> Viewport:
        """Resolve the canvas for a query.

        ``epsilon`` (world units) wins over ``resolution``; the canvas is
        sized so the pixel diagonal honors it.
        """
        if epsilon is not None:
            resolution = resolution_for_epsilon(
                regions.bbox, epsilon,
                max_resolution=self.max_canvas_resolution)
        if resolution is None:
            resolution = self.default_resolution
        if resolution > self.max_canvas_resolution:
            raise QueryError(
                f"resolution {resolution} exceeds the canvas cap "
                f"{self.max_canvas_resolution}; use method='tiled'")
        return Viewport.fit(regions.bbox, resolution)

    # -- execution -----------------------------------------------------------

    def execute(
        self,
        table: PointTable,
        regions: RegionSet,
        query: SpatialAggregation,
        method: str = "auto",
        resolution: int | None = None,
        epsilon: float | None = None,
        exact: bool = False,
        viewport: Viewport | None = None,
    ) -> AggregationResult:
        """Run one spatial aggregation query.

        ``method='auto'`` chooses the accurate raster join when ``exact``
        is requested and the bounded one otherwise.  Explicit methods
        (``bounded`` / ``accurate`` / ``tiled`` / ``grid`` / ``rtree`` /
        ``naive``) bypass planning — the benchmark harness uses them.
        """
        if method not in METHODS:
            raise QueryError(
                f"unknown method {method!r}; expected one of {METHODS}")
        t0 = time.perf_counter()

        if method == "auto":
            method = "accurate" if exact else "bounded"

        if method in ("bounded", "accurate"):
            if viewport is None:
                viewport = self.plan_viewport(regions, resolution, epsilon)
            fragments = self.fragments_for(regions, viewport)
            run = (bounded_raster_join if method == "bounded"
                   else accurate_raster_join)
            result = run(table, regions, query, viewport,
                         fragments=fragments)
        elif method == "tiled":
            result = tiled_bounded_raster_join(
                table, regions, query,
                resolution=resolution or self.default_resolution)
        elif method == "grid":
            result = grid_index_join(table, regions, query,
                                     index=self._grid_index(table))
        elif method == "rtree":
            result = rtree_index_join(table, regions, query,
                                      index=self._rtree_index(table))
        elif method == "quadtree":
            result = quadtree_index_join(
                table, regions, query, index=self._quadtree_index(table))
        else:
            result = naive_join(table, regions, query)

        result.stats["time_execute_s"] = time.perf_counter() - t0
        return result

    def execute_multi(
        self,
        table: PointTable,
        regions: RegionSet,
        queries: list[SpatialAggregation],
        resolution: int | None = None,
        epsilon: float | None = None,
        viewport: Viewport | None = None,
    ) -> list[AggregationResult]:
        """Evaluate several aggregates in shared render passes.

        Queries with identical filter lists share the filter mask and
        point projection (the GPU's multiple-render-targets trick);
        results align with ``queries``.  Bounded variant only.
        """
        from .multipass import bounded_raster_join_multi

        if viewport is None:
            viewport = self.plan_viewport(regions, resolution, epsilon)
        fragments = self.fragments_for(regions, viewport)
        return bounded_raster_join_multi(table, regions, queries, viewport,
                                         fragments=fragments)

    def compare(
        self,
        table: PointTable,
        regions: RegionSet,
        query: SpatialAggregation,
        methods: tuple[str, ...] = ("bounded", "accurate", "grid"),
        resolution: int | None = None,
    ) -> dict[str, AggregationResult]:
        """Run the same query through several backends (harness helper)."""
        return {
            m: self.execute(table, regions, query, method=m,
                            resolution=resolution)
            for m in methods
        }
