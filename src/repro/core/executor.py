"""The execution facade.

:class:`SpatialAggregationEngine` is the public entry point a front end
like Urbane talks to.  Since the multi-layer refactor it is a thin
facade over three explicit layers:

* the **backend registry** (:mod:`repro.core.backends`) — every
  strategy (raster variants, index joins, naive scan, data cube) behind
  one :class:`~repro.core.backends.Backend` interface, resolved by name
  with no if/elif dispatch;
* the **cost-based planner** (:mod:`repro.core.planner`) —
  ``method="auto"`` prices the capability-eligible backends from table/
  region statistics, the requested precision, and cache state, and
  records the decision in ``result.stats["plan"]``;
* the **unified cache** (:mod:`repro.core.cache`, owned by the
  :class:`~repro.core.context.ExecutionContext`) — fragment tables,
  point indexes, and cubes keyed by content fingerprints with LRU
  eviction, byte accounting, and hit/miss counters surfaced in
  ``result.stats["cache"]``.
"""

from __future__ import annotations

import time

from ..errors import GeometryError, QueryCancelled, QueryError
from ..obs.trace import span
from ..raster import FragmentTable, Viewport
from ..table import PointTable
from .backends import ExecutionPlan, backend_names, get_backend, has_backend
from .context import (
    DEFAULT_RESOLUTION,
    MAX_CANVAS_RESOLUTION,
    ExecutionContext,
)
from .parallel import ParallelConfig
from .planner import CostBasedPlanner
from .query import SpatialAggregation
from .regions import RegionSet
from .result import AggregationResult

#: The built-in methods; custom backends registered via
#: :func:`repro.core.backends.register_backend` are accepted too.
METHODS = ("auto", "bounded", "accurate", "tiled", "grid", "rtree",
           "quadtree", "naive", "cube", "tcube-raster")


class SpatialAggregationEngine:
    """Facade over the registry, the planner, and the unified cache."""

    def __init__(self, default_resolution: int = DEFAULT_RESOLUTION,
                 max_canvas_resolution: int = MAX_CANVAS_RESOLUTION,
                 cache_max_bytes: int = 256 * 1024 * 1024,
                 cache_max_entries: int = 512,
                 planner: CostBasedPlanner | None = None,
                 parallel: ParallelConfig | None = None,
                 workers: int | None = None,
                 kernel: str = "auto"):
        # ``workers`` is the one-knob shortcut (CLI ``--workers``);
        # ``parallel`` carries the full tuning surface.  Given both, the
        # explicit worker count wins.
        if parallel is None:
            parallel = ParallelConfig(workers=workers)
        elif workers is not None:
            parallel = parallel.with_workers(workers)
        self.ctx = ExecutionContext(
            default_resolution=default_resolution,
            max_canvas_resolution=max_canvas_resolution,
            cache_max_bytes=cache_max_bytes,
            cache_max_entries=cache_max_entries,
            parallel=parallel,
            kernel=kernel)
        self.planner = planner or CostBasedPlanner()

    # -- configuration passthrough ----------------------------------------

    @property
    def default_resolution(self) -> int:
        return self.ctx.default_resolution

    @property
    def max_canvas_resolution(self) -> int:
        return self.ctx.max_canvas_resolution

    # -- cache facade ------------------------------------------------------

    def fragments_for(self, regions: RegionSet,
                      viewport: Viewport) -> FragmentTable:
        """The (cached) polygon render pass for a region set + viewport."""
        return self.ctx.fragments_for(regions, viewport)

    def clear_caches(self) -> None:
        self.ctx.cache.clear()

    def cache_stats(self) -> dict:
        """Unified-cache counters: hits, misses, evictions, bytes."""
        return self.ctx.cache.stats()

    # -- planning ----------------------------------------------------------

    def plan_viewport(self, regions: RegionSet, resolution: int | None,
                      epsilon: float | None) -> Viewport:
        """Resolve the canvas for a query (epsilon wins over resolution)."""
        return self.ctx.plan_viewport(regions, resolution, epsilon)

    def plan_grid_viewport(self, regions: RegionSet,
                           resolution: int | None = None,
                           epsilon: float | None = None):
        """Like :meth:`plan_viewport`, pinned to a canvas grid so
        pan/zoom gestures reuse cached pyramid blocks."""
        return self.ctx.plan_grid_viewport(regions, resolution, epsilon)

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        table: PointTable,
        regions: RegionSet,
        query: SpatialAggregation,
        method: str = "auto",
        resolution: int | None = None,
        epsilon: float | None = None,
        exact: bool = False,
        viewport: Viewport | None = None,
        deadline_ms: float | None = None,
        cancel=None,
    ) -> AggregationResult:
        """Run one spatial aggregation query.

        ``method='auto'`` routes through the cost-based planner; any
        registered backend name runs that backend directly (the
        benchmark harness does this).  ``deadline_ms`` enables
        deadline-aware planning: if the cost model predicts a miss, the
        planner degrades the plan (exact -> bounded, then a coarser
        canvas) and records it in ``stats["plan"]["degraded"]``.
        ``cancel`` is a ``threading.Event``-like token checked before
        dispatch (and between tiles on the tiled path); once set the
        query raises :class:`~repro.errors.QueryCancelled`.  Every
        result carries ``stats["plan"]`` (the decision and its inputs)
        and ``stats["cache"]`` (unified-cache counters, including this
        query's own hits/misses).
        """
        t0 = time.perf_counter()
        if resolution is not None and resolution < 1:
            # Fail loudly whichever backend the plan lands on.
            raise GeometryError(
                f"resolution must be positive, got {resolution}")
        plan = ExecutionPlan(
            table=table, regions=regions, query=query, method=method,
            resolution=resolution, epsilon=epsilon, exact=exact,
            viewport=viewport, deadline_ms=deadline_ms, cancel=cancel)

        # Out-of-core datasets take the partition-streamed store path;
        # imported lazily so repro.core never depends on repro.store at
        # module load (store's execution imports core's kernels).
        from ..store.dataset import Dataset

        if isinstance(table, Dataset):
            from ..store.execute import execute_dataset

            if cancel is not None and cancel.is_set():
                raise QueryCancelled("query cancelled before dispatch")
            hits0, misses0 = self.ctx.cache.hits, self.ctx.cache.misses
            blocks0 = self.ctx.cache.block_snapshot()
            with span("store.execute") as s:
                result = execute_dataset(self.ctx, plan, method=method)
            s.set(rows=result.stats.get("points_after_filter"))
            self._attach_stats(result, plan, hits0, misses0, blocks0, t0)
            return result

        if method == "auto":
            with span("plan") as s:
                chosen = self.planner.choose(self.ctx, plan)
            s.set(chosen=chosen)
        else:
            if not has_backend(method):
                raise QueryError(
                    f"unknown method {method!r}; expected one of "
                    f"{('auto',) + backend_names()}")
            chosen = method
            plan.decision = {
                "inputs": self.planner.plan_inputs(self.ctx, plan),
                "decision": {"chosen": chosen, "planned": False},
                "parallel": None,
                "shards": None,
                "degraded": None,
            }

        if cancel is not None and cancel.is_set():
            raise QueryCancelled("query cancelled before dispatch")
        hits0, misses0 = self.ctx.cache.hits, self.ctx.cache.misses
        blocks0 = self.ctx.cache.block_snapshot()
        with span("backend.run", backend=chosen):
            result = get_backend(chosen).run(self.ctx, plan)
        self._attach_stats(result, plan, hits0, misses0, blocks0, t0)
        if plan.decision.get("decision", {}).get("planned"):
            # Feed the observed latency back into the planner's
            # units-per-second calibration for future deadline checks.
            cost = plan.decision["decision"]["costs"].get(chosen)
            if cost is not None and cost != float("inf"):
                self.planner.observe(cost, time.perf_counter() - t0)
        return result

    def _attach_stats(self, result: AggregationResult, plan: ExecutionPlan,
                      hits0: int, misses0: int, blocks0: dict,
                      t0: float) -> None:
        result.stats["plan"] = plan.decision
        if isinstance(plan.decision, dict):
            # Which compiled-kernel implementation ran the hot loops —
            # every path (planned, explicit, store, multi) goes through
            # here, so the selection is visible on every result.
            plan.decision["kernel"] = self.ctx.kernel_info()
        cache = self.ctx.cache.stats()
        cache["query_hits"] = self.ctx.cache.hits - hits0
        cache["query_misses"] = self.ctx.cache.misses - misses0
        # Per-query block-tier reuse: the delta of the global ledger
        # over this execution (zeros when the query never touched the
        # pyramid path).
        blocks1 = self.ctx.cache.block_snapshot()
        delta = {k: blocks1[k] - blocks0[k] for k in blocks1}
        pixels = delta["assembled_pixels"] + delta["scattered_pixels"]
        delta["reuse_fraction"] = (delta["assembled_pixels"] / pixels
                                   if pixels else 0.0)
        cache["blocks"] = delta
        result.stats["cache"] = cache
        result.stats["time_execute_s"] = time.perf_counter() - t0

    def execute_multi(
        self,
        table: PointTable,
        regions: RegionSet,
        queries: list[SpatialAggregation],
        resolution: int | None = None,
        epsilon: float | None = None,
        viewport: Viewport | None = None,
    ) -> list[AggregationResult]:
        """Evaluate several aggregates in shared render passes.

        Queries with identical filter lists share the filter mask and
        point projection (the GPU's multiple-render-targets trick);
        results align with ``queries``.  Bounded variant only.
        """
        from .multipass import bounded_raster_join_multi

        t0 = time.perf_counter()
        hits0, misses0 = self.ctx.cache.hits, self.ctx.cache.misses
        blocks0 = self.ctx.cache.block_snapshot()
        if viewport is None:
            viewport = self.plan_viewport(regions, resolution, epsilon)
        fragments = self.ctx.fragments_for(regions, viewport)
        results = bounded_raster_join_multi(table, regions, queries,
                                            viewport, fragments=fragments)
        for query, result in zip(queries, results):
            plan = ExecutionPlan(
                table=table, regions=regions, query=query,
                method="bounded", resolution=resolution, epsilon=epsilon,
                viewport=viewport,
                decision={"inputs": None,
                          "decision": {"chosen": "bounded",
                                       "planned": False,
                                       "multi": len(queries)},
                          "parallel": None,
                          "shards": None,
                          "degraded": None})
            self._attach_stats(result, plan, hits0, misses0, blocks0, t0)
        return results

    def compare(
        self,
        table: PointTable,
        regions: RegionSet,
        query: SpatialAggregation,
        methods: tuple[str, ...] = ("bounded", "accurate", "grid"),
        resolution: int | None = None,
        epsilon: float | None = None,
        exact: bool = False,
        viewport: Viewport | None = None,
    ) -> dict[str, AggregationResult]:
        """Run the same query through several backends (harness helper).

        Threads the full kwarg set through, so each method runs exactly
        the plan the engine would run for it.
        """
        return {
            m: self.execute(table, regions, query, method=m,
                            resolution=resolution, epsilon=epsilon,
                            exact=exact, viewport=viewport)
            for m in methods
        }
