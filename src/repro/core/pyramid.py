"""Hierarchical canvas pyramid: block-keyed partial-aggregate reuse.

The GeoBlocks observation: interactive gestures overlap.  A pan shares
most of its canvas with the previous frame, a zoom-out is exactly a 2x
reduction of what was already scattered, and a nudged polygon set needs
no point pass at all.  This module refactors canvas production around
that reuse:

* :class:`CanvasGrid` — a world-anchored pixel lattice.  Every level-0
  pixel, every coarser pyramid level, and every ``block x block`` cache
  block is defined by integer coordinates on this one grid, so two
  viewports that overlap in the world share block *identities*, not
  just values.
* :class:`GridViewport` — a :class:`~repro.raster.Viewport` pinned to a
  grid: its world->pixel transform goes through the grid anchor and an
  integer shift (``base_col >> level``), so the direct scatter path and
  the block-assembly path classify every point identically — the root
  of the bitwise-parity guarantee.  ``pan``/``zoom`` return grid-
  snapped viewports, so adjacent gestures produce value-equal keys.
* :func:`assemble_canvases` — produce a query's canvases by pasting
  cached blocks, deriving coarse blocks from cached finer ones (a 2x2
  reduction, see :mod:`repro.raster.pyramid`), and scattering only the
  uncovered delta.  Blocks are cached *full* (never clipped to the
  viewport) under the unified cache's byte budget, so an edge block
  scattered for one frame serves complete for the next pan.

Invalidation is generation-checked, not presence-checked: block keys
embed ``fingerprint(table)``, which carries the table's revision
counter.  A stream append or store spill bumps the revision
(:func:`~repro.core.cache.bump_revision`), which changes every derived
key at every level at once — a coarser ancestor surviving an eviction
of its level-0 source can never answer for the new generation, because
no new-generation key can reach it.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from ..geometry import BBox
from ..obs.trace import span
from ..raster import (
    FragmentTable,
    Viewport,
    scatter_count,
    scatter_max,
    scatter_min,
    scatter_sum,
)
from ..raster.pyramid import PYRAMID_OPS, reduce2x2
from ..table import PointTable
from .aggregates import AVG, BOUNDABLE_AGGREGATES, COUNT, MAX, MIN, SUM
from .bounded import _join_covered
from .bounds import boundary_mass_bounds, epsilon_for_viewport
from .cache import fingerprint
from .query import SpatialAggregation
from .regions import RegionSet
from .result import AggregationResult
from .tiling import grid_block_tiles

#: Side length of one cache block, in pixels (any level).
DEFAULT_BLOCK = 128

#: Canvas fill where no point landed, per kind.
_FILL = {"count": 0.0, "sum": 0.0, "mass": 0.0,
         "min": np.inf, "max": -np.inf}

#: Kinds whose 2x2 reduction is bitwise-exact for *any* value column:
#: COUNT canvases hold small integers (exact float addition) and
#: min/max propagation is order-free.  ``sum``/``mass`` join this set
#: only when the value column is proven integer-valued (see
#: :func:`column_is_integral`); otherwise a derived coarse sum could
#: differ from a fresh scatter by reassociation round-off, breaking the
#: bitwise contract.
_ALWAYS_DERIVABLE = frozenset({"count", "min", "max"})


def canvas_kinds(agg: str) -> tuple[str, ...]:
    """The canvas kinds a query's assembly must produce.

    SUM carries ``mass`` (the ``|v|`` scatter feeding the boundary
    bounds) as a first-class kind so bound canvases enjoy the same
    block reuse as estimates.
    """
    if agg == COUNT:
        return ("count",)
    if agg == SUM:
        return ("sum", "mass")
    if agg == AVG:
        return ("count", "sum")
    if agg == MIN:
        return ("min",)
    if agg == MAX:
        return ("max",)
    raise ValueError(f"unsupported aggregate {agg!r}")


@dataclass(frozen=True)
class CanvasGrid:
    """A world-anchored pixel lattice shared by a family of viewports.

    ``(x0, y0)`` is the world position of base pixel ``(0, 0)``'s
    corner; ``pw``/``ph`` are the base (level-0) pixel extents.  The
    grid is a pure value — two grids with equal fields are the same
    grid, hash-equal in every cache key.
    """

    x0: float
    y0: float
    pw: float
    ph: float
    block: int = DEFAULT_BLOCK

    @classmethod
    def from_viewport(cls, viewport: Viewport,
                      block: int = DEFAULT_BLOCK) -> "CanvasGrid":
        """Anchor a grid at a planned viewport's origin and pixel size."""
        return cls(viewport.bbox.xmin, viewport.bbox.ymin,
                   viewport.pixel_width, viewport.pixel_height, int(block))

    def viewport(self, level: int, col0: int, row0: int,
                 width: int, height: int) -> "GridViewport":
        """The viewport spanning level-``level`` pixel columns
        ``[col0, col0+width)`` and rows ``[row0, row0+height)``."""
        scale = float(1 << level)
        pw = self.pw * scale
        ph = self.ph * scale
        bbox = BBox(self.x0 + col0 * pw, self.y0 + row0 * ph,
                    self.x0 + (col0 + width) * pw,
                    self.y0 + (row0 + height) * ph)
        return GridViewport(bbox=bbox, width=int(width), height=int(height),
                            grid=self, level=int(level),
                            col0=int(col0), row0=int(row0))


@dataclass(frozen=True)
class GridViewport(Viewport):
    """A viewport snapped to a :class:`CanvasGrid`.

    The world->pixel transform is overridden to go through the grid:
    the base-pixel index ``floor((x - x0) / pw)`` is computed once, then
    shifted right by ``level`` (arithmetic shift == exact floor
    division) and offset by ``col0``.  Because :meth:`Viewport
    .pixel_ids_of` delegates to :meth:`pixel_of`, every consumer — the
    direct scatter, the block scatter, the tiled point pass — classifies
    points with the *same* float operations, which is what makes
    assembled and direct answers bitwise-identical.

    Equality/hash come from the dataclass fields, so two gestures that
    land on the same ``(grid, level, col0, row0)`` produce value-equal
    viewports and therefore identical cache keys — no float round-trip
    can split them.
    """

    grid: CanvasGrid
    level: int
    col0: int
    row0: int

    def pixel_of(self, x, y) -> tuple[np.ndarray, np.ndarray]:
        g = self.grid
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        ix = np.floor((x - g.x0) / g.pw).astype(np.int64)
        iy = np.floor((y - g.y0) / g.ph).astype(np.int64)
        return (ix >> self.level) - self.col0, (iy >> self.level) - self.row0

    @property
    def base_origin(self) -> tuple[int, int]:
        """(col, row) of the top-left pixel in base (level-0) units."""
        return self.col0 << self.level, self.row0 << self.level

    # -- grid-snapped gestures -------------------------------------------

    def pan(self, dx_pixels: float, dy_pixels: float) -> "GridViewport":
        """Shift by a whole number of pixels at this level.

        Fractional offsets snap to the nearest integer so the result
        stays on the block lattice; panning right then left returns the
        *identical* viewport value, not a float neighbor of it.
        """
        return self.grid.viewport(
            self.level,
            self.col0 + int(round(dx_pixels)),
            self.row0 + int(round(dy_pixels)),
            self.width, self.height)

    def zoom(self, factor: float) -> "GridViewport":
        """Zoom by (approximately) ``factor``, snapped to a power of two.

        ``factor`` > 1 widens the window (zoom out, coarser pyramid
        level); < 1 narrows it.  The window center stays fixed up to
        grid snapping, and zooming below level 0 clamps — the base grid
        is the finest data the pyramid holds.
        """
        if factor <= 0:
            raise ValueError(f"zoom factor must be positive, got {factor}")
        steps = int(round(math.log2(factor)))
        new_level = max(0, self.level + steps)
        if new_level == self.level:
            return self
        # Re-center in base-pixel units, then snap to the new level.
        cx = (self.col0 + self.width / 2.0) * (1 << self.level)
        cy = (self.row0 + self.height / 2.0) * (1 << self.level)
        scale = 1 << new_level
        col0 = int(round(cx / scale - self.width / 2.0))
        row0 = int(round(cy / scale - self.height / 2.0))
        return self.grid.viewport(new_level, col0, row0,
                                  self.width, self.height)


def grid_viewport_for(viewport: Viewport,
                      block: int = DEFAULT_BLOCK) -> GridViewport:
    """Pin a planned viewport to its own level-0 canvas grid.

    The result renders the same world window at the same resolution;
    it just *also* carries the grid identity that makes its canvases
    assemble from (and contribute to) the block cache.
    """
    if isinstance(viewport, GridViewport):
        return viewport
    grid = CanvasGrid.from_viewport(viewport, block)
    return grid.viewport(0, 0, 0, viewport.width, viewport.height)


# -- block cache plumbing --------------------------------------------------


def block_key(table_fp: tuple, query: SpatialAggregation, kind: str,
              grid: CanvasGrid, level: int, bx: int, by: int) -> tuple:
    """Cache key of one block plane.

    ``table_fp`` embeds the table's revision counter, so invalidation
    is generational: appends/spills bump the revision and every block
    of every level becomes unreachable at once (a stale entry may stay
    resident until evicted, but no current-generation query can key to
    it).
    """
    return ("canvas-block", table_fp, repr(query.filters),
            query.value_column, kind, grid, level, bx, by)


def _filter_mask(ctx, table: PointTable, query: SpatialAggregation):
    """Cached boolean filter mask (None when the query has no filters)."""
    if not query.filters:
        return None
    key = ("filter-mask", fingerprint(table), repr(query.filters))
    return ctx.cache.get_or_build(key, lambda: query.filter_mask(table))


def filtered_count(ctx, table: PointTable,
                   query: SpatialAggregation) -> int:
    """Row count surviving the query's filters (cached mask)."""
    mask = _filter_mask(ctx, table, query)
    return len(table) if mask is None else int(mask.sum())


def column_is_integral(ctx, table: PointTable, column: str) -> bool:
    """Whether every value of ``column`` is an exact small-enough
    integer (< 2^53), i.e. whether float summation of any subset in any
    association is exact — the license to derive coarse SUM blocks by
    2x2 reduction instead of re-scattering.  Cached per (table, column).
    """
    key = ("column-integral", fingerprint(table), column)

    def probe() -> bool:
        values = np.asarray(table.column(column).values)
        if values.dtype.kind in "iub":
            return bool(np.all(np.abs(values.astype(np.float64)) < 2.0 ** 53))
        if values.dtype.kind != "f":
            return False
        return bool(np.all(np.isfinite(values))
                    and np.all(values == np.floor(values))
                    and np.all(np.abs(values) < 2.0 ** 53))

    return bool(ctx.cache.get_or_build(key, probe))


def memory_block_scatter(ctx, table: PointTable, query: SpatialAggregation,
                         viewport: GridViewport):
    """Block scatter source over an in-memory table.

    Candidates come from the cached :class:`~repro.index.PointGridIndex`
    over a world bbox padded by one base pixel — a superset; exact
    membership is decided by the canonical grid transform, so a point
    lands in a block's plane iff the direct path would put it in the
    same absolute pixel.  Candidates are sorted ascending so bincount
    accumulates each pixel's contributions in the direct path's row
    order (bit-for-bit identical partial sums).
    """
    grid = viewport.grid
    level = viewport.level
    size = grid.block
    scale = 1 << level
    index = ctx.grid_index(table)
    mask = _filter_mask(ctx, table, query)
    lazy: dict = {}

    def values() -> np.ndarray:
        if "v" not in lazy:
            lazy["v"] = query.values_for(table)
        return lazy["v"]

    def scatter(bx: int, by: int, kinds: tuple[str, ...]):
        c0 = bx * size * scale
        r0 = by * size * scale
        bbox = BBox(grid.x0 + (c0 - 1) * grid.pw,
                    grid.y0 + (r0 - 1) * grid.ph,
                    grid.x0 + (c0 + size * scale + 1) * grid.pw,
                    grid.y0 + (r0 + size * scale + 1) * grid.ph)
        cand = index.query_bbox(bbox)
        if len(cand):
            cand = np.sort(cand)
            if mask is not None:
                cand = cand[mask[cand]]
        gx = np.floor((table.x[cand] - grid.x0) / grid.pw).astype(np.int64)
        gy = np.floor((table.y[cand] - grid.y0) / grid.ph).astype(np.int64)
        lx = (gx >> level) - bx * size
        ly = (gy >> level) - by * size
        keep = (lx >= 0) & (lx < size) & (ly >= 0) & (ly < size)
        if not keep.all():
            cand, lx, ly = cand[keep], lx[keep], ly[keep]
        pix = ly * size + lx
        num = size * size
        vals = values()[cand] if any(k != "count" for k in kinds) else None
        planes = {}
        for kind in kinds:
            if kind == "count":
                planes[kind] = scatter_count(pix, num).reshape(size, size)
            elif kind == "sum":
                planes[kind] = scatter_sum(pix, vals, num).reshape(size, size)
            elif kind == "mass":
                planes[kind] = scatter_sum(pix, np.abs(vals),
                                           num).reshape(size, size)
            elif kind == "min":
                planes[kind] = scatter_min(pix, vals, num).reshape(size, size)
            else:
                planes[kind] = scatter_max(pix, vals, num).reshape(size, size)
        return planes, int(len(pix))

    return scatter


def assemble_canvases(ctx, table: PointTable, query: SpatialAggregation,
                      viewport: GridViewport, scatter,
                      derive_sums: bool) -> tuple[dict, dict]:
    """Produce the query's canvases from the block cache + delta scatter.

    Per block, in preference order: reuse a cached plane; derive it from
    four cached children one level down (2x2 reduction — the zoom-out
    path); scatter it fresh via ``scatter(bx, by, missing_kinds)``.
    Fresh and derived planes are cached full-size, so the *next* gesture
    assembles from them.  Returns ``({kind: flat canvas}, reuse info)``.
    """
    grid = viewport.grid
    level = viewport.level
    size = grid.block
    kinds = canvas_kinds(query.agg)
    table_fp = fingerprint(table)
    cache = ctx.cache
    shape = (viewport.height, viewport.width)
    canvases = {k: np.full(shape, _FILL[k], dtype=np.float64)
                for k in kinds}
    info = {"blocks": 0, "hits": 0, "derived": 0, "scattered": 0,
            "assembled_pixels": 0, "scattered_pixels": 0,
            "points_scattered": 0}

    def key(kind, lvl, bx, by):
        return block_key(table_fp, query, kind, grid, lvl, bx, by)

    with span("pyramid.assemble") as sp:
        for bx, by, view_sl, block_sl in grid_block_tiles(viewport):
            info["blocks"] += 1
            visible = ((view_sl[0].stop - view_sl[0].start)
                       * (view_sl[1].stop - view_sl[1].start))
            planes = {}
            missing = []
            for kind in kinds:
                plane = cache.get(key(kind, level, bx, by))
                if plane is None:
                    missing.append(kind)
                else:
                    planes[kind] = plane
            derived = False
            if missing and level > 0 and all(
                    k in _ALWAYS_DERIVABLE or derive_sums for k in missing):
                children = {}
                for kind in missing:
                    quads = [cache.peek(key(kind, level - 1,
                                            2 * bx + rx, 2 * by + ry))
                             for ry in (0, 1) for rx in (0, 1)]
                    if any(q is None for q in quads):
                        children = None
                        break
                    children[kind] = quads
                if children is not None:
                    for kind in missing:
                        tl, tr, bl, br = children[kind]
                        quad = np.empty((2 * size, 2 * size),
                                        dtype=np.float64)
                        quad[:size, :size] = tl
                        quad[:size, size:] = tr
                        quad[size:, :size] = bl
                        quad[size:, size:] = br
                        plane = reduce2x2(quad, PYRAMID_OPS[kind])
                        cache.put(key(kind, level, bx, by), plane)
                        planes[kind] = plane
                    missing = []
                    derived = True
            if missing:
                fresh, points = scatter(bx, by, tuple(missing))
                for kind, plane in fresh.items():
                    cache.put(key(kind, level, bx, by), plane)
                    planes[kind] = plane
                info["scattered"] += 1
                info["scattered_pixels"] += visible
                info["points_scattered"] += points
            else:
                info["derived" if derived else "hits"] += 1
                info["assembled_pixels"] += visible
            for kind in kinds:
                canvases[kind][view_sl] = planes[kind][block_sl]
    sp.set(blocks=info["blocks"], hits=info["hits"],
           derived=info["derived"], scattered=info["scattered"])

    cache.note_blocks(
        hits=info["hits"], misses=info["scattered"],
        derived=info["derived"],
        assembled_pixels=info["assembled_pixels"],
        scattered_pixels=info["scattered_pixels"])
    return {k: v.ravel() for k, v in canvases.items()}, info


def block_coverage(ctx, table: PointTable, query: SpatialAggregation,
                   viewport: GridViewport) -> float:
    """Fraction of viewport pixels servable from cached blocks.

    A peek-only probe (no LRU touches, no hit/miss counters) the
    planner uses to discount the bounded backend's point-pass cost —
    how ``method="auto"`` prices assembly against re-scatter.
    """
    grid = viewport.grid
    level = viewport.level
    kinds = canvas_kinds(query.agg)
    table_fp = fingerprint(table)
    cache = ctx.cache
    derive_sums = (query.value_column is None or bool(cache.peek(
        ("column-integral", table_fp, query.value_column))))

    def key(kind, lvl, bx, by):
        return block_key(table_fp, query, kind, grid, lvl, bx, by)

    total = covered = 0
    for bx, by, view_sl, __ in grid_block_tiles(viewport):
        visible = ((view_sl[0].stop - view_sl[0].start)
                   * (view_sl[1].stop - view_sl[1].start))
        total += visible
        servable = True
        for kind in kinds:
            if cache.peek(key(kind, level, bx, by)) is not None:
                continue
            if (level > 0 and (kind in _ALWAYS_DERIVABLE or derive_sums)
                    and all(cache.peek(key(kind, level - 1,
                                           2 * bx + rx, 2 * by + ry))
                            is not None
                            for ry in (0, 1) for rx in (0, 1))):
                continue
            servable = False
            break
        if servable:
            covered += visible
    return covered / total if total else 0.0


def assembled_bounded_join(
    ctx,
    table: PointTable,
    regions: RegionSet,
    query: SpatialAggregation,
    viewport: GridViewport,
    fragments: FragmentTable | None = None,
    scatter=None,
    derive_sums: bool | None = None,
    points_after_filter: int | None = None,
    method: str = "pyramid-raster-join",
) -> AggregationResult:
    """The bounded raster join, produced by pyramid assembly.

    Identical join and bound math to :func:`~repro.core.bounded
    .bounded_raster_join` — only the canvases' provenance differs, and
    the block scatter reproduces the direct scatter's accumulation
    order, so the answers (estimate, lower, upper) are bitwise-equal
    for COUNT/SUM/MIN/MAX and within reassociation round-off for AVG.

    ``scatter`` defaults to the in-memory grid-index source; the store
    path passes its partition-streaming source instead.
    """
    t0 = time.perf_counter()
    if fragments is None:
        fragments = ctx.fragments_for(regions, viewport)
    t_polygons = time.perf_counter() - t0

    t1 = time.perf_counter()
    if scatter is None:
        scatter = memory_block_scatter(ctx, table, query, viewport)
        if points_after_filter is None:
            points_after_filter = filtered_count(ctx, table, query)
    if derive_sums is None:
        derive_sums = (query.value_column is None
                       or column_is_integral(ctx, table, query.value_column))
    canvases, info = assemble_canvases(ctx, table, query, viewport,
                                       scatter, bool(derive_sums))
    t_points = time.perf_counter() - t1

    t2 = time.perf_counter()
    estimate = _join_covered(fragments, canvases, query.agg)
    lower = upper = None
    if query.agg in BOUNDABLE_AGGREGATES:
        mass = canvases["count" if query.agg == COUNT else "mass"]
        lower, upper = boundary_mass_bounds(fragments, estimate, mass)
    t_join = time.perf_counter() - t2

    assembled = info["assembled_pixels"]
    total = assembled + info["scattered_pixels"]
    if "count" in canvases:
        in_viewport = int(round(float(canvases["count"].sum())))
    else:
        in_viewport = info["points_scattered"]
    stats = {
        "points_total": len(table),
        "points_after_filter": (points_after_filter
                                if points_after_filter is not None
                                else info["points_scattered"]),
        "points_in_viewport": in_viewport,
        "time_polygon_pass_s": t_polygons,
        "time_point_pass_s": t_points,
        "time_join_s": t_join,
        "interior_fragments": fragments.num_interior_fragments,
        "boundary_fragments": fragments.num_boundary_fragments,
        "canvas_pixels": viewport.num_pixels,
        "epsilon_world_units": epsilon_for_viewport(viewport),
        "pyramid": {
            "level": viewport.level,
            "block": viewport.grid.block,
            "blocks": info["blocks"],
            "hits": info["hits"],
            "derived": info["derived"],
            "scattered": info["scattered"],
            "assembled_pixels": assembled,
            "scattered_pixels": info["scattered_pixels"],
            "points_scattered": info["points_scattered"],
            "reuse_fraction": assembled / total if total else 0.0,
        },
    }
    return AggregationResult(
        regions=regions,
        values=estimate,
        method=method,
        lower=lower,
        upper=upper,
        exact=False,
        stats=stats,
    )
