"""One-pass region x time aggregation (the timeline heat matrix).

Urbane's timeline view, crossed with the map: an aggregate per (region,
time bucket) pair, e.g. taxi pickups per neighborhood per day.  Issuing
one raster join per bucket would re-render the points T times; instead
the raster join's labeling by-product is reused — rasterizing a region
*partition* yields a pixel -> region map, each point inherits its
pixel's label in O(1), and one ``bincount`` over (region, bucket) pairs
produces the whole matrix.

Like the bounded raster join, labels are pixel-center approximations
with the same one-pixel-diagonal guarantee; regions are assumed to be a
partition (later region ids win on painted overlap).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import QueryError
from ..raster import FragmentTable, Viewport, build_fragment_table
from ..table import PointTable, combine_filters
from .regions import RegionSet


def pixel_region_labels(fragments: FragmentTable) -> np.ndarray:
    """Flat pixel -> region id map (-1 = no region) from a fragment
    table.  Covered-boundary pixels paint first so interior claims win
    where they disagree."""
    labels = np.full(fragments.viewport.num_pixels, -1, dtype=np.int32)
    labels[fragments.covered_boundary_pixels] = (
        fragments.covered_boundary_polys)
    labels[fragments.interior_pixels] = fragments.interior_polys
    return labels


@dataclass
class RegionTimeMatrix:
    """Aggregate values per (region, time bucket)."""

    regions: RegionSet
    bucket_starts: np.ndarray   # (T,) epoch seconds
    values: np.ndarray          # (R, T)
    bucket_seconds: int
    stats: dict

    @property
    def num_buckets(self) -> int:
        return len(self.bucket_starts)

    def series_for(self, region_name: str) -> np.ndarray:
        """One region's time series."""
        return self.values[self.regions.id_of(region_name)]

    def totals_per_region(self) -> np.ndarray:
        return self.values.sum(axis=1)

    def totals_per_bucket(self) -> np.ndarray:
        return self.values.sum(axis=0)

    def peak_bucket(self, region_name: str) -> tuple[int, float]:
        """(bucket start, value) of a region's busiest bucket."""
        series = self.series_for(region_name)
        i = int(np.argmax(series))
        return int(self.bucket_starts[i]), float(series[i])

    def fold_weekly(self) -> "RegionTimeMatrix":
        """Fold the timeline onto one week (the *rhythm* of each region).

        Buckets at the same offset within the week are summed, turning a
        months-long series into a 7-day profile — daily noise averages
        out and what remains is when each region lives (commuter peaks,
        nightlife, weekend patterns).  Requires the bucket length to
        divide one week.
        """
        week = 7 * 86_400
        if week % self.bucket_seconds != 0:
            raise QueryError(
                f"bucket of {self.bucket_seconds}s does not divide a week")
        per_week = week // self.bucket_seconds
        offsets = (self.bucket_starts // self.bucket_seconds) % per_week
        folded = np.zeros((self.values.shape[0], per_week))
        np.add.at(folded.T, offsets, self.values.T)
        starts = np.arange(per_week, dtype=np.int64) * self.bucket_seconds
        return RegionTimeMatrix(
            regions=self.regions,
            bucket_starts=starts,
            values=folded,
            bucket_seconds=self.bucket_seconds,
            stats=dict(self.stats, folded_weekly=True),
        )

    def normalized_per_region(self) -> np.ndarray:
        """Each row scaled to its own max (rhythm comparison across
        regions of different volume); all-zero rows stay zero."""
        peak = self.values.max(axis=1, keepdims=True)
        out = np.divide(self.values, peak, where=peak > 0,
                        out=np.zeros_like(self.values))
        return out


def region_time_matrix(
    table: PointTable,
    regions: RegionSet,
    viewport: Viewport,
    time_column: str = "t",
    bucket_seconds: int = 86_400,
    filters=(),
    value_column: str | None = None,
    fragments: FragmentTable | None = None,
) -> RegionTimeMatrix:
    """Compute the (region, time bucket) matrix in one labeling pass.

    ``value_column`` switches the measure from counts to per-bucket
    sums of that column.
    """
    if bucket_seconds < 1:
        raise QueryError("bucket_seconds must be >= 1")
    t0 = time.perf_counter()
    if fragments is None:
        fragments = build_fragment_table(list(regions.geometries), viewport)
    labels = pixel_region_labels(fragments)

    mask = combine_filters(list(filters)).mask(table)
    x = table.x[mask]
    y = table.y[mask]
    tvals = table.column(time_column).values[mask]
    weights = None
    if value_column is not None:
        weights = table.column(value_column).values[mask].astype(np.float64)

    pixel_ids, valid = viewport.pixel_ids_of(x, y)
    point_regions = labels[pixel_ids[valid]]
    tvals = tvals[valid]
    if weights is not None:
        weights = weights[valid]

    inside = point_regions >= 0
    point_regions = point_regions[inside].astype(np.int64)
    tvals = tvals[inside]
    if weights is not None:
        weights = weights[inside]

    if len(tvals):
        origin = int(tvals.min()) // bucket_seconds * bucket_seconds
        buckets = (tvals - origin) // bucket_seconds
        num_buckets = int(buckets.max()) + 1
    else:
        origin = 0
        buckets = np.zeros(0, dtype=np.int64)
        num_buckets = 1

    linear = point_regions * num_buckets + buckets
    size = len(regions) * num_buckets
    matrix = np.bincount(linear, weights=weights, minlength=size).reshape(
        len(regions), num_buckets).astype(np.float64)

    starts = origin + np.arange(num_buckets, dtype=np.int64) * bucket_seconds
    return RegionTimeMatrix(
        regions=regions,
        bucket_starts=starts,
        values=matrix,
        bucket_seconds=int(bucket_seconds),
        stats={
            "points_labeled": int(inside.sum()),
            "points_after_filter": int(mask.sum()),
            "time_total_s": time.perf_counter() - t0,
            "epsilon_world_units": viewport.pixel_diag,
        },
    )
