"""Shared-memory multi-core execution of the raster-join passes.

The serial pipeline runs every pass — point scatter, scanline fragment
generation, gather join — on one core.  This module data-parallelizes
all three across worker *processes*:

* **point pass** — the point table is split into contiguous chunks; each
  worker filters, projects and scatters its chunk into a per-worker
  canvas slot of one ``multiprocessing.shared_memory`` block.  Additive
  canvases (count/sum) merge by a zero-copy ``sum(axis=0)`` over the
  block; min/max canvases merge by an elementwise reduce.
* **polygon pass** — regions are sharded across workers; each worker
  scanline-rasterizes its shard and the parent stitches the resulting
  :class:`FragmentTable` pieces, offsetting polygon ids back to global.
* **gather join** — fragments are partitioned by polygon id (contiguous
  ranges over the by-construction poly-sorted fragment arrays); each
  worker joins its range and the parent concatenates.

Inputs reach workers for free: pools use the ``fork`` start method, so
the point table, geometries and canvases are inherited copy-on-write —
nothing is pickled except tiny task tuples and per-range partials.
Outputs that workers *write* (the canvas block) live in POSIX shared
memory mapped before the fork, so writes are visible to the parent
without any serialization.  On platforms without ``fork`` every entry
point degrades to an in-process loop over the same chunked code path,
which keeps results identical and the test matrix portable.

:class:`ParallelConfig` carries the tuning knobs (worker count, chunk
size, serial-fallback thresholds) and the decision logic the cost-based
planner and the backends share: small inputs must not pay fork/IPC
overhead, so below :data:`PARALLEL_POINT_THRESHOLD` points the decision
is always ``serial`` (recorded with its reason in
``stats["plan"]["parallel"]``).
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from dataclasses import dataclass, replace
from multiprocessing import shared_memory

import numpy as np

from ..raster import (
    FragmentTable,
    PixelBuckets,
    Viewport,
    build_fragment_table,
    gather_reduce,
    gather_sum,
    scatter_count,
    scatter_max,
    scatter_min,
    scatter_sum,
)
from ..table import PointTable
from .aggregates import (
    AVG,
    BOUNDABLE_AGGREGATES,
    COUNT,
    MAX,
    MIN,
    SUM,
    PartialAggregate,
    accumulate_exact,
)
from .bounds import boundary_mass_bounds, epsilon_for_viewport
from .query import SpatialAggregation
from .regions import RegionSet
from .result import AggregationResult

#: Below this many points the planner always chooses serial execution:
#: a fork + shared-memory round trip costs a few milliseconds, which a
#: single-core pass over fewer points than this beats outright.
PARALLEL_POINT_THRESHOLD = 150_000

#: Minimum region count before the polygon (scanline) pass is sharded.
PARALLEL_REGION_THRESHOLD = 256

#: Minimum fragment-pair count before the gather join is partitioned.
PARALLEL_FRAGMENT_THRESHOLD = 1_000_000

#: Abstract planner work units charged per worker for fork + IPC setup
#: (same vocabulary as ``Backend.estimate_cost``, where one unit is
#: roughly one point visited).
FORK_OVERHEAD_UNITS = 30_000.0


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass(frozen=True)
class ParallelConfig:
    """Tuning knobs + serial/parallel decision logic.

    ``workers=None`` resolves to ``os.cpu_count()``; an explicit number
    is honored even beyond the core count (useful for testing the
    multi-worker code path on small machines).
    """

    workers: int | None = None
    chunk_size: int = 250_000
    serial_threshold: int = PARALLEL_POINT_THRESHOLD
    region_threshold: int = PARALLEL_REGION_THRESHOLD
    fragment_threshold: int = PARALLEL_FRAGMENT_THRESHOLD
    #: Shard count for the out-of-core scatter-gather coordinator
    #: (``repro.shard``); ``None`` resolves like ``workers``.
    shards: int | None = None
    #: How many partitions ahead each shard issues ``madvise(WILLNEED)``
    #: for, so page-in overlaps the current partition's scatter.
    prefetch_depth: int = 1

    def resolve_workers(self) -> int:
        if self.workers is not None:
            return max(1, int(self.workers))
        return max(1, os.cpu_count() or 1)

    def with_workers(self, workers: int | None) -> "ParallelConfig":
        return replace(self, workers=workers)

    def resolve_shards(self) -> int:
        if self.shards is not None:
            return max(1, int(self.shards))
        return self.resolve_workers()

    def with_shards(self, shards: int | None,
                    prefetch_depth: int | None = None) -> "ParallelConfig":
        cfg = replace(self, shards=shards)
        if prefetch_depth is not None:
            cfg = replace(cfg, prefetch_depth=max(0, int(prefetch_depth)))
        return cfg

    # -- decisions ---------------------------------------------------------

    def effective_workers(self, n_items: int) -> int:
        """Workers that would actually get work for ``n_items`` points."""
        chunks = math.ceil(n_items / max(1, self.chunk_size))
        return max(1, min(self.resolve_workers(), chunks))

    def decide(self, n_points: int) -> dict:
        """Serial-vs-parallel decision for an ``n_points`` point pass."""
        workers = self.resolve_workers()
        if workers <= 1:
            return {"use": False, "workers": workers,
                    "threshold": self.serial_threshold,
                    "reason": "one worker available"}
        if not _fork_available():
            return {"use": False, "workers": workers,
                    "threshold": self.serial_threshold,
                    "reason": "fork start method unavailable"}
        if n_points < self.serial_threshold:
            return {"use": False, "workers": workers,
                    "threshold": self.serial_threshold,
                    "reason": f"{n_points} points below serial "
                              f"threshold {self.serial_threshold}"}
        effective = self.effective_workers(n_points)
        if effective <= 1:
            return {"use": False, "workers": workers,
                    "threshold": self.serial_threshold,
                    "reason": "input fits in one chunk"}
        return {"use": True, "workers": effective,
                "threshold": self.serial_threshold,
                "reason": f"{n_points} points across {effective} workers"}

    def decide_regions(self, n_regions: int) -> dict:
        """Decision for sharding the polygon (scanline) pass."""
        workers = self.resolve_workers()
        use = (workers > 1 and _fork_available()
               and n_regions >= self.region_threshold)
        return {"use": use, "workers": min(workers, max(1, n_regions)),
                "threshold": self.region_threshold}

    def decide_fragments(self, n_fragments: int) -> dict:
        """Decision for partitioning the gather join by polygon id."""
        workers = self.resolve_workers()
        use = (workers > 1 and _fork_available()
               and n_fragments >= self.fragment_threshold)
        return {"use": use, "workers": workers,
                "threshold": self.fragment_threshold}

    def decide_shards(self, n_partitions: int, n_rows: int) -> dict:
        """Sharded-vs-serial decision for an out-of-core partition scan.

        Same shape (and pricing philosophy) as :meth:`decide`: forking
        a shard costs :data:`FORK_OVERHEAD_UNITS`, so below the point
        threshold — or with fewer than two surviving partitions — the
        coordinator stays serial.  The effective shard count never
        exceeds the surviving partition count (empty shards would only
        pay fork overhead for nothing).
        """
        shards = self.resolve_shards()
        base = {"shards": shards, "prefetch_depth": self.prefetch_depth,
                "threshold": self.serial_threshold}
        if shards <= 1:
            return {"use": False, "reason": "one shard configured", **base}
        if not _fork_available():
            return {"use": False,
                    "reason": "fork start method unavailable", **base}
        if n_partitions < 2:
            return {"use": False,
                    "reason": f"{n_partitions} surviving partition(s)",
                    **base}
        if n_rows < self.serial_threshold:
            return {"use": False,
                    "reason": f"{n_rows} rows below serial threshold "
                              f"{self.serial_threshold}", **base}
        effective = min(shards, n_partitions)
        return {"use": True, "reason": f"{n_rows} rows in {n_partitions} "
                                       f"partitions across {effective} "
                                       f"shards",
                **{**base, "shards": effective}}

    def shard_cost(self, n_partitions: int, n_rows: int) -> float:
        """Effective work units for a sharded partition scan — the
        serial row count when the decision is serial, otherwise the
        per-shard span plus fork overhead (mirrors :meth:`point_cost`)."""
        decision = self.decide_shards(n_partitions, n_rows)
        if not decision["use"]:
            return float(n_rows)
        shards = decision["shards"]
        return n_rows / shards + FORK_OVERHEAD_UNITS * shards

    # -- cost model --------------------------------------------------------

    def point_cost(self, n_points: int) -> float:
        """Effective work units for a linear pass over ``n_points``.

        What ``Backend.estimate_cost`` charges for its point term: the
        serial cost when the decision is serial, otherwise the parallel
        span (points per worker) plus per-worker fork/IPC overhead.
        This is how ``method="auto"`` prices parallelism — below the
        threshold nothing changes, above it the backend gets cheaper in
        proportion to the workers it can actually feed.
        """
        decision = self.decide(n_points)
        if not decision["use"]:
            return float(n_points)
        workers = decision["workers"]
        return n_points / workers + FORK_OVERHEAD_UNITS * workers


def decision_for(ctx, plan) -> dict:
    """The plan's parallel decision, computing and recording it if the
    planner has not already (explicit ``method=`` runs)."""
    decision = plan.decision.get("parallel")
    if decision is None:
        decision = ctx.parallel.decide(len(plan.table))
        plan.decision["parallel"] = decision
    return decision


# -- fork-based task fan-out -------------------------------------------------

#: Set immediately before a pool fork so children inherit the task
#: closure (and everything it captures) copy-on-write — nothing large is
#: ever pickled through the pool.
_FORK_STATE: dict = {}


def _dispatch(task):
    return _FORK_STATE["fn"](*task)


def _fork_map(fn, tasks: list[tuple], workers: int) -> tuple[list, bool]:
    """Run ``fn(*task)`` for every task, forking a pool when it pays.

    Returns (results, pooled): ``pooled`` is False when the tasks ran
    in-process (one worker, one task, or no ``fork`` support), which
    exercises the identical chunked code path without process overhead.
    """
    if workers <= 1 or len(tasks) <= 1 or not _fork_available():
        return [fn(*task) for task in tasks], False
    _FORK_STATE["fn"] = fn
    ctx = multiprocessing.get_context("fork")
    try:
        with ctx.Pool(processes=min(workers, len(tasks))) as pool:
            return pool.map(_dispatch, tasks), True
    finally:
        _FORK_STATE.clear()


def _even_ranges(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``parts`` near-even contiguous ranges."""
    parts = max(1, min(parts, n)) if n else 1
    bounds = np.linspace(0, n, parts + 1).astype(np.int64)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(parts)]


class _SharedCanvasBlock:
    """A ``(kinds, slots, num_pixels)`` float64 canvas block.

    Backed by POSIX shared memory when worker processes will write it
    (the mapping is created *before* the fork, so children inherit it
    and their writes are visible to the parent with zero copies); a
    plain array for the in-process fallback.
    """

    def __init__(self, fills: list[float], slots: int, num_pixels: int,
                 shared: bool):
        shape = (len(fills), slots, num_pixels)
        self._shm = None
        if shared:
            self._shm = shared_memory.SharedMemory(
                create=True, size=8 * int(np.prod(shape)))
            self.array = np.ndarray(shape, dtype=np.float64,
                                    buffer=self._shm.buf)
        else:
            self.array = np.empty(shape, dtype=np.float64)
        for k, fill in enumerate(fills):
            self.array[k].fill(fill)

    def close(self) -> None:
        self.array = None
        if self._shm is not None:
            self._shm.close()
            self._shm.unlink()
            self._shm = None


def _canvas_kinds(agg: str, with_mass: bool) -> tuple[list[str], list[float]]:
    """Canvas slots ``agg`` needs (+ the |value| mass canvas for SUM
    bounds) and their neutral fill values."""
    kinds: list[str] = []
    if agg in (COUNT, AVG):
        kinds.append("count")
    if agg in (SUM, AVG):
        kinds.append("sum")
    if agg == MIN:
        kinds.append("min")
    if agg == MAX:
        kinds.append("max")
    if with_mass and agg == SUM:
        kinds.append("mass")
    fills = [np.inf if k == "min" else -np.inf if k == "max" else 0.0
             for k in kinds]
    return kinds, fills


def _scatter_chunk(block: np.ndarray, kinds: list[str], slot: int,
                   pixel_ids: np.ndarray, values: np.ndarray | None,
                   num_pixels: int) -> None:
    """Blend one chunk's points into its private canvas slot."""
    for k, kind in enumerate(kinds):
        if kind == "count":
            block[k, slot, :] = scatter_count(pixel_ids, num_pixels)
        elif kind == "sum":
            block[k, slot, :] = scatter_sum(pixel_ids, values, num_pixels)
        elif kind == "min":
            block[k, slot, :] = scatter_min(pixel_ids, values, num_pixels)
        elif kind == "max":
            block[k, slot, :] = scatter_max(pixel_ids, values, num_pixels)
        else:  # mass: absolute value sum for the SUM error bounds
            block[k, slot, :] = scatter_sum(pixel_ids, np.abs(values),
                                            num_pixels)


def _merge_block(block: np.ndarray, kinds: list[str]
                 ) -> dict[str, np.ndarray]:
    """Merge per-worker slots: add for count/sum/mass (zero-copy read of
    the shared block), elementwise reduce for min/max."""
    canvases: dict[str, np.ndarray] = {}
    for k, kind in enumerate(kinds):
        if kind == "min":
            canvases[kind] = np.minimum.reduce(block[k], axis=0)
        elif kind == "max":
            canvases[kind] = np.maximum.reduce(block[k], axis=0)
        else:
            canvases[kind] = block[k].sum(axis=0)
    return canvases


# -- pass 1: parallel point scatter ------------------------------------------


def parallel_point_pass(table: PointTable, query: SpatialAggregation,
                        viewport: Viewport, config: ParallelConfig,
                        with_mass: bool = False
                        ) -> tuple[dict[str, np.ndarray], dict]:
    """Filter + project + scatter the point table across workers.

    Returns the merged canvases and pass statistics (including
    per-worker chunk timings).
    """
    from .bounded import rasterize_points

    n = len(table)
    workers = config.resolve_workers()
    chunks = _even_ranges(n, config.effective_workers(n))
    kinds, fills = _canvas_kinds(query.agg, with_mass)
    pooled = workers > 1 and len(chunks) > 1 and _fork_available()
    block = _SharedCanvasBlock(fills, len(chunks), viewport.num_pixels,
                               shared=pooled)
    array = block.array
    num_pixels = viewport.num_pixels

    def chunk_task(slot: int, lo: int, hi: int) -> dict:
        t0 = time.perf_counter()
        sub = table.take(np.arange(lo, hi))
        pixel_ids, values, sub_stats = rasterize_points(sub, query, viewport)
        _scatter_chunk(array, kinds, slot, pixel_ids, values, num_pixels)
        return {
            "slot": slot,
            "rows": hi - lo,
            "points_after_filter": sub_stats["points_after_filter"],
            "points_in_viewport": sub_stats["points_in_viewport"],
            "time_s": time.perf_counter() - t0,
        }

    tasks = [(slot, lo, hi) for slot, (lo, hi) in enumerate(chunks)]
    try:
        per_worker, pooled = _fork_map(chunk_task, tasks, workers)
        canvases = _merge_block(array, kinds)
    finally:
        block.close()
    stats = {
        "chunks": len(chunks),
        "workers": min(workers, len(chunks)),
        "pooled": pooled,
        "points_after_filter": sum(w["points_after_filter"]
                                   for w in per_worker),
        "points_in_viewport": sum(w["points_in_viewport"]
                                  for w in per_worker),
        "per_worker": sorted(per_worker, key=lambda w: w["slot"]),
    }
    return canvases, stats


def parallel_blend_canvases(pixel_ids: np.ndarray,
                            values: np.ndarray | None, agg: str,
                            num_pixels: int, config: ParallelConfig
                            ) -> tuple[dict[str, np.ndarray], dict]:
    """Chunked scatter of already-projected points (the accurate
    variant's canvas build, where the parent owns the projection)."""
    n = len(pixel_ids)
    workers = config.resolve_workers()
    chunks = _even_ranges(n, config.effective_workers(n))
    kinds, fills = _canvas_kinds(agg, with_mass=False)
    pooled = workers > 1 and len(chunks) > 1 and _fork_available()
    block = _SharedCanvasBlock(fills, len(chunks), num_pixels, shared=pooled)
    array = block.array

    def chunk_task(slot: int, lo: int, hi: int) -> dict:
        t0 = time.perf_counter()
        vals = values[lo:hi] if values is not None else None
        _scatter_chunk(array, kinds, slot, pixel_ids[lo:hi], vals,
                       num_pixels)
        return {"slot": slot, "rows": hi - lo,
                "time_s": time.perf_counter() - t0}

    tasks = [(slot, lo, hi) for slot, (lo, hi) in enumerate(chunks)]
    try:
        per_worker, pooled = _fork_map(chunk_task, tasks, workers)
        canvases = _merge_block(array, kinds)
    finally:
        block.close()
    return canvases, {"chunks": len(chunks), "pooled": pooled,
                      "per_worker": sorted(per_worker,
                                           key=lambda w: w["slot"])}


# -- pass 2: sharded polygon rasterization -----------------------------------


def parallel_build_fragment_table(geometries: list, viewport: Viewport,
                                  config: ParallelConfig,
                                  stats_out: dict | None = None
                                  ) -> FragmentTable:
    """Scanline-rasterize region shards in parallel and stitch the
    resulting fragment tables (polygon ids offset back to global)."""
    n = len(geometries)
    workers = config.resolve_workers()
    shards = _even_ranges(n, min(workers, max(1, n)))

    def shard_task(lo: int, hi: int):
        t0 = time.perf_counter()
        part = build_fragment_table(geometries[lo:hi], viewport)
        return part, lo, time.perf_counter() - t0

    results, pooled = _fork_map(shard_task, shards, workers)

    def stitch(pix_name: str, poly_name: str
               ) -> tuple[np.ndarray, np.ndarray]:
        pix = [getattr(part, pix_name) for part, __, __ in results]
        polys = [getattr(part, poly_name) + lo for part, lo, __ in results]
        if not pix:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int32)
        return (np.concatenate(pix),
                np.concatenate(polys).astype(np.int32, copy=False))

    int_pix, int_poly = stitch("interior_pixels", "interior_polys")
    bnd_pix, bnd_poly = stitch("boundary_pixels", "boundary_polys")
    cov_pix, cov_poly = stitch("covered_boundary_pixels",
                               "covered_boundary_polys")
    if stats_out is not None:
        stats_out.update({
            "shards": len(shards),
            "pooled": pooled,
            "per_worker": [{"shard": i, "regions": hi - lo, "time_s": t}
                           for i, ((lo, hi), (__, ___, t))
                           in enumerate(zip(shards, results))],
        })
    stitched = FragmentTable(
        interior_pixels=int_pix, interior_polys=int_poly,
        boundary_pixels=bnd_pix, boundary_polys=bnd_poly,
        covered_boundary_pixels=cov_pix, covered_boundary_polys=cov_poly,
        num_polygons=n, viewport=viewport,
    )
    # Same build-time materialization the serial builder does.  Stitch
    # order preserves ascending polygon ids and per-polygon pixel sort,
    # so the interval run encoder's precondition holds.
    stitched.covered_pixels
    stitched.covered_polys
    stitched.intervals
    stitched.cell_classes
    return stitched


# -- pass 3: gather join partitioned by polygon id ---------------------------


def _poly_offsets(polys: np.ndarray, num_polygons: int) -> np.ndarray:
    """CSR offsets over a poly-sorted fragment pair array."""
    return np.searchsorted(polys, np.arange(num_polygons + 1), side="left")


def _join_range(fragments: FragmentTable, canvases: dict, agg: str,
                plo: int, phi: int, int_off: np.ndarray,
                cov_off: np.ndarray) -> np.ndarray:
    """The covered-pixel join for polygons ``[plo, phi)`` only.

    Interior and covered-boundary pair lists are each grouped by
    ascending polygon id at build time, so a polygon range is two
    contiguous slices.
    """
    k = phi - plo
    i_sl = slice(int_off[plo], int_off[phi])
    c_sl = slice(cov_off[plo], cov_off[phi])

    def both_sum(canvas):
        return (gather_sum(canvas, fragments.interior_pixels[i_sl],
                           fragments.interior_polys[i_sl] - plo, k)
                + gather_sum(canvas, fragments.covered_boundary_pixels[c_sl],
                             fragments.covered_boundary_polys[c_sl] - plo, k))

    if agg == COUNT:
        return both_sum(canvases["count"])
    if agg == SUM:
        return both_sum(canvases["sum"])
    if agg == AVG:
        sums = both_sum(canvases["sum"])
        counts = both_sum(canvases["count"])
        with np.errstate(divide="ignore", invalid="ignore"):
            out = sums / counts
        out[counts == 0] = np.nan
        return out
    ufunc, fill = ((np.minimum, np.inf) if agg == MIN
                   else (np.maximum, -np.inf))
    canvas = canvases[MIN if agg == MIN else MAX]
    out = ufunc(
        gather_reduce(canvas, fragments.interior_pixels[i_sl],
                      fragments.interior_polys[i_sl] - plo, k, ufunc, fill),
        gather_reduce(canvas, fragments.covered_boundary_pixels[c_sl],
                      fragments.covered_boundary_polys[c_sl] - plo, k,
                      ufunc, fill))
    out[~np.isfinite(out)] = np.nan
    return out


def parallel_join_covered(fragments: FragmentTable, canvases: dict,
                          agg: str, config: ParallelConfig,
                          stats_out: dict | None = None) -> np.ndarray:
    """Covered-pixel gather join partitioned by polygon id."""
    n = fragments.num_polygons
    workers = config.resolve_workers()
    int_off = _poly_offsets(fragments.interior_polys, n)
    cov_off = _poly_offsets(fragments.covered_boundary_polys, n)
    ranges = _even_ranges(n, min(workers, max(1, n)))

    def range_task(plo: int, phi: int):
        t0 = time.perf_counter()
        values = _join_range(fragments, canvases, agg, plo, phi,
                             int_off, cov_off)
        return values, time.perf_counter() - t0

    results, pooled = _fork_map(range_task, ranges, workers)
    if stats_out is not None:
        stats_out.update({
            "ranges": len(ranges), "pooled": pooled,
            "per_worker": [{"range": i, "polygons": hi - lo, "time_s": t}
                           for i, ((lo, hi), (__, t))
                           in enumerate(zip(ranges, results))],
        })
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate([values for values, __ in results])


# -- parallel join variants ---------------------------------------------------


def parallel_bounded_raster_join(
    table: PointTable,
    regions: RegionSet,
    query: SpatialAggregation,
    viewport: Viewport,
    fragments: FragmentTable | None = None,
    config: ParallelConfig | None = None,
) -> AggregationResult:
    """The bounded raster join with all three passes data-parallel.

    Result semantics match :func:`repro.core.bounded.bounded_raster_join`:
    COUNT canvases merge exactly; SUM merges can differ from serial only
    by float addition order (bitwise-equal for integer-valued data); the
    error bounds remain hard because boundary masses are additive across
    chunks.
    """
    config = config or ParallelConfig()
    parallel_stats: dict = {
        "mode": "parallel",
        "workers": config.resolve_workers(),
        "chunk_size": config.chunk_size,
    }

    t0 = time.perf_counter()
    if fragments is None:
        polygon_stats: dict = {}
        if config.decide_regions(len(regions))["use"]:
            fragments = parallel_build_fragment_table(
                list(regions.geometries), viewport, config,
                stats_out=polygon_stats)
        else:
            fragments = build_fragment_table(list(regions.geometries),
                                             viewport)
            polygon_stats["mode"] = "serial"
        parallel_stats["polygon_pass"] = polygon_stats
    else:
        parallel_stats["polygon_pass"] = {"mode": "cached"}
    t_polygons = time.perf_counter() - t0

    t1 = time.perf_counter()
    canvases, point_stats = parallel_point_pass(
        table, query, viewport, config,
        with_mass=query.agg in BOUNDABLE_AGGREGATES)
    parallel_stats["point_pass"] = point_stats
    t_points = time.perf_counter() - t1

    t2 = time.perf_counter()
    n_covered = (fragments.num_interior_fragments
                 + len(fragments.covered_boundary_pixels))
    join_stats: dict = {}
    if config.decide_fragments(n_covered)["use"]:
        estimate = parallel_join_covered(fragments, canvases, query.agg,
                                         config, stats_out=join_stats)
    else:
        from .bounded import _join_covered

        estimate = _join_covered(fragments, canvases, query.agg)
        join_stats["mode"] = "serial"
    parallel_stats["join"] = join_stats

    lower = upper = None
    if query.agg in BOUNDABLE_AGGREGATES:
        mass = canvases["count"] if query.agg == COUNT else canvases["mass"]
        lower, upper = boundary_mass_bounds(fragments, estimate, mass)
    t_join = time.perf_counter() - t2

    stats = {
        "points_total": len(table),
        "points_after_filter": point_stats["points_after_filter"],
        "points_in_viewport": point_stats["points_in_viewport"],
        "time_polygon_pass_s": t_polygons,
        "time_point_pass_s": t_points,
        "time_join_s": t_join,
        "interior_fragments": fragments.num_interior_fragments,
        "boundary_fragments": fragments.num_boundary_fragments,
        "canvas_pixels": viewport.num_pixels,
        "epsilon_world_units": epsilon_for_viewport(viewport),
        "parallel": parallel_stats,
    }
    return AggregationResult(
        regions=regions,
        values=estimate,
        method="bounded-raster-join",
        lower=lower,
        upper=upper,
        exact=False,
        stats=stats,
    )


def parallel_accurate_raster_join(
    table: PointTable,
    regions: RegionSet,
    query: SpatialAggregation,
    viewport: Viewport,
    fragments: FragmentTable | None = None,
    config: ParallelConfig | None = None,
) -> AggregationResult:
    """The accurate (hybrid) join with the canvas build chunked and the
    exact boundary pass partitioned by polygon id.

    The per-region exact loop is the variant's Python-level bottleneck,
    so polygon-id partitioning is where most of the multi-core win
    lives; results are bit-identical to the serial variant because every
    (point, region) decision is unchanged, only distributed.
    """
    from .accurate import CELL_FULL, CELL_PARTIAL, _cell_classes, \
        _interior_partial

    config = config or ParallelConfig()
    parallel_stats: dict = {
        "mode": "parallel",
        "workers": config.resolve_workers(),
        "chunk_size": config.chunk_size,
    }

    t0 = time.perf_counter()
    if fragments is None:
        fragments = build_fragment_table(list(regions.geometries), viewport)
    t_polygons = time.perf_counter() - t0

    # Point pass: the parent owns the (vectorized) filter + projection;
    # workers share the scatter through one composed index.
    t1 = time.perf_counter()
    mask = query.filter_mask(table)
    keep = np.flatnonzero(mask)
    x = table.x[keep]
    y = table.y[keep]
    pixel_ids, valid = viewport.pixel_ids_of(x, y)
    points_after_filter = len(keep)
    if not valid.all():
        keep = keep[valid]
        x = x[valid]
        y = y[valid]
        pixel_ids = pixel_ids[valid]
    values = query.values_for(table)
    if values is not None:
        values = values[keep]

    if config.decide(len(pixel_ids))["use"]:
        canvases, blend_stats = parallel_blend_canvases(
            pixel_ids, values, query.agg, viewport.num_pixels, config)
    else:
        from .bounded import blend_canvases

        canvases = blend_canvases(pixel_ids, values, query.agg,
                                  viewport.num_pixels)
        blend_stats = {"mode": "serial"}
    parallel_stats["point_pass"] = blend_stats

    classes = _cell_classes(fragments)
    point_classes = classes[pixel_ids]
    candidate_ids = np.flatnonzero(point_classes == CELL_PARTIAL)
    pip_points_skipped = int((point_classes == CELL_FULL).sum())
    # Candidate-local buckets (see the serial join): everything the
    # exact pass touches scales with the PARTIAL population.
    buckets = PixelBuckets(pixel_ids[candidate_ids], viewport.num_pixels)
    t_points = time.perf_counter() - t1

    t2 = time.perf_counter()
    part = _interior_partial(fragments, canvases, query.agg)

    intervals = fragments.intervals
    # Batched candidate fetch before the fork: workers inherit the
    # expanded arrays copy-on-write instead of re-expanding per region.
    cand_all, cand_off = buckets.points_in_grouped_runs(
        intervals.partial_starts, intervals.partial_lengths,
        intervals.partial_offsets)
    xy_cand = np.column_stack([x[candidate_ids], y[candidate_ids]])
    geometries = list(regions.geometries)
    n = len(regions)
    workers = config.resolve_workers()
    ranges = _even_ranges(n, min(workers, max(1, n)))

    def exact_task(plo: int, phi: int):
        t_start = time.perf_counter()
        local = PartialAggregate.empty(query.agg, phi - plo)
        tested = 0
        for gid in range(plo, phi):
            cand = cand_all[cand_off[gid]:cand_off[gid + 1]]
            if len(cand) == 0:
                continue
            tested += len(cand)
            inside = geometries[gid].contains_points(xy_cand[cand])
            if not inside.any():
                continue
            matched = candidate_ids[cand[inside]]
            accumulate_exact(
                local, gid - plo,
                values[matched] if values is not None else None,
                int(len(matched)))
        return (local.counts, local.sums, local.mins, local.maxs, tested,
                time.perf_counter() - t_start)

    results, pooled = _fork_map(exact_task, ranges, workers)
    exact_part = PartialAggregate.empty(query.agg, n)
    boundary_points_tested = 0
    for (plo, phi), (counts, sums, mins, maxs, tested, __) in zip(ranges,
                                                                  results):
        if exact_part.counts is not None:
            exact_part.counts[plo:phi] = counts
        if exact_part.sums is not None:
            exact_part.sums[plo:phi] = sums
        if exact_part.mins is not None:
            exact_part.mins[plo:phi] = mins
        if exact_part.maxs is not None:
            exact_part.maxs[plo:phi] = maxs
        boundary_points_tested += tested
    part.merge(exact_part)
    parallel_stats["exact_pass"] = {
        "ranges": len(ranges), "pooled": pooled,
        "per_worker": [{"range": i, "polygons": hi - lo, "tested": r[4],
                        "time_s": r[5]}
                       for i, ((lo, hi), r) in enumerate(zip(ranges,
                                                             results))],
    }
    result_values = part.finalize()
    t_join = time.perf_counter() - t2

    stats = {
        "points_total": len(table),
        "points_after_filter": points_after_filter,
        "points_in_viewport": int(len(pixel_ids)),
        "boundary_points_tested": boundary_points_tested,
        "time_polygon_pass_s": t_polygons,
        "time_point_pass_s": t_points,
        "time_join_s": t_join,
        "interior_fragments": fragments.num_interior_fragments,
        "boundary_fragments": fragments.num_boundary_fragments,
        "canvas_pixels": viewport.num_pixels,
        "accurate": {
            "full_pixels": intervals.full_pixels,
            "partial_pixels": intervals.partial_pixels,
            "full_runs": intervals.num_full_runs,
            "partial_runs": intervals.num_partial_runs,
            "pip_points_tested": boundary_points_tested,
            "pip_points_skipped": pip_points_skipped,
        },
        "parallel": parallel_stats,
    }
    return AggregationResult(
        regions=regions,
        values=result_values,
        method="accurate-raster-join",
        exact=True,
        stats=stats,
    )


def parallel_index_join(
    table: PointTable,
    regions: RegionSet,
    query: SpatialAggregation,
    index,
    config: ParallelConfig,
    method: str,
) -> AggregationResult:
    """Exact index join with the probe/refine loop partitioned by
    region.  ``index`` only needs ``query_bbox``; the grid and R-tree
    backends share this one implementation."""
    t0 = time.perf_counter()
    mask = query.filter_mask(table)
    values = query.values_for(table)
    t_filter = time.perf_counter() - t0

    t2 = time.perf_counter()
    xy = table.xy
    geometries = list(regions.geometries)
    n = len(regions)
    workers = config.resolve_workers()
    ranges = _even_ranges(n, min(workers, max(1, n)))

    def range_task(plo: int, phi: int):
        t_start = time.perf_counter()
        local = PartialAggregate.empty(query.agg, phi - plo)
        tested = 0
        for gid in range(plo, phi):
            geom = geometries[gid]
            cand = index.query_bbox(geom.bbox)
            if len(cand) == 0:
                continue
            cand = cand[mask[cand]]
            if len(cand) == 0:
                continue
            tested += len(cand)
            inside = geom.contains_points(xy[cand])
            if not inside.any():
                continue
            matched = cand[inside]
            accumulate_exact(
                local, gid - plo,
                values[matched] if values is not None else None,
                int(len(matched)))
        return (local.counts, local.sums, local.mins, local.maxs, tested,
                time.perf_counter() - t_start)

    results, pooled = _fork_map(range_task, ranges, workers)
    part = PartialAggregate.empty(query.agg, n)
    candidates_tested = 0
    for (plo, phi), (counts, sums, mins, maxs, tested, __) in zip(ranges,
                                                                  results):
        if part.counts is not None:
            part.counts[plo:phi] = counts
        if part.sums is not None:
            part.sums[plo:phi] = sums
        if part.mins is not None:
            part.mins[plo:phi] = mins
        if part.maxs is not None:
            part.maxs[plo:phi] = maxs
        candidates_tested += tested
    t_join = time.perf_counter() - t2

    return AggregationResult(
        regions=regions,
        values=part.finalize(),
        method=method,
        exact=True,
        stats={
            "points_total": len(table),
            "points_after_filter": int(mask.sum()),
            "candidates_tested": candidates_tested,
            "time_filter_s": t_filter,
            "time_index_build_s": 0.0,
            "time_join_s": t_join,
            "parallel": {
                "mode": "parallel",
                "workers": min(workers, len(ranges)),
                "pooled": pooled,
                "ranges": len(ranges),
                "per_worker": [
                    {"range": i, "polygons": hi - lo, "tested": r[4],
                     "time_s": r[5]}
                    for i, ((lo, hi), r) in enumerate(zip(ranges, results))],
            },
        },
    )
