"""Region sets — the ``R(id, geometry)`` side of the query.

A :class:`RegionSet` is an ordered collection of named polygonal regions
(e.g. "the neighborhoods of NYC").  Urbane registers several region sets
per city — one per spatial resolution — and queries group by whichever
set the user selects.
"""

from __future__ import annotations

import numpy as np

from ..errors import GeometryError
from ..geometry import BBox
from ..geometry.geojson import feature_collection, parse_feature_collection
from ..geometry.polygon import Geometry, as_geometry


class RegionSet:
    """An immutable, ordered set of named regions."""

    def __init__(self, name: str, geometries, region_names=None):
        self.name = name
        geoms = [as_geometry(g) for g in geometries]
        if not geoms:
            raise GeometryError(f"region set {name!r} has no regions")
        self._geometries: tuple[Geometry, ...] = tuple(geoms)
        if region_names is None:
            region_names = [f"{name}-{i}" for i in range(len(geoms))]
        region_names = [str(n) for n in region_names]
        if len(region_names) != len(geoms):
            raise GeometryError(
                f"{len(region_names)} names for {len(geoms)} regions")
        if len(set(region_names)) != len(region_names):
            raise GeometryError(f"duplicate region names in set {name!r}")
        self.region_names: tuple[str, ...] = tuple(region_names)
        self._name_to_id = {n: i for i, n in enumerate(region_names)}

    def __len__(self) -> int:
        return len(self._geometries)

    def __iter__(self):
        return iter(self._geometries)

    def __getitem__(self, region_id: int) -> Geometry:
        return self._geometries[region_id]

    @property
    def geometries(self) -> tuple[Geometry, ...]:
        return self._geometries

    def id_of(self, region_name: str) -> int:
        try:
            return self._name_to_id[region_name]
        except KeyError:
            raise GeometryError(
                f"region set {self.name!r} has no region {region_name!r}"
            ) from None

    @property
    def bbox(self) -> BBox:
        box = self._geometries[0].bbox
        for geom in self._geometries[1:]:
            box = box.union(geom.bbox)
        return box

    @property
    def total_vertices(self) -> int:
        return sum(g.num_vertices for g in self._geometries)

    def areas(self) -> np.ndarray:
        return np.array([g.area for g in self._geometries])

    def perimeters(self) -> np.ndarray:
        return np.array([g.perimeter for g in self._geometries])

    def centroids(self) -> np.ndarray:
        return np.array([g.centroid for g in self._geometries])

    def to_geojson(self) -> dict:
        """FeatureCollection with region names as properties."""
        props = [{"name": n, "id": i} for i, n in enumerate(self.region_names)]
        return feature_collection(list(self._geometries), props)

    @classmethod
    def from_geojson(cls, name: str, doc: dict) -> "RegionSet":
        geoms, props = parse_feature_collection(doc)
        names = [p.get("name", f"{name}-{i}") for i, p in enumerate(props)]
        return cls(name, geoms, names)

    def __repr__(self) -> str:
        return (f"RegionSet({self.name!r}, regions={len(self)}, "
                f"vertices={self.total_vertices})")
