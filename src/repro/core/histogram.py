"""Per-region value distributions (histograms and percentiles).

Urbane's exploration view shows not just a region's aggregate but its
*distribution* (how fares spread, not only their mean).  The raster
join's labeling path extends naturally: digitize the value column into
``B`` bins and ``bincount`` over (region, bin) pairs — one pass for
every region's histogram.  Percentiles read off the histogram CDF with
a guaranteed error of at most one bin width (plus the usual
boundary-pixel caveat of the labeling approximation).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import QueryError
from ..raster import FragmentTable, Viewport, build_fragment_table
from ..table import PointTable, combine_filters
from .heatmatrix import pixel_region_labels
from .regions import RegionSet


@dataclass
class RegionHistograms:
    """Per-region value histograms over shared bin edges."""

    regions: RegionSet
    edges: np.ndarray      # (B+1,) bin edges
    counts: np.ndarray     # (R, B)
    column: str
    stats: dict

    @property
    def num_bins(self) -> int:
        return self.counts.shape[1]

    @property
    def bin_width(self) -> float:
        return float(self.edges[1] - self.edges[0])

    def histogram_for(self, region_name: str) -> np.ndarray:
        return self.counts[self.regions.id_of(region_name)]

    def totals(self) -> np.ndarray:
        return self.counts.sum(axis=1)

    def percentile(self, q: float) -> np.ndarray:
        """Approximate per-region q-th percentile (0 <= q <= 100).

        The value returned is the upper edge of the bin where the CDF
        crosses q, so it overestimates the true percentile by at most
        one bin width.  Regions with no data yield NaN.
        """
        if not (0.0 <= q <= 100.0):
            raise QueryError(f"percentile must be in [0, 100], got {q}")
        totals = self.totals()
        out = np.full(len(self.regions), np.nan)
        live = totals > 0
        if not live.any():
            return out
        cdf = np.cumsum(self.counts[live], axis=1)
        targets = q / 100.0 * totals[live]
        # First bin whose cumulative count reaches the target.
        idx = (cdf < targets[:, None]).sum(axis=1)
        idx = np.minimum(idx, self.num_bins - 1)
        out[live] = self.edges[idx + 1]
        return out

    def median(self) -> np.ndarray:
        return self.percentile(50.0)

    def mean_estimate(self) -> np.ndarray:
        """Histogram-based mean (bin centers weighted by counts)."""
        centers = 0.5 * (self.edges[:-1] + self.edges[1:])
        totals = self.totals()
        with np.errstate(invalid="ignore", divide="ignore"):
            out = (self.counts @ centers) / totals
        out[totals == 0] = np.nan
        return out


def region_histograms(
    table: PointTable,
    regions: RegionSet,
    viewport: Viewport,
    column: str,
    bins: int = 64,
    value_range: tuple[float, float] | None = None,
    filters=(),
    fragments: FragmentTable | None = None,
) -> RegionHistograms:
    """Histogram the ``column`` values of every region in one pass."""
    if bins < 1:
        raise QueryError("bins must be >= 1")
    t0 = time.perf_counter()
    if fragments is None:
        fragments = build_fragment_table(list(regions.geometries), viewport)
    labels = pixel_region_labels(fragments)

    mask = combine_filters(list(filters)).mask(table)
    col = table.column(column)
    if col.kind == "categorical":
        raise QueryError(
            f"cannot histogram categorical column {column!r} "
            f"(its stored values are label codes)")
    values = col.values[mask].astype(np.float64, copy=False)
    x = table.x[mask]
    y = table.y[mask]

    pixel_ids, valid = viewport.pixel_ids_of(x, y)
    point_regions = labels[pixel_ids[valid]]
    values = values[valid]
    inside = point_regions >= 0
    point_regions = point_regions[inside].astype(np.int64)
    values = values[inside]

    if value_range is None:
        if len(values):
            lo = float(values.min())
            hi = float(values.max())
        else:
            lo, hi = 0.0, 1.0
        if hi <= lo:
            hi = lo + 1.0
    else:
        lo, hi = map(float, value_range)
        if hi <= lo:
            raise QueryError(f"empty value range [{lo}, {hi}]")
    edges = np.linspace(lo, hi, bins + 1)

    # Digitize: bin b covers [edges[b], edges[b+1]); the last bin is
    # closed so the maximum lands inside.
    clipped = np.clip(values, lo, hi)
    bin_idx = np.minimum(((clipped - lo) / (hi - lo) * bins).astype(
        np.int64), bins - 1)
    linear = point_regions * bins + bin_idx
    counts = np.bincount(linear, minlength=len(regions) * bins).reshape(
        len(regions), bins).astype(np.float64)

    return RegionHistograms(
        regions=regions,
        edges=edges,
        counts=counts,
        column=column,
        stats={
            "points_binned": int(inside.sum()),
            "time_total_s": time.perf_counter() - t0,
            "epsilon_world_units": viewport.pixel_diag,
        },
    )
