"""Error-bound machinery of the bounded raster join.

The bounded variant misassigns only points that fall in *boundary
pixels* — pixels intersected by a region's boundary.  Two bounds follow:

* **a-priori (geometric)**: every misassigned point lies within one
  pixel diagonal of the true boundary.  Given a user distance tolerance
  ``epsilon`` (in world units), choosing the canvas so that the pixel
  diagonal is <= epsilon yields the paper's "bounded" guarantee; see
  :func:`resolution_for_epsilon`.
* **a-posteriori (numeric)**: after rendering, the point mass actually
  observed in each region's boundary pixels gives hard per-region
  value intervals; see :func:`boundary_mass_bounds`.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import QueryError
from ..geometry import BBox
from ..raster import FragmentTable, Viewport, gather_sum


def resolution_for_epsilon(bbox: BBox, epsilon: float,
                           max_resolution: int = 8192) -> int:
    """Smallest canvas resolution whose pixel diagonal is <= ``epsilon``.

    The returned value is the pixel count along the longer world axis
    (matching :meth:`Viewport.fit`).  Raises when the tolerance would
    need a canvas beyond ``max_resolution`` — callers then fall back to
    tiling or the accurate variant.
    """
    if epsilon <= 0:
        raise QueryError("epsilon must be positive")
    long_side = max(bbox.width, bbox.height)
    if min(bbox.width, bbox.height) <= 0:
        raise QueryError("bbox must have positive extent")
    # Square-ish pixels: pixel_w = long/R and pixel_h ~= pixel_w, so the
    # diagonal is ~ pixel_w * sqrt(2).  Solve R for diag <= epsilon.
    resolution = max(1, math.ceil(long_side * math.sqrt(2.0) / epsilon))
    if resolution > max_resolution:
        raise QueryError(
            f"epsilon={epsilon} needs resolution {resolution} > "
            f"max {max_resolution}; tile the canvas or use the accurate "
            f"variant")
    # Verify against the actual viewport the executor will build; bump
    # until the realized diagonal honors the tolerance.
    while Viewport.fit(bbox, resolution).pixel_diag > epsilon:
        resolution = int(math.ceil(resolution * 1.1)) + 1
        if resolution > max_resolution:
            raise QueryError(
                f"epsilon={epsilon} needs resolution > max {max_resolution}")
    return resolution


def epsilon_for_viewport(viewport: Viewport) -> float:
    """The a-priori distance guarantee a viewport provides (its pixel
    diagonal): no point farther than this from a region boundary can be
    misassigned by the bounded raster join."""
    return viewport.pixel_diag


def boundary_mass_bounds(
    fragments: FragmentTable,
    estimate: np.ndarray,
    mass_canvas: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Hard per-region intervals for an additive aggregate.

    ``estimate`` is the raster estimate per region; ``mass_canvas`` holds
    the per-pixel *absolute* contribution mass (point count for COUNT,
    sum of |value| for SUM).  Points in a region's covered boundary
    pixels might truly be outside (subtract), and points in uncovered
    boundary pixels might truly be inside (add):

        lower = estimate - mass(covered boundary pixels)
        upper = estimate + mass(uncovered boundary pixels)
    """
    n = fragments.num_polygons
    mass_in = gather_sum(mass_canvas, fragments.covered_boundary_pixels,
                         fragments.covered_boundary_polys, n)
    mass_all = gather_sum(mass_canvas, fragments.boundary_pixels,
                          fragments.boundary_polys, n)
    mass_out = mass_all - mass_in
    return estimate - mass_in, estimate + mass_out


def relative_bound_width(lower: np.ndarray, upper: np.ndarray,
                         values: np.ndarray) -> float:
    """Max relative half-width of the bound intervals (a scalar summary
    the accuracy experiments report)."""
    width = np.asarray(upper) - np.asarray(lower)
    vals = np.abs(np.asarray(values))
    live = vals > 0
    if not live.any():
        return 0.0
    return float((width[live] / (2.0 * vals[live])).max())
