"""The cost-based planner behind ``method="auto"``.

The planner turns the paper's evaluation matrix into a search space:
for each query it gathers cheap statistics (point count, region and
vertex counts, the requested epsilon/exactness, what the unified cache
already holds), filters the registered backends by capability, prices
the survivors with :meth:`Backend.estimate_cost`, and picks the
cheapest.  The decision is recorded in a normalized ``stats["plan"]``
payload so every answer explains itself::

    {"inputs":   ...statistics the cost model ran on...,
     "decision": {"chosen": ..., "planned": ..., "costs": ...},
     "parallel": ...the serial/parallel decision...,
     "degraded": None | ...deadline-degradation record...}

Capability gates:

* ``exact=True`` restricts to exact backends;
* a requested precision beyond the canvas cap restricts the raster
  family to ``tiled``;
* ``cube`` (or any backend declaring ``adhoc_regions=False``) is only
  ever a candidate when a cube materialized earlier for this exact
  (table, region set) pair can already answer the query — the planner
  never pays a cube build for an ad-hoc polygon set.

Deadline-aware degradation: when the plan carries a ``deadline_ms``
hint (the serving layer threads per-request deadlines through), the
planner converts the chosen candidate's abstract cost into predicted
milliseconds via a self-calibrating units-per-second rate (updated from
observed executions by :meth:`CostBasedPlanner.observe`).  If the
prediction misses the deadline it walks a degradation ladder — drop
``exact`` (accurate -> bounded), then halve the canvas resolution down
to :data:`MIN_DEGRADED_RESOLUTION` — replanning after each step, and
records every step in ``stats["plan"]["degraded"]`` so a degraded
answer is always labeled as such.

Candidates come from the registry, so third-party backends registered
with :func:`register_backend` compete in ``auto`` planning too.
"""

from __future__ import annotations

from ..errors import QueryError
from .backends import backend_names, get_backend
from .backends.base import ExecutionPlan
from .backends.raster import planned_resolution
from .context import ExecutionContext

#: Initial calibration of abstract cost units per wall-clock second.
#: One unit is roughly one point visited; a NumPy point pass sustains
#: on the order of 10M points/s, and :meth:`CostBasedPlanner.observe`
#: refines the rate from real executions (EWMA).
UNITS_PER_SECOND = 10e6

#: Degradation never coarsens the canvas below this resolution — the
#: floor at which per-region bounds stop being useful.
MIN_DEGRADED_RESOLUTION = 64

#: EWMA weight of a fresh observation when recalibrating the rate.
_OBSERVE_ALPHA = 0.3


class CostBasedPlanner:
    """Chooses a backend for ``method='auto'`` and records why."""

    def __init__(self, units_per_second: float = UNITS_PER_SECOND):
        if units_per_second <= 0:
            raise QueryError("units_per_second must be positive")
        self.units_per_second = float(units_per_second)

    # -- calibration -------------------------------------------------------

    def observe(self, cost_units: float, elapsed_s: float) -> None:
        """Fold one (predicted cost, observed latency) pair into the
        units-per-second calibration (EWMA, outlier-tolerant)."""
        if cost_units <= 0 or elapsed_s <= 0:
            return
        rate = float(cost_units) / float(elapsed_s)
        self.units_per_second = ((1.0 - _OBSERVE_ALPHA)
                                 * self.units_per_second
                                 + _OBSERVE_ALPHA * rate)

    def predict_ms(self, cost_units: float) -> float:
        """Predicted wall-clock milliseconds for an abstract cost."""
        return float(cost_units) / self.units_per_second * 1000.0

    # -- statistics --------------------------------------------------------

    def plan_inputs(self, ctx: ExecutionContext, plan: ExecutionPlan) -> dict:
        """The statistics the cost model runs on (also logged in stats)."""
        from .pyramid import GridViewport, block_coverage
        from .tcube import find_answering_cube

        table, regions = plan.table, plan.regions
        desired = planned_resolution(regions, plan, ctx, capped=False)
        viewport = plan.viewport
        if viewport is None and desired <= ctx.max_canvas_resolution:
            try:
                viewport = ctx.plan_viewport(regions, plan.resolution,
                                             plan.epsilon)
            except QueryError:
                viewport = None
        return {
            "n_points": len(table),
            "n_regions": len(regions),
            "workers": ctx.parallel.resolve_workers(),
            "parallel_threshold": ctx.parallel.serial_threshold,
            "total_vertices": regions.total_vertices,
            "resolution": desired,
            "canvas_cap": ctx.max_canvas_resolution,
            "epsilon": plan.epsilon,
            "exact": plan.exact,
            "deadline_ms": plan.deadline_ms,
            "fragments_cached": (
                plan.viewport is not None
                and ctx.has_fragments(regions, plan.viewport)),
            "indexes_cached": sorted(
                kind for kind in ("grid", "rtree", "quadtree")
                if ctx.has_index(kind, table)),
            "cube_cached": any(
                cube.can_answer(regions, plan.query)
                for cube in ctx.cached_cubes(table, regions)),
            "tcube_cached": (
                viewport is not None
                and find_answering_cube(ctx, table, plan.query,
                                        viewport) is not None),
            # Fraction of the canvas servable from cached pyramid
            # blocks (0.0 for ungridded viewports) — the bounded
            # backend discounts its point pass by this much.
            "blocks_cached": (
                block_coverage(ctx, table, plan.query, plan.viewport)
                if isinstance(plan.viewport, GridViewport) else 0.0),
            # Which scatter/gather kernel implementation runs the hot
            # loops (selection is process-global, see repro.kernels).
            "kernel": ctx.kernel_info()["selected"],
        }

    def candidates(self, ctx: ExecutionContext, plan: ExecutionPlan,
                   inputs: dict) -> list[str]:
        over_cap = inputs["resolution"] > ctx.max_canvas_resolution
        # An explicit epsilon/resolution/viewport is a request for the
        # raster contract — hard per-region bounds at that pixel size —
        # so only bounds-producing backends qualify.
        precision_pinned = not plan.exact and (
            plan.epsilon is not None or plan.resolution is not None
            or plan.viewport is not None)
        names: list[str] = []
        # Registration order (built-ins first) also breaks exact cost
        # ties, so third-party backends never displace a built-in that
        # prices identically.
        for name in backend_names():
            backend = get_backend(name)
            caps = backend.capabilities
            if plan.exact and not caps.exact:
                continue
            if precision_pinned and not caps.bounded:
                continue
            if over_cap and caps.uses_canvas and not caps.unbounded_canvas:
                continue
            if not over_cap and caps.unbounded_canvas:
                # One canvas suffices; tiling only rebuilds per tile.
                continue
            if not caps.adhoc_regions and not inputs["cube_cached"]:
                # Pre-aggregation backends only qualify once something
                # materialized for this (table, regions) pair can answer.
                continue
            names.append(name)
        return names

    def _price(self, ctx: ExecutionContext, plan: ExecutionPlan
               ) -> tuple[dict, dict, str]:
        """One plan->(inputs, costs, cheapest) evaluation round."""
        inputs = self.plan_inputs(ctx, plan)
        names = self.candidates(ctx, plan, inputs)
        if not names:
            raise QueryError(
                f"no registered backend can satisfy this plan "
                f"(exact={plan.exact}, resolution={inputs['resolution']}, "
                f"cap={ctx.max_canvas_resolution})")
        costs = {
            name: float(get_backend(name).estimate_cost(
                plan.table, plan.regions, plan, ctx=ctx))
            for name in names
        }
        chosen = min(names, key=lambda n: costs[n])
        return inputs, costs, chosen

    def predict_plan_ms(self, ctx: ExecutionContext,
                        plan: ExecutionPlan) -> float:
        """Predicted wall-clock milliseconds for one plan.

        Prices the plan exactly as :meth:`choose` would (explicit
        methods price that backend, ``auto`` prices the cheapest
        eligible candidate) and converts the abstract cost through the
        EWMA-calibrated rate.  This is the speculation planner's
        budget currency: cheap to evaluate, no side effects on the
        plan's decision record.
        """
        if plan.method and plan.method != "auto":
            cost = float(get_backend(plan.method).estimate_cost(
                plan.table, plan.regions, plan, ctx=ctx))
        else:
            _inputs, costs, chosen = self._price(ctx, plan)
            cost = costs[chosen]
        if cost == float("inf"):
            raise QueryError("plan priced at infinite cost")
        return self.predict_ms(cost)

    # -- deadline degradation ----------------------------------------------

    def _degrade(self, ctx: ExecutionContext, plan: ExecutionPlan,
                 inputs: dict, costs: dict, chosen: str
                 ) -> tuple[dict, dict, str, dict]:
        """Walk the degradation ladder until the deadline fits (or the
        ladder is exhausted); mutates ``plan`` (exact/resolution)."""
        deadline = float(plan.deadline_ms)
        steps: list[dict] = []
        predicted = self.predict_ms(costs[chosen])

        # Rung 1: drop exactness — accurate -> bounded keeps hard error
        # bounds, shedding the exact boundary pass.
        if predicted > deadline and plan.exact:
            was = chosen
            plan.exact = False
            inputs, costs, chosen = self._price(ctx, plan)
            predicted = self.predict_ms(costs[chosen])
            steps.append({"step": "exact->bounded", "from": was,
                          "to": chosen, "predicted_ms": predicted})

        # Rung 2: coarsen the canvas.  Halving the resolution quarters
        # the pixel terms (and can move an over-cap 'tiled' plan back
        # onto a single canvas); the wider pixel diagonal widens — but
        # never invalidates — the error bounds.  An explicit viewport
        # pins the canvas, so it is never overridden.
        while (predicted > deadline and plan.viewport is None
               and get_backend(chosen).capabilities.uses_canvas):
            current = planned_resolution(plan.regions, plan, ctx,
                                         capped=False)
            if current <= MIN_DEGRADED_RESOLUTION:
                break
            plan.resolution = max(MIN_DEGRADED_RESOLUTION, current // 2)
            plan.epsilon = None
            inputs, costs, chosen = self._price(ctx, plan)
            predicted = self.predict_ms(costs[chosen])
            steps.append({"step": "coarser-canvas",
                          "resolution": plan.resolution,
                          "to": chosen, "predicted_ms": predicted})

        degraded = {
            "applied": bool(steps),
            "deadline_ms": deadline,
            "predicted_ms": predicted,
            "within_deadline": predicted <= deadline,
            "steps": steps,
            "units_per_second": self.units_per_second,
        }
        return inputs, costs, chosen, degraded

    # -- entry point -------------------------------------------------------

    def choose(self, ctx: ExecutionContext, plan: ExecutionPlan) -> str:
        """Pick a backend; fills ``plan.decision`` as a side effect."""
        inputs, costs, chosen = self._price(ctx, plan)
        degraded = None
        if plan.deadline_ms is not None:
            inputs, costs, chosen, degraded = self._degrade(
                ctx, plan, inputs, costs, chosen)
        # The serial/parallel decision rides along with the backend
        # choice: parallelizable backends follow the input-cardinality
        # rule (small inputs never pay fork/IPC overhead), everything
        # else is pinned serial.
        if get_backend(chosen).capabilities.parallelizable:
            parallel = ctx.parallel.decide(inputs["n_points"])
        else:
            parallel = {"use": False,
                        "workers": ctx.parallel.resolve_workers(),
                        "threshold": ctx.parallel.serial_threshold,
                        "reason": f"backend {chosen!r} is not parallelizable"}
        plan.decision = {
            "inputs": inputs,
            "decision": {
                "chosen": chosen,
                "planned": True,
                "costs": costs,
            },
            "parallel": parallel,
            # Partition sharding is an out-of-core concern; the store
            # execution path overwrites this with a real decision.
            "shards": {"use": False,
                       "shards": ctx.parallel.resolve_shards(),
                       "prefetch_depth": ctx.parallel.prefetch_depth,
                       "threshold": ctx.parallel.serial_threshold,
                       "reason": "in-memory execution has no partitions"},
            "degraded": degraded,
        }
        return chosen
