"""The cost-based planner behind ``method="auto"``.

The planner turns the paper's evaluation matrix into a search space:
for each query it gathers cheap statistics (point count, region and
vertex counts, the requested epsilon/exactness, what the unified cache
already holds), filters the registered backends by capability, prices
the survivors with :meth:`Backend.estimate_cost`, and picks the
cheapest.  The decision — inputs, per-candidate costs, chosen backend —
is recorded verbatim in ``result.stats["plan"]`` so every answer
explains itself.

Capability gates:

* ``exact=True`` restricts to exact backends;
* a requested precision beyond the canvas cap restricts the raster
  family to ``tiled``;
* ``cube`` (or any backend declaring ``adhoc_regions=False``) is only
  ever a candidate when a cube materialized earlier for this exact
  (table, region set) pair can already answer the query — the planner
  never pays a cube build for an ad-hoc polygon set.

Candidates come from the registry, so third-party backends registered
with :func:`register_backend` compete in ``auto`` planning too.
"""

from __future__ import annotations

from ..errors import QueryError
from .backends import backend_names, get_backend
from .backends.base import ExecutionPlan
from .backends.raster import planned_resolution
from .context import ExecutionContext


class CostBasedPlanner:
    """Chooses a backend for ``method='auto'`` and records why."""

    def plan_inputs(self, ctx: ExecutionContext, plan: ExecutionPlan) -> dict:
        """The statistics the cost model runs on (also logged in stats)."""
        from .tcube import find_answering_cube

        table, regions = plan.table, plan.regions
        desired = planned_resolution(regions, plan, ctx, capped=False)
        viewport = plan.viewport
        if viewport is None and desired <= ctx.max_canvas_resolution:
            try:
                viewport = ctx.plan_viewport(regions, plan.resolution,
                                             plan.epsilon)
            except QueryError:
                viewport = None
        return {
            "n_points": len(table),
            "n_regions": len(regions),
            "workers": ctx.parallel.resolve_workers(),
            "parallel_threshold": ctx.parallel.serial_threshold,
            "total_vertices": regions.total_vertices,
            "resolution": desired,
            "canvas_cap": ctx.max_canvas_resolution,
            "epsilon": plan.epsilon,
            "exact": plan.exact,
            "fragments_cached": (
                plan.viewport is not None
                and ctx.has_fragments(regions, plan.viewport)),
            "indexes_cached": sorted(
                kind for kind in ("grid", "rtree", "quadtree")
                if ctx.has_index(kind, table)),
            "cube_cached": any(
                cube.can_answer(regions, plan.query)
                for cube in ctx.cached_cubes(table, regions)),
            "tcube_cached": (
                viewport is not None
                and find_answering_cube(ctx, table, plan.query,
                                        viewport) is not None),
        }

    def candidates(self, ctx: ExecutionContext, plan: ExecutionPlan,
                   inputs: dict) -> list[str]:
        over_cap = inputs["resolution"] > ctx.max_canvas_resolution
        # An explicit epsilon/resolution/viewport is a request for the
        # raster contract — hard per-region bounds at that pixel size —
        # so only bounds-producing backends qualify.
        precision_pinned = not plan.exact and (
            plan.epsilon is not None or plan.resolution is not None
            or plan.viewport is not None)
        names: list[str] = []
        # Registration order (built-ins first) also breaks exact cost
        # ties, so third-party backends never displace a built-in that
        # prices identically.
        for name in backend_names():
            backend = get_backend(name)
            caps = backend.capabilities
            if plan.exact and not caps.exact:
                continue
            if precision_pinned and not caps.bounded:
                continue
            if over_cap and caps.uses_canvas and not caps.unbounded_canvas:
                continue
            if not over_cap and caps.unbounded_canvas:
                # One canvas suffices; tiling only rebuilds per tile.
                continue
            if not caps.adhoc_regions and not inputs["cube_cached"]:
                # Pre-aggregation backends only qualify once something
                # materialized for this (table, regions) pair can answer.
                continue
            names.append(name)
        return names

    def choose(self, ctx: ExecutionContext, plan: ExecutionPlan) -> str:
        """Pick a backend; fills ``plan.decision`` as a side effect."""
        inputs = self.plan_inputs(ctx, plan)
        names = self.candidates(ctx, plan, inputs)
        if not names:
            raise QueryError(
                f"no registered backend can satisfy this plan "
                f"(exact={plan.exact}, resolution={inputs['resolution']}, "
                f"cap={ctx.max_canvas_resolution})")
        costs = {
            name: float(get_backend(name).estimate_cost(
                plan.table, plan.regions, plan, ctx=ctx))
            for name in names
        }
        chosen = min(names, key=lambda n: costs[n])
        # The serial/parallel decision rides along with the backend
        # choice: parallelizable backends follow the input-cardinality
        # rule (small inputs never pay fork/IPC overhead), everything
        # else is pinned serial.
        if get_backend(chosen).capabilities.parallelizable:
            parallel = ctx.parallel.decide(inputs["n_points"])
        else:
            parallel = {"use": False,
                        "workers": ctx.parallel.resolve_workers(),
                        "threshold": ctx.parallel.serial_threshold,
                        "reason": f"backend {chosen!r} is not parallelizable"}
        plan.decision = {
            "chosen": chosen,
            "planned": True,
            "inputs": inputs,
            "costs": costs,
            "parallel": parallel,
        }
        return chosen
