"""A SQL front end for the spatial aggregation query template.

The paper presents the query in SQL form::

    SELECT AGG(a_i) FROM P, R
    WHERE P.loc INSIDE R.geometry [AND filterCondition]*
    GROUP BY R.id

This module parses exactly that dialect (plus the obvious filter
grammar) into a :class:`ParsedQuery` — the point-table name, the
region-set name, and a :class:`SpatialAggregation`.  It is a
hand-written tokenizer + recursive-descent parser; the goal is a
faithful, well-errored front end for the template, not a general SQL
engine.

Grammar (case-insensitive keywords)::

    query     := SELECT agg FROM table "," regions
                 [WHERE predicate] [GROUP BY ident ["." ident]]
    agg       := COUNT "(" "*" ")" | (SUM|AVG|MIN|MAX) "(" column ")"
    predicate := disjunct (OR disjunct)*
    disjunct  := conjunct (AND conjunct)*
    conjunct  := [NOT] atom
    atom      := "(" predicate ")"
               | loc-clause                  -- P.loc INSIDE R.geometry
               | column op literal
               | column BETWEEN literal AND literal
               | column IN "(" literal ("," literal)* ")"
    op        := "=" | "==" | "!=" | "<>" | "<" | "<=" | ">" | ">="
    literal   := number | 'string'

The mandatory ``loc INSIDE geometry`` clause is recognized anywhere in
the WHERE conjunction and removed (it *is* the join); string literals
use single quotes.  ``BETWEEN`` on the conventional time column names
(``t``, ``timestamp``, ``time``) becomes a half-open
:class:`TimeRange`, matching the timeline-brush semantics.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import QueryError
from ..table import (
    Between,
    Comparison,
    FilterExpr,
    IsIn,
    Not,
    Or,
    TimeRange,
)
from .aggregates import SUPPORTED_AGGREGATES
from .query import SpatialAggregation

TIME_COLUMNS = ("t", "timestamp", "time")

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^'\\]|\\.)*')
      | (?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
      | (?P<op><=|>=|==|!=|<>|=|<|>)
      | (?P<punct>[(),.*])
      | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    )""",
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "group", "by", "and", "or", "not",
    "between", "in", "inside",
}


@dataclass(frozen=True)
class Token:
    kind: str  # 'string' | 'number' | 'op' | 'punct' | 'word' | 'kw'
    value: str
    position: int


def tokenize(sql: str) -> list[Token]:
    """Split a query string into tokens; raises on junk characters."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(sql):
        if sql[pos].isspace():
            pos += 1
            continue
        match = _TOKEN_RE.match(sql, pos)
        if match is None or match.start() != pos:
            raise QueryError(
                f"cannot tokenize SQL at position {pos}: {sql[pos:pos+12]!r}")
        kind = match.lastgroup
        value = match.group(kind)
        if kind == "word" and value.lower() in _KEYWORDS:
            tokens.append(Token("kw", value.lower(), pos))
        else:
            tokens.append(Token(kind, value, pos))
        pos = match.end()
    return tokens


@dataclass(frozen=True)
class ParsedQuery:
    """The outcome of parsing: what to aggregate, over what, how."""

    aggregation: SpatialAggregation
    table: str
    regions: str
    group_by: str | None = None

    def describe(self) -> str:
        return (f"{self.aggregation.describe()} "
                f"[P={self.table}, R={self.regions}]")


class _Parser:
    def __init__(self, tokens: list[Token], sql: str):
        self.tokens = tokens
        self.sql = sql
        self.index = 0

    # -- token plumbing -----------------------------------------------------

    def _peek(self) -> Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> Token:
        tok = self._peek()
        if tok is None:
            raise QueryError(f"unexpected end of query: {self.sql!r}")
        self.index += 1
        return tok

    def _expect_kw(self, word: str) -> None:
        tok = self._next()
        if tok.kind != "kw" or tok.value != word:
            raise QueryError(
                f"expected {word.upper()!r} at position {tok.position}, "
                f"got {tok.value!r}")

    def _expect_punct(self, char: str) -> None:
        tok = self._next()
        if tok.kind != "punct" or tok.value != char:
            raise QueryError(
                f"expected {char!r} at position {tok.position}, got "
                f"{tok.value!r}")

    def _accept_kw(self, word: str) -> bool:
        tok = self._peek()
        if tok is not None and tok.kind == "kw" and tok.value == word:
            self.index += 1
            return True
        return False

    def _accept_punct(self, char: str) -> bool:
        tok = self._peek()
        if tok is not None and tok.kind == "punct" and tok.value == char:
            self.index += 1
            return True
        return False

    def _ident(self) -> str:
        tok = self._next()
        if tok.kind != "word":
            raise QueryError(
                f"expected identifier at position {tok.position}, got "
                f"{tok.value!r}")
        return tok.value

    def _qualified_ident(self) -> str:
        """``name`` or ``alias.name`` — the alias is dropped."""
        name = self._ident()
        if self._accept_punct("."):
            name = self._ident()
        return name

    def _literal(self):
        tok = self._next()
        if tok.kind == "number":
            value = float(tok.value)
            return int(value) if value.is_integer() else value
        if tok.kind == "string":
            return tok.value[1:-1].replace("\\'", "'")
        raise QueryError(
            f"expected literal at position {tok.position}, got "
            f"{tok.value!r}")

    # -- grammar --------------------------------------------------------------

    def parse(self) -> ParsedQuery:
        self._expect_kw("select")
        agg, value_column = self._aggregate()
        self._expect_kw("from")
        table = self._ident()
        self._expect_punct(",")
        regions = self._ident()

        filters: tuple[FilterExpr, ...] = ()
        saw_inside = False
        if self._accept_kw("where"):
            expr, saw_inside = self._predicate()
            if expr is not None:
                filters = (expr,)

        group_by = None
        if self._accept_kw("group"):
            self._expect_kw("by")
            group_by = self._qualified_ident()

        trailing = self._peek()
        if trailing is not None:
            raise QueryError(
                f"unexpected trailing input at position "
                f"{trailing.position}: {trailing.value!r}")
        if not saw_inside:
            raise QueryError(
                "the spatial join clause 'P.loc INSIDE R.geometry' is "
                "required in WHERE")
        aggregation = SpatialAggregation(agg, value_column, filters)
        return ParsedQuery(aggregation, table, regions, group_by)

    def _aggregate(self) -> tuple[str, str | None]:
        name = self._ident().lower()
        if name not in SUPPORTED_AGGREGATES:
            raise QueryError(
                f"unsupported aggregate {name.upper()!r}; expected one of "
                f"{tuple(a.upper() for a in SUPPORTED_AGGREGATES)}")
        self._expect_punct("(")
        if self._accept_punct("*"):
            column = None
        else:
            column = self._qualified_ident()
        self._expect_punct(")")
        if name == "count" and column is not None:
            # COUNT(col) over points without NULLs is COUNT(*).
            column = None
        return name, column

    def _predicate(self) -> tuple[FilterExpr | None, bool]:
        """OR-level; returns (expr or None, saw_inside_clause)."""
        left, saw = self._conjunction()
        while self._accept_kw("or"):
            right, saw_r = self._conjunction()
            saw = saw or saw_r
            if left is None or right is None:
                raise QueryError(
                    "the INSIDE join clause cannot appear under OR")
            left = Or(left, right)
        return left, saw

    def _conjunction(self) -> tuple[FilterExpr | None, bool]:
        left, saw = self._negation()
        while self._accept_kw("and"):
            right, saw_r = self._negation()
            saw = saw or saw_r
            if right is None:
                continue  # the INSIDE clause contributes no filter
            left = right if left is None else left & right
        return left, saw

    def _negation(self) -> tuple[FilterExpr | None, bool]:
        if self._accept_kw("not"):
            inner, saw = self._negation()
            if inner is None:
                raise QueryError("cannot negate the INSIDE join clause")
            return Not(inner), saw
        return self._atom()

    def _atom(self) -> tuple[FilterExpr | None, bool]:
        if self._accept_punct("("):
            expr, saw = self._predicate()
            self._expect_punct(")")
            return expr, saw

        column = self._qualified_ident()
        if self._accept_kw("inside"):
            # P.loc INSIDE R.geometry — consume the right-hand side.
            self._qualified_ident()
            return None, True
        if self._accept_kw("between"):
            lo = self._literal()
            self._expect_kw("and")
            hi = self._literal()
            if column in TIME_COLUMNS and isinstance(lo, int) \
                    and isinstance(hi, int):
                return TimeRange(column, lo, hi), False
            return Between(column, lo, hi), False
        if self._accept_kw("in"):
            self._expect_punct("(")
            values = [self._literal()]
            while self._accept_punct(","):
                values.append(self._literal())
            self._expect_punct(")")
            return IsIn(column, tuple(values)), False

        tok = self._next()
        if tok.kind != "op":
            raise QueryError(
                f"expected comparison operator at position "
                f"{tok.position}, got {tok.value!r}")
        op = {"=": "==", "<>": "!="}.get(tok.value, tok.value)
        value = self._literal()
        return Comparison(column, op, value), False


def parse_query(sql: str) -> ParsedQuery:
    """Parse one spatial aggregation query in the paper's SQL dialect."""
    tokens = tokenize(sql)
    if not tokens:
        raise QueryError("empty query")
    return _Parser(tokens, sql).parse()


# -- rendering (the inverse, for logs and round-trip testing) -----------


def _literal_to_sql(value) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "\\'")
        return f"'{escaped}'"
    # Normalize NumPy scalars so repr() stays plain-SQL parseable.
    if hasattr(value, "item"):
        value = value.item()
    if isinstance(value, bool):
        raise QueryError("boolean literals are not part of the dialect")
    if isinstance(value, (int, float)):
        return repr(value)
    raise QueryError(f"cannot render literal {value!r} to SQL")


def _filter_to_sql(expr: FilterExpr) -> str:
    from ..table import And

    if isinstance(expr, Comparison):
        return f"{expr.column} {expr.op} {_literal_to_sql(expr.value)}"
    if isinstance(expr, Between):
        return (f"{expr.column} BETWEEN {_literal_to_sql(expr.lo)} "
                f"AND {_literal_to_sql(expr.hi)}")
    if isinstance(expr, TimeRange):
        # Half-open: render as explicit comparisons so the semantics
        # survive the round trip regardless of the column's name.
        return f"({expr.column} >= {expr.start} AND {expr.column} < {expr.end})"
    if isinstance(expr, IsIn):
        values = ", ".join(_literal_to_sql(v) for v in expr.values)
        return f"{expr.column} IN ({values})"
    if isinstance(expr, And):
        return (f"({_filter_to_sql(expr.left)} "
                f"AND {_filter_to_sql(expr.right)})")
    if isinstance(expr, Or):
        return (f"({_filter_to_sql(expr.left)} "
                f"OR {_filter_to_sql(expr.right)})")
    if isinstance(expr, Not):
        return f"NOT ({_filter_to_sql(expr.inner)})"
    raise QueryError(
        f"cannot render filter of type {type(expr).__name__} to SQL")


def to_sql(aggregation, table: str, regions: str) -> str:
    """Render a :class:`SpatialAggregation` back into the SQL dialect.

    ``parse_query(to_sql(q, t, r))`` reproduces the query (the round
    trip is property-tested); useful for logging what a view executed.
    """
    target = "*" if aggregation.value_column is None else (
        aggregation.value_column)
    parts = [f"SELECT {aggregation.agg.upper()}({target})",
             f"FROM {table}, {regions}",
             f"WHERE {table}.loc INSIDE {regions}.geometry"]
    for expr in aggregation.filters:
        parts.append(f"AND {_filter_to_sql(expr)}")
    parts.append(f"GROUP BY {regions}.id")
    return " ".join(parts)
