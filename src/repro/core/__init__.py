"""Raster Join — the paper's primary contribution.

The spatial aggregation query (``SELECT AGG(a_i) FROM P, R WHERE P.loc
INSIDE R.geometry [AND filter]* GROUP BY R.id``) evaluated by drawing:

* :func:`bounded_raster_join` — pure raster evaluation with geometric
  and numeric error guarantees;
* :func:`accurate_raster_join` — hybrid raster + exact boundary tests;
* :func:`tiled_bounded_raster_join` — virtual canvases beyond the
  texture cap;
* :class:`SpatialAggregationEngine` — planner, caching, and the uniform
  entry point over these plus the exact baselines.
"""

from .accurate import accurate_raster_join
from .aggregates import (
    AVG,
    BOUNDABLE_AGGREGATES,
    COUNT,
    MAX,
    MIN,
    SUM,
    SUPPORTED_AGGREGATES,
    PartialAggregate,
)
from .bounded import bounded_raster_join
from .bounds import (
    boundary_mass_bounds,
    epsilon_for_viewport,
    relative_bound_width,
    resolution_for_epsilon,
)
from .executor import (
    DEFAULT_RESOLUTION,
    MAX_CANVAS_RESOLUTION,
    METHODS,
    SpatialAggregationEngine,
)
from .heatmatrix import (
    RegionTimeMatrix,
    pixel_region_labels,
    region_time_matrix,
)
from .histogram import RegionHistograms, region_histograms
from .multipass import bounded_raster_join_multi
from .query import SpatialAggregation
from .regions import RegionSet
from .result import AggregationResult
from .sql import ParsedQuery, parse_query, to_sql, tokenize
from .tiling import make_tiles, tiled_bounded_raster_join

__all__ = [
    "AVG",
    "AggregationResult",
    "BOUNDABLE_AGGREGATES",
    "COUNT",
    "DEFAULT_RESOLUTION",
    "MAX",
    "MAX_CANVAS_RESOLUTION",
    "METHODS",
    "MIN",
    "ParsedQuery",
    "PartialAggregate",
    "RegionHistograms",
    "RegionSet",
    "RegionTimeMatrix",
    "SUM",
    "SUPPORTED_AGGREGATES",
    "SpatialAggregation",
    "SpatialAggregationEngine",
    "accurate_raster_join",
    "boundary_mass_bounds",
    "bounded_raster_join",
    "bounded_raster_join_multi",
    "epsilon_for_viewport",
    "make_tiles",
    "parse_query",
    "pixel_region_labels",
    "region_histograms",
    "region_time_matrix",
    "relative_bound_width",
    "resolution_for_epsilon",
    "tiled_bounded_raster_join",
    "to_sql",
    "tokenize",
]
