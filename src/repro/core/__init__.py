"""Raster Join — the paper's primary contribution.

The spatial aggregation query (``SELECT AGG(a_i) FROM P, R WHERE P.loc
INSIDE R.geometry [AND filter]* GROUP BY R.id``) evaluated by drawing:

* :func:`bounded_raster_join` — pure raster evaluation with geometric
  and numeric error guarantees;
* :func:`accurate_raster_join` — hybrid raster + exact boundary tests;
* :func:`tiled_bounded_raster_join` — virtual canvases beyond the
  texture cap;
* :class:`SpatialAggregationEngine` — the facade over the backend
  registry, the cost-based planner, and the unified execution cache.
"""

from .accurate import accurate_raster_join, legacy_accurate_raster_join
from .aggregates import (
    AVG,
    BOUNDABLE_AGGREGATES,
    COUNT,
    MAX,
    MIN,
    SUM,
    SUPPORTED_AGGREGATES,
    PartialAggregate,
)
from .bounded import bounded_raster_join
from .bounds import (
    boundary_mass_bounds,
    epsilon_for_viewport,
    relative_bound_width,
    resolution_for_epsilon,
)
from .backends import (
    Backend,
    BackendCapabilities,
    ExecutionPlan,
    backend_names,
    get_backend,
    register_backend,
    unregister_backend,
)
from .cache import QueryCache, bump_revision, fingerprint
from .context import ExecutionContext
from .executor import (
    DEFAULT_RESOLUTION,
    MAX_CANVAS_RESOLUTION,
    METHODS,
    SpatialAggregationEngine,
)
from .planner import CostBasedPlanner
from .heatmatrix import (
    RegionTimeMatrix,
    pixel_region_labels,
    region_time_matrix,
)
from .histogram import RegionHistograms, region_histograms
from .multipass import bounded_raster_join_multi
from .parallel import (
    PARALLEL_POINT_THRESHOLD,
    ParallelConfig,
    parallel_accurate_raster_join,
    parallel_bounded_raster_join,
    parallel_build_fragment_table,
    parallel_index_join,
)
from .pyramid import (
    DEFAULT_BLOCK,
    CanvasGrid,
    GridViewport,
    assembled_bounded_join,
    block_coverage,
    grid_viewport_for,
)
from .query import SpatialAggregation
from .regions import RegionSet
from .result import AggregationResult
from .sql import ParsedQuery, parse_query, to_sql, tokenize
from .tcube import (
    MAX_TCUBE_SLICES,
    TCUBE_AGGREGATES,
    TemporalCanvasCube,
    build_temporal_canvas_cube,
    infer_bucket_seconds,
    split_time_filter,
    tcube_servable,
)
from .tiling import (
    TilePartial,
    iter_tiled_partials,
    make_tiles,
    tiled_bounded_raster_join,
)

__all__ = [
    "AVG",
    "AggregationResult",
    "BOUNDABLE_AGGREGATES",
    "Backend",
    "BackendCapabilities",
    "COUNT",
    "CanvasGrid",
    "CostBasedPlanner",
    "DEFAULT_BLOCK",
    "DEFAULT_RESOLUTION",
    "ExecutionContext",
    "ExecutionPlan",
    "GridViewport",
    "MAX",
    "MAX_CANVAS_RESOLUTION",
    "MAX_TCUBE_SLICES",
    "METHODS",
    "MIN",
    "PARALLEL_POINT_THRESHOLD",
    "ParallelConfig",
    "ParsedQuery",
    "PartialAggregate",
    "QueryCache",
    "RegionHistograms",
    "RegionSet",
    "RegionTimeMatrix",
    "SUM",
    "SUPPORTED_AGGREGATES",
    "SpatialAggregation",
    "SpatialAggregationEngine",
    "TCUBE_AGGREGATES",
    "TemporalCanvasCube",
    "TilePartial",
    "accurate_raster_join",
    "legacy_accurate_raster_join",
    "assembled_bounded_join",
    "backend_names",
    "block_coverage",
    "bump_revision",
    "boundary_mass_bounds",
    "bounded_raster_join",
    "bounded_raster_join_multi",
    "build_temporal_canvas_cube",
    "epsilon_for_viewport",
    "fingerprint",
    "get_backend",
    "grid_viewport_for",
    "infer_bucket_seconds",
    "iter_tiled_partials",
    "make_tiles",
    "parallel_accurate_raster_join",
    "parallel_bounded_raster_join",
    "parallel_build_fragment_table",
    "parallel_index_join",
    "parse_query",
    "pixel_region_labels",
    "region_histograms",
    "region_time_matrix",
    "register_backend",
    "relative_bound_width",
    "resolution_for_epsilon",
    "split_time_filter",
    "tcube_servable",
    "tiled_bounded_raster_join",
    "to_sql",
    "tokenize",
    "unregister_backend",
]
