"""Execution context: shared configuration + the unified cache.

An :class:`ExecutionContext` is what backends run against.  It owns the
one :class:`~repro.core.cache.QueryCache` for the whole execution path
and exposes typed accessors for the artifacts backends reuse between
gestures — fragment tables per (region set, viewport), point indexes
per table, materialized cubes per (table, region set, measure).  All
keys are content fingerprints (see :mod:`repro.core.cache`), never raw
``id()`` values.
"""

from __future__ import annotations

from .. import kernels
from ..errors import QueryError
from ..index import PointGridIndex, QuadTree, RTree
from ..raster import FragmentTable, Viewport, build_fragment_table
from ..table import PointTable
from .bounds import resolution_for_epsilon
from .cache import QueryCache, fingerprint
from .parallel import ParallelConfig, parallel_build_fragment_table
from .regions import RegionSet

DEFAULT_RESOLUTION = 512
MAX_CANVAS_RESOLUTION = 4096


class ExecutionContext:
    """Configuration + unified cache shared by every backend."""

    def __init__(self, default_resolution: int = DEFAULT_RESOLUTION,
                 max_canvas_resolution: int = MAX_CANVAS_RESOLUTION,
                 cache_max_bytes: int = 256 * 1024 * 1024,
                 cache_max_entries: int = 512,
                 parallel: ParallelConfig | None = None,
                 kernel: str = "auto"):
        if default_resolution < 1:
            raise QueryError("default_resolution must be positive")
        self.default_resolution = int(default_resolution)
        self.max_canvas_resolution = int(max_canvas_resolution)
        self.cache = QueryCache(max_bytes=cache_max_bytes,
                                max_entries=cache_max_entries)
        self.parallel = parallel or ParallelConfig()
        # Kernel selection is process-global (fork workers inherit it);
        # the context records the request and resolves it eagerly so a
        # bad explicit choice fails at construction, not mid-query.
        self.kernel = kernels.select(kernel).name

    def kernel_info(self) -> dict:
        """Requested vs selected kernel (``stats["plan"]["kernel"]``)."""
        return kernels.info()

    # -- viewport planning -------------------------------------------------

    def plan_viewport(self, regions: RegionSet, resolution: int | None,
                      epsilon: float | None) -> Viewport:
        """Resolve the canvas for a query.

        ``epsilon`` (world units) wins over ``resolution``; the canvas is
        sized so the pixel diagonal honors it.
        """
        if epsilon is not None:
            resolution = resolution_for_epsilon(
                regions.bbox, epsilon,
                max_resolution=self.max_canvas_resolution)
        if resolution is None:
            resolution = self.default_resolution
        if resolution > self.max_canvas_resolution:
            raise QueryError(
                f"resolution {resolution} exceeds the canvas cap "
                f"{self.max_canvas_resolution}; use method='tiled'")
        return Viewport.fit(regions.bbox, resolution)

    def plan_grid_viewport(self, regions: RegionSet,
                           resolution: int | None = None,
                           epsilon: float | None = None,
                           block: int | None = None):
        """A grid-snapped viewport for interactive pan/zoom sequences.

        Same world window and resolution as :meth:`plan_viewport`, but
        pinned to a :class:`~repro.core.pyramid.CanvasGrid` so gestures
        derived from it (``pan``/``zoom``) land on reusable canvas-block
        keys; the planning inputs are deterministic, so the same region
        set + resolution always yields the same grid identity.
        """
        from .pyramid import DEFAULT_BLOCK, grid_viewport_for

        viewport = self.plan_viewport(regions, resolution, epsilon)
        return grid_viewport_for(viewport, block or DEFAULT_BLOCK)

    # -- cached artifacts --------------------------------------------------

    def fragments_for(self, regions: RegionSet,
                      viewport: Viewport) -> FragmentTable:
        """The (cached) polygon render pass for a region set + viewport."""
        key = ("fragments", fingerprint(regions), viewport)

        def build() -> FragmentTable:
            geometries = list(regions.geometries)
            if self.parallel.decide_regions(len(geometries))["use"]:
                return parallel_build_fragment_table(geometries, viewport,
                                                     self.parallel)
            return build_fragment_table(geometries, viewport)

        return self.cache.get_or_build(key, build)

    def has_fragments(self, regions: RegionSet, viewport: Viewport) -> bool:
        return ("fragments", fingerprint(regions), viewport) in self.cache

    def grid_index(self, table: PointTable) -> PointGridIndex:
        key = ("grid-index", fingerprint(table))
        return self.cache.get_or_build(
            key,
            lambda: PointGridIndex(table.x, table.y, table.bbox,
                                   nx=128, ny=128))

    def rtree_index(self, table: PointTable) -> RTree:
        key = ("rtree-index", fingerprint(table))
        return self.cache.get_or_build(
            key, lambda: RTree.from_points(table.x, table.y,
                                           leaf_capacity=64))

    def quadtree_index(self, table: PointTable) -> QuadTree:
        key = ("quadtree-index", fingerprint(table))
        return self.cache.get_or_build(
            key, lambda: QuadTree(table.x, table.y, table.bbox,
                                  capacity=256))

    def has_index(self, kind: str, table: PointTable) -> bool:
        """Whether an index of ``kind`` (grid/rtree/quadtree) is cached."""
        return (f"{kind}-index", fingerprint(table)) in self.cache

    def cube_for(self, table: PointTable, regions: RegionSet,
                 build_spec: tuple, builder):
        """A materialized cube for (table, regions, materialization spec)."""
        key = ("cube", fingerprint(table), fingerprint(regions), build_spec)
        return self.cache.get_or_build(key, builder)

    def cached_cubes(self, table: PointTable, regions: RegionSet) -> list:
        """Every cube already materialized for this (table, regions) pair
        — what the planner probes before it will ever pick ``cube``."""
        tfp, rfp = fingerprint(table), fingerprint(regions)
        return [cube for k in self.cache.keys()
                if k[0] == "cube" and k[1] == tfp and k[2] == rfp
                and (cube := self.cache.peek(k)) is not None]

    def tcube_for(self, table: PointTable, spec: tuple, builder):
        """A temporal canvas cube for (table, build spec).

        ``spec`` is :attr:`TemporalCanvasCube.spec` — (viewport, time
        column, bucket seconds, value column, residual filters) — so the
        entry is region-set independent: any region set rendered over
        the same viewport reuses the same cube.
        """
        key = ("tcube", fingerprint(table), spec)
        return self.cache.get_or_build(key, builder)

    def cached_tcubes(self, table: PointTable) -> list:
        """Every temporal canvas cube materialized for this table —
        what the planner (and the timeline view) probe before paying a
        build or a re-scatter."""
        tfp = fingerprint(table)
        return [cube for k in self.cache.keys()
                if k[0] == "tcube" and k[1] == tfp
                and (cube := self.cache.peek(k)) is not None]
