"""Accurate Raster Join.

The hybrid variant: raster evaluation wherever it is provably exact,
point-in-polygon tests only where it is not.

* Pixels *not* touched by a region's boundary are entirely inside or
  outside it, so the raster pass over interior fragments is exact.
* Points landing in a region's (conservatively detected) boundary
  pixels are fetched through per-pixel buckets and tested exactly
  against that region's geometry.

Since PR 8 the exact pass is driven by the per-polygon **interval
classification** (:class:`repro.raster.IntervalSet`): each polygon's
raster cells are FULL (interior — credited entirely by the raster
gather), PARTIAL (boundary — candidates for exact tests) or EMPTY.
Candidate points are fetched per PARTIAL *run* — one contiguous CSR
slice per run of consecutive cells instead of one per cell — and
points in FULL cells never reach the PIP code at all.  Candidate
order is identical to the per-pixel fetch, so results are
bitwise-identical to :func:`legacy_accurate_raster_join` (kept below
for the parity suite and the ablation benchmark).
"""

from __future__ import annotations

import time

import numpy as np

from ..raster import (
    FragmentTable,
    PixelBuckets,
    Viewport,
    build_fragment_table,
    gather_reduce,
    gather_sum,
)
from ..table import PointTable
from .aggregates import PartialAggregate, accumulate_exact
from .bounded import blend_canvases
from .query import SpatialAggregation
from .regions import RegionSet
from .result import AggregationResult

# Cell classes of the interval classification, as canvas codes
# (defined with the fragment tables; re-exported here for the join).
from ..raster.fragments import CELL_EMPTY, CELL_FULL, CELL_PARTIAL  # noqa: E402,F401


def _interior_partial(fragments: FragmentTable, canvases: dict, agg: str
                      ) -> PartialAggregate:
    """Exact raster contribution from guaranteed-interior pixels."""
    n = fragments.num_polygons
    pix = fragments.interior_pixels
    polys = fragments.interior_polys
    part = PartialAggregate.empty(agg, n)
    if part.counts is not None:
        part.counts += gather_sum(canvases["count"], pix, polys, n)
    if part.sums is not None:
        part.sums += gather_sum(canvases["sum"], pix, polys, n)
    if part.mins is not None:
        np.minimum(part.mins,
                   gather_reduce(canvases["min"], pix, polys, n,
                                 np.minimum, np.inf),
                   out=part.mins)
    if part.maxs is not None:
        np.maximum(part.maxs,
                   gather_reduce(canvases["max"], pix, polys, n,
                                 np.maximum, -np.inf),
                   out=part.maxs)
    return part


def _boundary_pixels_by_polygon(fragments: FragmentTable
                                ) -> tuple[np.ndarray, np.ndarray]:
    """CSR (offsets, pixel ids) of boundary pixels grouped by polygon."""
    order = np.argsort(fragments.boundary_polys, kind="stable")
    pix_sorted = fragments.boundary_pixels[order]
    polys_sorted = fragments.boundary_polys[order]
    offsets = np.searchsorted(
        polys_sorted, np.arange(fragments.num_polygons + 1), side="left")
    return offsets, pix_sorted


def _cell_classes(fragments: FragmentTable) -> np.ndarray:
    """Per-pixel cell class canvas, cached on the fragment table."""
    return fragments.cell_classes


def _project_points(table: PointTable, query: SpatialAggregation,
                    viewport: Viewport):
    """Filter + project the point table (shared by both variants)."""
    mask = query.filter_mask(table)
    values = query.values_for(table)
    x = table.x[mask]
    y = table.y[mask]
    if values is not None:
        values = values[mask]
    pixel_ids, valid = viewport.pixel_ids_of(x, y)
    pixel_ids = pixel_ids[valid]
    x = x[valid]
    y = y[valid]
    if values is not None:
        values = values[valid]
    return mask, x, y, values, pixel_ids


def accurate_raster_join(
    table: PointTable,
    regions: RegionSet,
    query: SpatialAggregation,
    viewport: Viewport,
    fragments: FragmentTable | None = None,
) -> AggregationResult:
    """Run the accurate (hybrid raster + exact) join."""
    t0 = time.perf_counter()
    if fragments is None:
        fragments = build_fragment_table(list(regions.geometries), viewport)
    intervals = fragments.intervals
    t_polygons = time.perf_counter() - t0

    # Point pass: canvases for the raster part, buckets for the exact
    # part.  The buckets index into the filtered point arrays.
    t1 = time.perf_counter()
    mask, x, y, values, pixel_ids = _project_points(table, query, viewport)

    canvases = blend_canvases(pixel_ids, values, query.agg,
                              viewport.num_pixels)
    # Classify every point by its cell: only points in some polygon's
    # PARTIAL cell can need exact tests, so only those are bucketed —
    # the sort behind the buckets stays proportional to the boundary
    # population, not |P|.  Points in FULL cells are already fully
    # credited by the raster gather and skip PIP entirely.
    classes = _cell_classes(fragments)
    point_classes = classes[pixel_ids]
    candidate_ids = np.flatnonzero(point_classes == CELL_PARTIAL)
    pip_points_skipped = int((point_classes == CELL_FULL).sum())
    # Buckets hold candidate-local ids: every downstream array (the
    # sort, the coordinate pairs, the bucket CSR) stays proportional to
    # the PARTIAL population, never |P|.
    buckets = PixelBuckets(pixel_ids[candidate_ids], viewport.num_pixels)
    t_points = time.perf_counter() - t1

    # Raster contribution: interior (FULL) fragments only.
    t2 = time.perf_counter()
    part = _interior_partial(fragments, canvases, query.agg)

    # Exact contribution: the candidates of every region's PARTIAL
    # interval runs are fetched in one batched expansion (one CSR slice
    # per run), then tested per region against the true geometry.
    intervals_po = intervals.partial_offsets
    cand_all, cand_off = buckets.points_in_grouped_runs(
        intervals.partial_starts, intervals.partial_lengths, intervals_po)
    xy_cand = np.column_stack([x[candidate_ids], y[candidate_ids]])
    boundary_points_tested = 0
    for gid in range(len(regions)):
        cand = cand_all[cand_off[gid]:cand_off[gid + 1]]
        if len(cand) == 0:
            continue
        boundary_points_tested += len(cand)
        inside = regions[gid].contains_points(xy_cand[cand])
        if not inside.any():
            continue
        matched = candidate_ids[cand[inside]]
        accumulate_exact(
            part, gid,
            values[matched] if values is not None else None,
            int(len(matched)))
    result_values = part.finalize()
    t_join = time.perf_counter() - t2

    stats = {
        "points_total": len(table),
        "points_after_filter": int(mask.sum()),
        "points_in_viewport": int(len(pixel_ids)),
        "boundary_points_tested": boundary_points_tested,
        "time_polygon_pass_s": t_polygons,
        "time_point_pass_s": t_points,
        "time_join_s": t_join,
        "interior_fragments": fragments.num_interior_fragments,
        "boundary_fragments": fragments.num_boundary_fragments,
        "canvas_pixels": viewport.num_pixels,
        "accurate": {
            "full_pixels": intervals.full_pixels,
            "partial_pixels": intervals.partial_pixels,
            "full_runs": intervals.num_full_runs,
            "partial_runs": intervals.num_partial_runs,
            "pip_points_tested": boundary_points_tested,
            "pip_points_skipped": pip_points_skipped,
        },
    }
    return AggregationResult(
        regions=regions,
        values=result_values,
        method="accurate-raster-join",
        exact=True,
        stats=stats,
    )


def legacy_accurate_raster_join(
    table: PointTable,
    regions: RegionSet,
    query: SpatialAggregation,
    viewport: Viewport,
    fragments: FragmentTable | None = None,
) -> AggregationResult:
    """The pre-interval accurate join: per-pixel candidate fetches.

    Kept as the parity reference — same fragment table in, bitwise-same
    result out — and for the ablation column of the accuracy benchmark.
    """
    t0 = time.perf_counter()
    if fragments is None:
        fragments = build_fragment_table(list(regions.geometries), viewport)
    t_polygons = time.perf_counter() - t0

    t1 = time.perf_counter()
    mask, x, y, values, pixel_ids = _project_points(table, query, viewport)

    canvases = blend_canvases(pixel_ids, values, query.agg,
                              viewport.num_pixels)
    is_boundary = np.zeros(viewport.num_pixels, dtype=bool)
    is_boundary[fragments.boundary_pixels] = True
    candidate_ids = np.flatnonzero(is_boundary[pixel_ids])
    buckets = PixelBuckets(pixel_ids[candidate_ids], viewport.num_pixels,
                           point_ids=candidate_ids)
    t_points = time.perf_counter() - t1

    t2 = time.perf_counter()
    part = _interior_partial(fragments, canvases, query.agg)

    offsets, bpix_sorted = _boundary_pixels_by_polygon(fragments)
    xy = np.column_stack([x, y])
    boundary_points_tested = 0
    for gid in range(len(regions)):
        bpix = bpix_sorted[offsets[gid]:offsets[gid + 1]]
        if len(bpix) == 0:
            continue
        cand = buckets.points_in_pixels(bpix)
        if len(cand) == 0:
            continue
        boundary_points_tested += len(cand)
        inside = regions[gid].contains_points(xy[cand])
        if not inside.any():
            continue
        matched = cand[inside]
        accumulate_exact(
            part, gid,
            values[matched] if values is not None else None,
            int(len(matched)))
    result_values = part.finalize()
    t_join = time.perf_counter() - t2

    stats = {
        "points_total": len(table),
        "points_after_filter": int(mask.sum()),
        "points_in_viewport": int(len(pixel_ids)),
        "boundary_points_tested": boundary_points_tested,
        "time_polygon_pass_s": t_polygons,
        "time_point_pass_s": t_points,
        "time_join_s": t_join,
        "interior_fragments": fragments.num_interior_fragments,
        "boundary_fragments": fragments.num_boundary_fragments,
        "canvas_pixels": viewport.num_pixels,
    }
    return AggregationResult(
        regions=regions,
        values=result_values,
        method="accurate-raster-join-legacy",
        exact=True,
        stats=stats,
    )
