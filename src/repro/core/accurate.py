"""Accurate Raster Join.

The hybrid variant: raster evaluation wherever it is provably exact,
point-in-polygon tests only where it is not.

* Pixels *not* touched by a region's boundary are entirely inside or
  outside it, so the raster pass over interior fragments is exact.
* Points landing in a region's (conservatively detected) boundary pixels
  are fetched through per-pixel buckets and tested exactly against that
  region's geometry.

The exact pass touches only the points near boundaries — a small
fraction of the data — so the variant stays close to the bounded one in
cost while returning exact answers.
"""

from __future__ import annotations

import time

import numpy as np

from ..raster import (
    FragmentTable,
    PixelBuckets,
    Viewport,
    build_fragment_table,
    gather_reduce,
    gather_sum,
)
from ..table import PointTable
from .aggregates import PartialAggregate, accumulate_exact
from .bounded import blend_canvases
from .query import SpatialAggregation
from .regions import RegionSet
from .result import AggregationResult


def _interior_partial(fragments: FragmentTable, canvases: dict, agg: str
                      ) -> PartialAggregate:
    """Exact raster contribution from guaranteed-interior pixels."""
    n = fragments.num_polygons
    pix = fragments.interior_pixels
    polys = fragments.interior_polys
    part = PartialAggregate.empty(agg, n)
    if part.counts is not None:
        part.counts += gather_sum(canvases["count"], pix, polys, n)
    if part.sums is not None:
        part.sums += gather_sum(canvases["sum"], pix, polys, n)
    if part.mins is not None:
        np.minimum(part.mins,
                   gather_reduce(canvases["min"], pix, polys, n,
                                 np.minimum, np.inf),
                   out=part.mins)
    if part.maxs is not None:
        np.maximum(part.maxs,
                   gather_reduce(canvases["max"], pix, polys, n,
                                 np.maximum, -np.inf),
                   out=part.maxs)
    return part


def _boundary_pixels_by_polygon(fragments: FragmentTable
                                ) -> tuple[np.ndarray, np.ndarray]:
    """CSR (offsets, pixel ids) of boundary pixels grouped by polygon."""
    order = np.argsort(fragments.boundary_polys, kind="stable")
    pix_sorted = fragments.boundary_pixels[order]
    polys_sorted = fragments.boundary_polys[order]
    offsets = np.searchsorted(
        polys_sorted, np.arange(fragments.num_polygons + 1), side="left")
    return offsets, pix_sorted


def accurate_raster_join(
    table: PointTable,
    regions: RegionSet,
    query: SpatialAggregation,
    viewport: Viewport,
    fragments: FragmentTable | None = None,
) -> AggregationResult:
    """Run the accurate (hybrid raster + exact) join."""
    t0 = time.perf_counter()
    if fragments is None:
        fragments = build_fragment_table(list(regions.geometries), viewport)
    t_polygons = time.perf_counter() - t0

    # Point pass: canvases for the raster part, buckets for the exact
    # part.  The buckets index into the filtered point arrays.
    t1 = time.perf_counter()
    mask = query.filter_mask(table)
    values = query.values_for(table)
    x = table.x[mask]
    y = table.y[mask]
    if values is not None:
        values = values[mask]
    pixel_ids, valid = viewport.pixel_ids_of(x, y)
    pixel_ids = pixel_ids[valid]
    x = x[valid]
    y = y[valid]
    if values is not None:
        values = values[valid]

    canvases = blend_canvases(pixel_ids, values, query.agg,
                              viewport.num_pixels)
    # Bucket only the points that can need exact tests: those landing in
    # some region's boundary pixel (a bitmap membership test).  This
    # keeps the sort behind the buckets proportional to the boundary
    # population, not to |P|.
    is_boundary = np.zeros(viewport.num_pixels, dtype=bool)
    is_boundary[fragments.boundary_pixels] = True
    candidate_ids = np.flatnonzero(is_boundary[pixel_ids])
    buckets = PixelBuckets(pixel_ids[candidate_ids], viewport.num_pixels,
                           point_ids=candidate_ids)
    t_points = time.perf_counter() - t1

    # Raster contribution: interior fragments only (provably exact).
    t2 = time.perf_counter()
    part = _interior_partial(fragments, canvases, query.agg)

    # Exact contribution: per region, test the points in its boundary
    # pixels against the true geometry.
    offsets, bpix_sorted = _boundary_pixels_by_polygon(fragments)
    xy = np.column_stack([x, y])
    boundary_points_tested = 0
    for gid in range(len(regions)):
        bpix = bpix_sorted[offsets[gid]:offsets[gid + 1]]
        if len(bpix) == 0:
            continue
        cand = buckets.points_in_pixels(bpix)
        if len(cand) == 0:
            continue
        boundary_points_tested += len(cand)
        inside = regions[gid].contains_points(xy[cand])
        if not inside.any():
            continue
        matched = cand[inside]
        accumulate_exact(
            part, gid,
            values[matched] if values is not None else None,
            int(len(matched)))
    result_values = part.finalize()
    t_join = time.perf_counter() - t2

    stats = {
        "points_total": len(table),
        "points_after_filter": int(mask.sum()),
        "points_in_viewport": int(len(pixel_ids)),
        "boundary_points_tested": boundary_points_tested,
        "time_polygon_pass_s": t_polygons,
        "time_point_pass_s": t_points,
        "time_join_s": t_join,
        "interior_fragments": fragments.num_interior_fragments,
        "boundary_fragments": fragments.num_boundary_fragments,
        "canvas_pixels": viewport.num_pixels,
    }
    return AggregationResult(
        regions=regions,
        values=result_values,
        method="accurate-raster-join",
        exact=True,
        stats=stats,
    )
