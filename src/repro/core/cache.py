"""The unified execution cache: content fingerprints + a bounded LRU store.

Every reusable artifact on the execution path — polygon fragment
tables, point indexes, materialized cubes, full query results — lives
in one :class:`QueryCache` keyed by *content fingerprints* instead of
raw ``id()`` values.  ``id()`` keys have a latent reuse bug: once a
table is garbage collected its address can be handed to a brand-new
table, and a stale index would silently answer for the wrong data.
Fingerprints are drawn from a process-global monotone counter and
attached to the object, so a token is never reused, and each carries a
revision number that :func:`bump_revision` increments to invalidate
every derived entry.

The store itself is an LRU with per-entry byte accounting, a byte and
entry budget, and hit/miss/eviction counters — the numbers surfaced as
``result.stats["cache"]`` on every query.

Concurrency contract (the serving layer runs many engine calls against
one cache from a thread pool):

* every mutation — LRU touch, insert, eviction, byte accounting,
  counter bump — happens under one internal lock, so concurrent
  queries can never corrupt the order book or the byte ledger;
* :meth:`QueryCache.get_or_build` is *single-flight per key*: the first
  thread to miss becomes the build leader, concurrent threads asking
  for the same key block on a per-key latch and receive the leader's
  artifact instead of duplicating the build (``single_flight_waits``
  counts the piggybacks).  Distinct keys build concurrently — the main
  lock is never held across a build;
* cached :class:`~repro.core.result.AggregationResult` values are
  handed out as **defensive copies**: results carry a mutable ``stats``
  dict that callers routinely annotate, and returning the stored object
  by reference would let one caller's mutation corrupt every later
  reader's view.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..errors import QueryError

_TOKEN_COUNTER = itertools.count(1)

_TOKEN_ATTR = "_repro_cache_token"
_REVISION_ATTR = "_repro_cache_revision"

#: Guards token assignment so two threads fingerprinting the same new
#: object cannot race to different tokens.
_TOKEN_LOCK = threading.Lock()


def fingerprint(obj) -> tuple:
    """A stable, never-reused cache token for ``obj``.

    Returns ``(type name, token, revision)``.  The token is assigned on
    first sight from a global counter and stored on the object, so —
    unlike ``id()`` — two objects can never share one even across
    garbage collection.  Hashable objects that reject attributes (e.g.
    strings) are keyed by value instead.
    """
    token = getattr(obj, _TOKEN_ATTR, None)
    if token is None:
        with _TOKEN_LOCK:
            token = getattr(obj, _TOKEN_ATTR, None)
            if token is None:
                token = next(_TOKEN_COUNTER)
                try:
                    object.__setattr__(obj, _TOKEN_ATTR, token)
                except (AttributeError, TypeError):
                    # No __dict__ (slots, builtins): key by value.
                    return (type(obj).__name__, obj)
    return (type(obj).__name__, token, getattr(obj, _REVISION_ATTR, 0))


def bump_revision(obj) -> int:
    """Invalidate every cache entry derived from ``obj``.

    Increments the object's revision so its :func:`fingerprint` — and
    therefore every cache key built from it — changes.  Returns the new
    revision.
    """
    with _TOKEN_LOCK:
        rev = getattr(obj, _REVISION_ATTR, 0) + 1
        object.__setattr__(obj, _REVISION_ATTR, rev)
    return rev


def _is_mmap_backed(arr: np.ndarray) -> bool:
    """Whether ``arr``'s buffer is an ``np.memmap`` (directly or through
    a view chain).  Views keep their source alive via ``.base``, so
    walking the chain finds the owning mapping."""
    node = arr
    while node is not None:
        if isinstance(node, np.memmap):
            return True
        node = getattr(node, "base", None)
    return False


def _buffer_root(arr: np.ndarray) -> np.ndarray:
    """The array that owns ``arr``'s buffer (walks the ``.base`` chain)."""
    node = arr
    while isinstance(getattr(node, "base", None), np.ndarray):
        node = node.base
    return node


def estimate_nbytes(value, _depth: int = 0, _seen: set | None = None) -> int:
    """Approximate resident size of a cached artifact.

    Sums ndarray buffers reachable through attributes/containers (two
    levels deep), preferring an object's own ``memory_bytes()`` when it
    has one.  An estimate, not an audit — the cache budget only needs
    the right order of magnitude.

    Arrays sharing one buffer are charged **once**: each ndarray is
    resolved to its buffer-owning root through the ``.base`` chain, and
    a root already seen within this artifact charges zero.  Pyramid
    levels and canvas slices are views of their source canvas, so
    charging each view its full ``nbytes`` would bill the same memory
    several times over and evict unrelated artifacts to cover bytes
    that were never allocated.

    Memmap-backed arrays charge **zero**: their pages are file-backed
    and reclaimable by the OS at any time, so billing them against the
    cache's byte budget would evict genuinely resident artifacts to
    "free" memory the cache never held (out-of-core store partitions
    are the main producer of such arrays).
    """
    if value is None:
        return 0
    if _seen is None:
        _seen = set()
    if isinstance(value, np.ndarray):
        if _is_mmap_backed(value):
            return 0
        root = _buffer_root(value)
        if id(root) in _seen:
            return 0
        _seen.add(id(root))
        return int(root.nbytes)
    mem = getattr(value, "memory_bytes", None)
    if callable(mem):
        return int(mem())
    if _depth >= 2:
        return 0
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(estimate_nbytes(v, _depth + 1, _seen) for v in value)
    if isinstance(value, dict):
        return sum(estimate_nbytes(v, _depth + 1, _seen)
                   for v in value.values())
    attrs = getattr(value, "__dict__", None)
    if attrs:
        return 64 + sum(estimate_nbytes(v, _depth + 1, _seen)
                        for v in attrs.values())
    return 64


def _defensive(value):
    """Copy-on-read for mutable cached artifacts.

    Query results are the one cached type whose consumers mutate what
    they receive (``result.stats`` annotations); everything else
    (fragment tables, indexes, cubes) is treated as immutable shared
    state and returned by reference.
    """
    from .result import AggregationResult

    if isinstance(value, AggregationResult):
        return value.copy()
    return value


@dataclass
class CacheEntry:
    value: object
    nbytes: int


class QueryCache:
    """Thread-safe LRU cache with byte accounting and single-flight
    builds; hit/miss/eviction counters surface in query stats."""

    def __init__(self, max_bytes: int = 256 * 1024 * 1024,
                 max_entries: int = 512):
        if max_bytes < 1 or max_entries < 1:
            raise QueryError("cache budgets must be positive")
        self.max_bytes = int(max_bytes)
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[tuple, CacheEntry] = OrderedDict()
        self._bytes = 0
        self._lock = threading.RLock()
        #: Per-key build latches for single-flight get_or_build.
        self._building: dict[tuple, threading.Lock] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Lookups that blocked on another thread's in-progress build of
        #: the same key and reused its artifact (stampedes prevented).
        self.single_flight_waits = 0
        #: Block-tier reuse ledger (the canvas-pyramid assembly path):
        #: blocks served from cache, scattered fresh, derived by 2x2
        #: reduction, and the pixel volumes assembled vs. re-scattered.
        self.block_hits = 0
        self.block_misses = 0
        self.block_derived = 0
        self.assembled_pixels = 0
        self.scattered_pixels = 0
        #: Entries inserted at the LRU *cold* end because they were
        #: built speculatively (see :meth:`speculative_inserts`).
        self.cold_inserts = 0
        # Thread-local flag marking the current thread's inserts as
        # speculative.  Thread-local (not global) because speculative
        # builds run on worker-pool threads concurrently with real
        # queries against the same cache.
        self._speculative = threading.local()

    # -- speculative insertion policy --------------------------------------

    @contextlib.contextmanager
    def speculative_inserts(self):
        """Mark every :meth:`put` from this thread, for the duration of
        the block, as *speculative*.

        Speculative entries land at the LRU **cold** end instead of the
        hot end, and reads under this flag do not promote entries — so
        a burst of wrong predictions is evicted first and can never
        displace blocks that real queries keep hot.  A real query
        touching a speculatively-inserted entry promotes it normally
        (the prediction came true, the entry earned its place).
        """
        prev = getattr(self._speculative, "active", False)
        self._speculative.active = True
        try:
            yield
        finally:
            self._speculative.active = prev

    def _spec_active(self) -> bool:
        return getattr(self._speculative, "active", False)

    # -- core operations ---------------------------------------------------

    def get(self, key: tuple, default=None):
        """Fetch + LRU-touch; counts a hit or a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return default
            self.hits += 1
            if not self._spec_active():
                self._entries.move_to_end(key)
            return _defensive(entry.value)

    def peek(self, key: tuple, default=None):
        """Fetch without touching LRU order or counters (planner probes)."""
        with self._lock:
            entry = self._entries.get(key)
            return default if entry is None else entry.value

    def put(self, key: tuple, value, nbytes: int | None = None) -> None:
        if nbytes is None:
            nbytes = estimate_nbytes(value)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = CacheEntry(value, int(nbytes))
            self._bytes += int(nbytes)
            # A speculative build of a *new* key parks at the cold end:
            # eviction consumes it before anything a real query touched.
            # Re-inserting a key that already existed keeps the normal
            # hot placement — its history outranks the speculation.
            if old is None and self._spec_active():
                self._entries.move_to_end(key, last=False)
                self.cold_inserts += 1
            self._evict()

    def get_or_build(self, key: tuple, builder, nbytes: int | None = None):
        """The main entry point: return the cached value or build + store.

        Single-flight: concurrent callers of the same missing key run
        one build; the rest block on a per-key latch and reuse the
        leader's artifact.  The main lock is never held across
        ``builder()``, so distinct keys build concurrently.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                if not self._spec_active():
                    self._entries.move_to_end(key)
                return _defensive(entry.value)
            self.misses += 1
            latch = self._building.get(key)
            leader = latch is None
            if leader:
                latch = self._building[key] = threading.Lock()
        if not leader:
            # Wait for the leader's build, then read what it stored.
            with latch:
                pass
            with self._lock:
                self.single_flight_waits += 1
                entry = self._entries.get(key)
                if entry is not None:
                    if not self._spec_active():
                        self._entries.move_to_end(key)
                    return _defensive(entry.value)
            # Leader failed (builder raised) — fall through and build.
            return self.get_or_build(key, builder, nbytes=nbytes)
        with latch:
            try:
                value = builder()
                self.put(key, value, nbytes=nbytes)
            finally:
                with self._lock:
                    self._building.pop(key, None)
        return _defensive(value)

    def _evict(self) -> None:
        # Evict LRU-first until within budget; the newest entry always
        # survives so a single oversized artifact is still usable.
        # Callers hold self._lock.
        while len(self._entries) > 1 and (
                self._bytes > self.max_bytes
                or len(self._entries) > self.max_entries):
            __, entry = self._entries.popitem(last=False)
            self._bytes -= entry.nbytes
            self.evictions += 1

    # -- block-tier accounting ---------------------------------------------

    def note_blocks(self, hits: int = 0, misses: int = 0, derived: int = 0,
                    assembled_pixels: int = 0,
                    scattered_pixels: int = 0) -> None:
        """Record one assembly's block reuse (called by the pyramid
        path after each canvas is assembled)."""
        with self._lock:
            self.block_hits += int(hits)
            self.block_misses += int(misses)
            self.block_derived += int(derived)
            self.assembled_pixels += int(assembled_pixels)
            self.scattered_pixels += int(scattered_pixels)

    def block_snapshot(self) -> dict:
        """Point-in-time block counters (executors diff two snapshots
        to attribute reuse to a single query)."""
        with self._lock:
            return {
                "hits": self.block_hits,
                "misses": self.block_misses,
                "derived": self.block_derived,
                "assembled_pixels": self.assembled_pixels,
                "scattered_pixels": self.scattered_pixels,
            }

    # -- maintenance -------------------------------------------------------

    def invalidate(self, prefix: str) -> int:
        """Drop every entry whose key starts with ``prefix``; returns the
        number removed (not counted as evictions)."""
        with self._lock:
            doomed = [k for k in self._entries if k and k[0] == prefix]
            for key in doomed:
                self._bytes -= self._entries.pop(key).nbytes
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list[tuple]:
        """Snapshot of the current keys (safe to iterate concurrently)."""
        with self._lock:
            return list(self._entries)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> dict:
        """Counters + occupancy, the ``stats["cache"]`` payload."""
        with self._lock:
            lookups = self.hits + self.misses
            pixels = self.assembled_pixels + self.scattered_pixels
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "cold_inserts": self.cold_inserts,
                "single_flight_waits": self.single_flight_waits,
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
                "blocks": {
                    "hits": self.block_hits,
                    "misses": self.block_misses,
                    "derived": self.block_derived,
                    "assembled_pixels": self.assembled_pixels,
                    "scattered_pixels": self.scattered_pixels,
                    "reuse_fraction": (self.assembled_pixels / pixels
                                       if pixels else 0.0),
                },
            }
