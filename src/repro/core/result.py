"""Query results.

Every backend returns an :class:`AggregationResult`: per-region values
aligned with the region set, optional guaranteed error bounds (bounded
raster join only), and execution statistics for the benchmark harness.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass, field

import numpy as np

from .regions import RegionSet


@dataclass
class AggregationResult:
    """Per-region aggregate values plus provenance."""

    regions: RegionSet
    values: np.ndarray
    method: str
    lower: np.ndarray | None = None
    upper: np.ndarray | None = None
    exact: bool = False
    stats: dict = field(default_factory=dict)

    def __post_init__(self):
        self.values = np.asarray(self.values, dtype=np.float64)
        if len(self.values) != len(self.regions):
            raise ValueError(
                f"{len(self.values)} values for {len(self.regions)} regions")

    def __len__(self) -> int:
        return len(self.values)

    def copy(self) -> "AggregationResult":
        """An independent deep copy (arrays and the stats dict).

        The serving layer hands one executed result to every coalesced
        waiter and the unified cache hands results back on hits; a copy
        per consumer means one caller's mutation (annotating stats,
        scaling values) can never corrupt another's view.  The region
        set is shared — it is immutable by convention and fingerprinted
        by identity, so copying it would defeat downstream caching.
        """
        return AggregationResult(
            regions=self.regions,
            values=self.values.copy(),
            method=self.method,
            lower=None if self.lower is None else self.lower.copy(),
            upper=None if self.upper is None else self.upper.copy(),
            exact=self.exact,
            stats=_copy.deepcopy(self.stats),
        )

    def value_of(self, region_name: str) -> float:
        """Aggregate value of one region, by name."""
        return float(self.values[self.regions.id_of(region_name)])

    @property
    def has_bounds(self) -> bool:
        return self.lower is not None and self.upper is not None

    def max_bound_width(self) -> float:
        """Widest guaranteed error interval across regions (0 if exact)."""
        if not self.has_bounds:
            return 0.0 if self.exact else float("nan")
        return float((self.upper - self.lower).max(initial=0.0))

    def top_k(self, k: int) -> list[tuple[str, float]]:
        """The k regions with the largest values (NaNs last)."""
        order = np.argsort(np.nan_to_num(self.values, nan=-np.inf))[::-1]
        return [(self.regions.region_names[i], float(self.values[i]))
                for i in order[:k]]

    def as_dict(self) -> dict[str, float]:
        """Region name -> value mapping."""
        return {n: float(v)
                for n, v in zip(self.regions.region_names, self.values)}

    def compare_to(self, reference: "AggregationResult") -> dict:
        """Error metrics of this result against an exact reference.

        Returns max/mean absolute error and max relative error (relative
        to the reference value, skipping zero-reference regions).
        """
        ref = np.asarray(reference.values, dtype=np.float64)
        got = self.values
        both = np.isfinite(ref) & np.isfinite(got)
        abs_err = np.abs(got[both] - ref[both])
        nz = both & (np.abs(ref) > 0)
        rel_err = (np.abs(got[nz] - ref[nz]) / np.abs(ref[nz])
                   if nz.any() else np.zeros(1))
        return {
            "max_abs_error": float(abs_err.max(initial=0.0)),
            "mean_abs_error": float(abs_err.mean()) if len(abs_err) else 0.0,
            "max_rel_error": float(rel_err.max(initial=0.0)),
            "regions_compared": int(both.sum()),
        }

    def bounds_contain(self, reference: "AggregationResult") -> bool:
        """True when every reference value lies within [lower, upper].

        The correctness property the bounded raster join guarantees.
        """
        if not self.has_bounds:
            return False
        ref = np.asarray(reference.values, dtype=np.float64)
        ok = np.isfinite(ref)
        return bool(
            ((ref[ok] >= self.lower[ok] - 1e-9)
             & (ref[ok] <= self.upper[ok] + 1e-9)).all())
