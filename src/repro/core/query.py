"""The spatial aggregation query model.

A :class:`SpatialAggregation` captures the paper's query template:

    SELECT AGG(a_i) FROM P, R
    WHERE P.loc INSIDE R.geometry [AND filterCondition]*
    GROUP BY R.id

— an aggregate, an optional value column, and an ad-hoc filter list
(attribute predicates and/or a time range).  Queries are plain immutable
descriptions; execution lives in the executor/backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import QueryError
from ..table import FilterExpr, PointTable, TimeRange, combine_filters
from .aggregates import COUNT, validate_aggregate


@dataclass(frozen=True)
class SpatialAggregation:
    """Immutable description of one spatial aggregation query."""

    agg: str = COUNT
    value_column: str | None = None
    filters: tuple[FilterExpr, ...] = field(default_factory=tuple)

    def __post_init__(self):
        validate_aggregate(self.agg, self.value_column)
        object.__setattr__(self, "filters", tuple(self.filters))

    # -- fluent constructors ----------------------------------------------

    @classmethod
    def count(cls, *filters: FilterExpr) -> "SpatialAggregation":
        return cls(COUNT, None, tuple(filters))

    @classmethod
    def sum_of(cls, column: str, *filters: FilterExpr) -> "SpatialAggregation":
        return cls("sum", column, tuple(filters))

    @classmethod
    def avg_of(cls, column: str, *filters: FilterExpr) -> "SpatialAggregation":
        return cls("avg", column, tuple(filters))

    @classmethod
    def min_of(cls, column: str, *filters: FilterExpr) -> "SpatialAggregation":
        return cls("min", column, tuple(filters))

    @classmethod
    def max_of(cls, column: str, *filters: FilterExpr) -> "SpatialAggregation":
        return cls("max", column, tuple(filters))

    def where(self, *filters: FilterExpr) -> "SpatialAggregation":
        """A copy with extra filter conditions ANDed on."""
        return SpatialAggregation(
            self.agg, self.value_column, self.filters + tuple(filters))

    def during(self, time_column: str, start: int, end: int
               ) -> "SpatialAggregation":
        """A copy restricted to the half-open time interval [start, end)."""
        return self.where(TimeRange(time_column, int(start), int(end)))

    # -- evaluation helpers --------------------------------------------------

    def filter_mask(self, table: PointTable) -> np.ndarray:
        """Boolean mask of rows passing every filter condition."""
        return combine_filters(self.filters).mask(table)

    def values_for(self, table: PointTable) -> np.ndarray | None:
        """The value-column array, or None for COUNT.

        Raises :class:`QueryError` when the column is categorical —
        numeric aggregates over labels are meaningless.
        """
        if self.value_column is None:
            return None
        col = table.column(self.value_column)
        if col.kind == "categorical":
            raise QueryError(
                f"cannot aggregate categorical column {self.value_column!r}")
        return col.values.astype(np.float64, copy=False)

    def describe(self) -> str:
        """SQL-ish rendering for logs and benchmark reports."""
        target = "*" if self.value_column is None else self.value_column
        where = f" with {len(self.filters)} filter(s)" if self.filters else ""
        return f"SELECT {self.agg.upper()}({target}) GROUP BY region{where}"
