"""The backend contract.

A backend is one spatial-aggregation strategy behind a uniform
interface: it names itself, declares capabilities the planner filters
on, prices a query (:meth:`Backend.estimate_cost`, in abstract work
units), and runs it against an :class:`~repro.core.context.ExecutionContext`
(:meth:`Backend.run`).  All per-query parameters travel in one
:class:`ExecutionPlan` so the executor, planner, and backends share a
single vocabulary — no positional-argument drift between layers.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ...raster import Viewport
from ...table import PointTable
from ..query import SpatialAggregation
from ..regions import RegionSet
from ..result import AggregationResult


@dataclass(frozen=True)
class BackendCapabilities:
    """What the planner may assume about a backend."""

    #: Values are exact (no approximation error).
    exact: bool = False
    #: Returns hard per-region [lower, upper] bounds.
    bounded: bool = False
    #: Consumes a planned canvas (resolution/epsilon are meaningful).
    uses_canvas: bool = False
    #: Can render canvases beyond the texture cap (tiling).
    unbounded_canvas: bool = False
    #: Answers arbitrary, never-before-seen region sets.  Pre-aggregated
    #: backends (the cube) only answer what they materialized.
    adhoc_regions: bool = True
    #: Has a multi-process execution path the planner may engage (see
    #: :mod:`repro.core.parallel`); the serial/parallel decision is
    #: recorded in ``plan.decision["parallel"]``.
    parallelizable: bool = False


@dataclass
class ExecutionPlan:
    """One query's full parameter set as it flows through the layers."""

    table: PointTable
    regions: RegionSet
    query: SpatialAggregation
    method: str = "auto"
    resolution: int | None = None
    epsilon: float | None = None
    exact: bool = False
    viewport: Viewport | None = None
    #: Soft latency budget (milliseconds) for deadline-aware planning:
    #: when the cost model predicts a miss, the planner degrades the
    #: plan (exact -> bounded, then a coarser canvas) and records every
    #: step in ``decision["degraded"]``.  ``None`` disables degradation.
    deadline_ms: float | None = None
    #: Cooperative cancellation token (``threading.Event``-like: only
    #: ``is_set()`` is called).  Checked before dispatch and between
    #: tiles of the progressive tiled path; a set token raises
    #: :class:`~repro.errors.QueryCancelled`.
    cancel: object | None = None
    #: Filled by the planner (or the executor for explicit methods):
    #: ``{"inputs": ..., "decision": ..., "parallel": ..., "degraded":
    #: ...}`` — the normalized ``stats["plan"]`` payload.
    decision: dict = field(default_factory=dict)


class Backend(abc.ABC):
    """One registered spatial-aggregation strategy."""

    #: Registry key, e.g. ``"bounded"``; also the CLI ``--method`` value.
    name: str = ""
    capabilities: BackendCapabilities = BackendCapabilities()

    @abc.abstractmethod
    def estimate_cost(self, table: PointTable, regions: RegionSet,
                      plan: ExecutionPlan, ctx=None) -> float:
        """Predicted work units for this plan (lower is cheaper).

        ``ctx`` — when provided — lets the estimate credit artifacts
        already in the unified cache (prebuilt indexes, fragment
        tables); ``None`` prices a cold run.
        """

    @abc.abstractmethod
    def run(self, ctx, plan: ExecutionPlan) -> AggregationResult:
        """Execute the plan against the shared context."""

    def __repr__(self) -> str:
        return f"<backend {self.name!r}>"
