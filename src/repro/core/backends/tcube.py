"""The ``tcube-raster`` backend: timeline brushing as a cube lookup.

Adapts :mod:`repro.core.tcube` to the :class:`Backend` protocol.  The
planner prices it at O(pixels + active pixels) — but *only* when a
cached cube can already answer the query (cost is infinite otherwise):
``method="auto"`` never pays a cube build speculatively, mirroring the
``cube`` backend's contract.  Running it explicitly (or via the
session's brush gate) does pay the one-time parallel build, which then
amortizes across every subsequent brush step.
"""

from __future__ import annotations

import time

from ...errors import QueryError
from ..aggregates import COUNT
from ..tcube import (
    MAX_TCUBE_SLICES,
    TCUBE_AGGREGATES,
    build_temporal_canvas_cube,
    find_answering_cube,
    infer_bucket_seconds,
    split_time_filter,
)
from .base import Backend, BackendCapabilities
from .raster import _fragment_cost, planned_pixels
from .registry import register_backend


@register_backend
class TemporalCanvasCubeBackend(Backend):
    """Prefix-summed time-sliced canvases behind the backend protocol."""

    name = "tcube-raster"
    capabilities = BackendCapabilities(exact=False, bounded=True,
                                       uses_canvas=True, parallelizable=True)

    def estimate_cost(self, table, regions, plan, ctx=None) -> float:
        if ctx is None:
            return float("inf")
        viewport = plan.viewport
        if viewport is None:
            try:
                viewport = ctx.plan_viewport(regions, plan.resolution,
                                             plan.epsilon)
            except Exception:
                return float("inf")
        cube = find_answering_cube(ctx, table, plan.query, viewport)
        if cube is None:
            # No materialized cube answers: auto-planning never pays
            # the build, so this candidate prices itself out.
            return float("inf")
        pixels = planned_pixels(regions, plan, ctx)
        # Two-slice difference over the active pixels, one canvas-sized
        # zero-fill, plus the (usually cached) polygon pass.
        return (0.05 * pixels + float(cube.num_active_pixels)
                + _fragment_cost(regions, plan, ctx, pixels))

    def run(self, ctx, plan):
        query = plan.query
        if query.agg not in TCUBE_AGGREGATES:
            raise QueryError(
                f"tcube-raster answers {TCUBE_AGGREGATES}, not "
                f"{query.agg!r}")
        tr, residual = split_time_filter(query)
        if tr is None:
            raise QueryError(
                "tcube-raster needs exactly one TimeRange filter "
                "(the brush predicate the cube pre-aggregates)")
        viewport = plan.viewport or ctx.plan_viewport(
            plan.regions, plan.resolution, plan.epsilon)
        fragments = ctx.fragments_for(plan.regions, viewport)

        built = False
        build_s = 0.0
        cube = find_answering_cube(ctx, plan.table, query, viewport)
        if cube is not None:
            # Re-fetch through the cache so the hit counts and the
            # entry is LRU-touched.
            cube = ctx.tcube_for(plan.table, cube.spec, lambda: cube)
        else:
            value_column = (query.value_column
                            if query.agg != COUNT else None)
            tvals = plan.table.column(tr.column).values
            if len(tvals):
                bucket = infer_bucket_seconds(
                    tr.start, tr.end, int(tvals.min()), int(tvals.max()))
            else:
                bucket = max(1, int(tr.end) - int(tr.start))
            if bucket is None:
                raise QueryError(
                    f"no bucket width aligns with brush "
                    f"[{tr.start}, {tr.end}) within {MAX_TCUBE_SLICES} "
                    f"slices; re-scatter instead")
            spec = (viewport, tr.column, int(bucket), value_column,
                    residual)
            t0 = time.perf_counter()

            def build():
                nonlocal built
                built = True
                return build_temporal_canvas_cube(
                    plan.table, viewport, tr.column, bucket,
                    value_column=value_column, residual_filters=residual,
                    config=ctx.parallel)

            cube = ctx.tcube_for(plan.table, spec, build)
            if built:
                build_s = time.perf_counter() - t0

        result = cube.answer(plan.regions, fragments, query,
                             viewport=viewport)
        result.stats["tcube"].update({
            "built": built,
            "hit": not built,
            "build_s": build_s,
            "build": dict(cube.stats),
        })
        return result
