"""Pre-aggregation (data cube) backend.

The cube trades build time for O(regions) answers: it materializes
aggregates over a fixed (region, time bucket, category) lattice, so it
can only answer queries that align with what it materialized.  The
adapter infers the materialization from the query itself — measure
column, the time brush's bucket alignment, the categorical columns its
filters touch — and caches the built cube in the unified cache.

The planner will therefore *never pick* ``cube`` for an ad-hoc region
set: building a cube costs an exact point->region assignment (naive-join
money), so ``auto`` only routes here when a previously materialized cube
for this exact (table, region set) pair can already answer the query.
Request ``method="cube"`` explicitly to pay the build.
"""

from __future__ import annotations

import math

from ...table import CATEGORICAL, Comparison, IsIn, TimeRange
from ..aggregates import AVG, SUM
from .base import Backend, BackendCapabilities, ExecutionPlan
from .registry import register_backend

#: Most time buckets the adapter will materialize before dropping the
#: time dimension (an unaligned brush then raises CubeError, the honest
#: pre-aggregation failure mode).
MAX_TIME_BUCKETS = 4096


def _build_spec(table, query) -> tuple:
    """Materialization choices the query implies: (value column,
    time column, bucket seconds, category columns)."""
    value_column = (query.value_column
                    if query.agg in (SUM, AVG) else None)
    time_column = None
    bucket_s = 0
    categories: list[str] = []
    for expr in query.filters:
        if isinstance(expr, TimeRange) and time_column is None:
            bucket = math.gcd(int(expr.start), int(expr.end))
            if bucket <= 0:
                continue
            tvals = (table.column(expr.column).values
                     if table.has_column(expr.column) else None)
            if tvals is None or len(tvals) == 0:
                continue
            span = int(tvals.max()) - int(tvals.min()) + 1
            if math.ceil(span / bucket) <= MAX_TIME_BUCKETS:
                time_column = expr.column
                bucket_s = bucket
        elif isinstance(expr, (Comparison, IsIn)):
            if (table.has_column(expr.column)
                    and table.column(expr.column).kind == CATEGORICAL):
                categories.append(expr.column)
    return (value_column, time_column, bucket_s,
            tuple(sorted(set(categories))))


@register_backend
class CubeBackend(Backend):
    """Traditional pre-aggregation: instant for anticipated queries,
    unable to answer anything else."""

    name = "cube"
    capabilities = BackendCapabilities(exact=True, adhoc_regions=False)

    def estimate_cost(self, table, regions, plan, ctx=None) -> float:
        if ctx is not None:
            for cube in ctx.cached_cubes(table, regions):
                if cube.can_answer(regions, plan.query):
                    return float(len(regions))
        # Cold build = exact assignment over every point: naive-join money.
        return float(len(table) * max(1, regions.total_vertices)
                     + len(regions))

    def run(self, ctx, plan: ExecutionPlan):
        from ...baselines.cube import DataCube  # lazy: avoids import cycle

        table, regions, query = plan.table, plan.regions, plan.query
        # A cube materialized earlier may already cover this query.
        for cube in ctx.cached_cubes(table, regions):
            if cube.can_answer(regions, query):
                return cube.answer(regions, query)
        value_column, time_column, bucket_s, categories = _build_spec(
            table, query)
        cube = ctx.cube_for(
            table, regions,
            (value_column, time_column, bucket_s, categories),
            lambda: DataCube(table, regions,
                             time_column=time_column,
                             time_bucket_s=bucket_s or 86_400,
                             category_columns=categories,
                             value_column=value_column))
        return cube.answer(regions, query)
