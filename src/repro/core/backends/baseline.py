"""Exact baseline backends: naive scan and the three index joins.

Cost model: an index join pays an index build (waived when the unified
cache already holds one for this table), a candidate-refinement term
scaling with points x average polygon vertices, and a per-region probe
overhead.  The naive scan pays points x *total* vertices — the anchor
everything else is priced against.
"""

from __future__ import annotations

# Submodule imports (not repro.baselines) to stay cycle-free.
from ...baselines.grid_join import grid_index_join
from ...baselines.naive import naive_join
from ...baselines.quadtree_join import quadtree_index_join
from ...baselines.rtree_join import rtree_index_join
from ..parallel import decision_for, parallel_index_join
from .base import Backend, BackendCapabilities, ExecutionPlan
from .registry import register_backend

#: Fraction of a region's bbox candidates surviving refinement tests.
_REFINE_FACTOR = 0.5
#: Fixed probe overhead per region (index descent, bbox query).
_PER_REGION = 50.0


def _index_cost(table, regions, ctx, kind: str, build_factor: float
                ) -> float:
    avg_vertices = regions.total_vertices / max(1, len(regions))
    build = 0.0
    if ctx is None or not ctx.has_index(kind, table):
        build = build_factor * len(table)
    return (build + _REFINE_FACTOR * len(table) * avg_vertices
            + _PER_REGION * len(regions))


@register_backend
class NaiveBackend(Backend):
    """Brute-force exact join — ground truth, and the cheapest plan for
    genuinely tiny inputs where building anything would dominate."""

    name = "naive"
    capabilities = BackendCapabilities(exact=True)

    def estimate_cost(self, table, regions, plan, ctx=None) -> float:
        return float(len(table) * max(1, regions.total_vertices))

    def run(self, ctx, plan: ExecutionPlan):
        return naive_join(plan.table, plan.regions, plan.query)


@register_backend
class GridIndexBackend(Backend):
    """Uniform-grid index join (the paper's index-based baseline)."""

    name = "grid"
    capabilities = BackendCapabilities(exact=True, parallelizable=True)

    def estimate_cost(self, table, regions, plan, ctx=None) -> float:
        return _index_cost(table, regions, ctx, "grid", build_factor=2.0)

    def run(self, ctx, plan: ExecutionPlan):
        index = ctx.grid_index(plan.table)
        decision = decision_for(ctx, plan)
        if decision["use"] and len(plan.regions) > 1:
            return parallel_index_join(plan.table, plan.regions, plan.query,
                                       index, ctx.parallel,
                                       method="grid-index-join")
        result = grid_index_join(plan.table, plan.regions, plan.query,
                                 index=index)
        result.stats["parallel"] = {"mode": "serial",
                                    "reason": decision["reason"]}
        return result


@register_backend
class RTreeIndexBackend(Backend):
    """Point R-tree index join."""

    name = "rtree"
    capabilities = BackendCapabilities(exact=True, parallelizable=True)

    def estimate_cost(self, table, regions, plan, ctx=None) -> float:
        return 1.2 * _index_cost(table, regions, ctx, "rtree",
                                 build_factor=2.5)

    def run(self, ctx, plan: ExecutionPlan):
        index = ctx.rtree_index(plan.table)
        decision = decision_for(ctx, plan)
        if decision["use"] and len(plan.regions) > 1:
            return parallel_index_join(plan.table, plan.regions, plan.query,
                                       index, ctx.parallel,
                                       method="rtree-index-join")
        result = rtree_index_join(plan.table, plan.regions, plan.query,
                                  index=index)
        result.stats["parallel"] = {"mode": "serial",
                                    "reason": decision["reason"]}
        return result


@register_backend
class QuadTreeIndexBackend(Backend):
    """PR-quadtree index join."""

    name = "quadtree"
    capabilities = BackendCapabilities(exact=True)

    def estimate_cost(self, table, regions, plan, ctx=None) -> float:
        return 1.3 * _index_cost(table, regions, ctx, "quadtree",
                                 build_factor=2.5)

    def run(self, ctx, plan: ExecutionPlan):
        return quadtree_index_join(plan.table, plan.regions, plan.query,
                                   index=ctx.quadtree_index(plan.table))
