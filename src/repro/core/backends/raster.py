"""Raster-join backends: bounded, accurate, tiled.

Cost model (abstract work units, shared vocabulary with the baselines):
a raster join pays one pass over the points, a canvas-sized join pass,
and — unless the unified cache already holds the fragment table for
this (region set, viewport) — a polygon rasterization that scales with
canvas pixels and total vertex count.  The accurate variant adds exact
point-in-polygon tests for boundary-pixel points, priced proportionally
to points x average vertices.
"""

from __future__ import annotations

import math

from ..accurate import accurate_raster_join
from ..bounded import bounded_raster_join
from ..bounds import resolution_for_epsilon
from ..parallel import (
    decision_for,
    parallel_accurate_raster_join,
    parallel_bounded_raster_join,
)
from ..pyramid import GridViewport, assembled_bounded_join, block_coverage
from ..tiling import tiled_bounded_raster_join
from .base import Backend, BackendCapabilities, ExecutionPlan
from .registry import register_backend


def _point_units(table, ctx) -> float:
    """Effective cost of a linear point pass, parallel-aware: above the
    serial threshold the planner sees points/workers + fork overhead."""
    if ctx is None:
        return float(len(table))
    return ctx.parallel.point_cost(len(table))


def planned_resolution(regions, plan: ExecutionPlan, ctx=None,
                       capped: bool = True) -> int:
    """The canvas resolution this plan implies (without building it).

    ``capped=False`` prices what the query *wants* even beyond the
    texture cap — how the planner detects that only tiling can honor a
    tight epsilon.
    """
    if plan.viewport is not None:
        return max(plan.viewport.width, plan.viewport.height)
    default = ctx.default_resolution if ctx is not None else 512
    cap = ctx.max_canvas_resolution if ctx is not None else 4096
    if plan.epsilon is not None:
        try:
            return resolution_for_epsilon(
                regions.bbox, plan.epsilon,
                max_resolution=cap if capped else 1 << 24)
        except Exception:
            return cap + 1 if capped else 1 << 24
    return int(plan.resolution or default)


def planned_pixels(regions, plan: ExecutionPlan, ctx=None) -> int:
    """Approximate canvas pixel count (square-canvas upper bound)."""
    res = planned_resolution(regions, plan, ctx, capped=False)
    return res * res


def _fragment_cost(regions, plan: ExecutionPlan, ctx, pixels: int) -> float:
    """Polygon-pass cost; zero when the fragment table is already cached."""
    if ctx is not None and plan.viewport is not None and \
            ctx.has_fragments(regions, plan.viewport):
        return 0.0
    if ctx is not None and plan.viewport is None:
        try:
            viewport = ctx.plan_viewport(regions, plan.resolution,
                                         plan.epsilon)
        except Exception:
            viewport = None
        if viewport is not None and ctx.has_fragments(regions, viewport):
            return 0.0
    return 0.25 * pixels + 8.0 * regions.total_vertices


@register_backend
class BoundedRasterBackend(Backend):
    """Pure raster evaluation with hard error bounds — the paper's fast
    path and the planner's default for interactive gestures."""

    name = "bounded"
    capabilities = BackendCapabilities(exact=False, bounded=True,
                                       uses_canvas=True, parallelizable=True)

    def estimate_cost(self, table, regions, plan, ctx=None) -> float:
        pixels = planned_pixels(regions, plan, ctx)
        points = _point_units(table, ctx)
        if ctx is not None and isinstance(plan.viewport, GridViewport):
            # Pyramid assembly: cached blocks replace that fraction of
            # the point pass — how ``auto`` prices assembly vs.
            # re-scatter.
            coverage = block_coverage(ctx, table, plan.query, plan.viewport)
            points *= (1.0 - coverage)
        return (points + 0.05 * pixels
                + _fragment_cost(regions, plan, ctx, pixels))

    def run(self, ctx, plan):
        viewport = plan.viewport or ctx.plan_viewport(
            plan.regions, plan.resolution, plan.epsilon)
        if isinstance(viewport, GridViewport):
            # Grid-snapped viewports assemble from the block cache;
            # only the uncovered delta is scattered, so the parallel
            # point pass has nothing to shard.
            result = assembled_bounded_join(
                ctx, plan.table, plan.regions, plan.query, viewport,
                fragments=ctx.fragments_for(plan.regions, viewport))
            result.stats["parallel"] = {"mode": "serial",
                                        "reason": "pyramid assembly"}
            return result
        fragments = ctx.fragments_for(plan.regions, viewport)
        decision = decision_for(ctx, plan)
        if decision["use"]:
            return parallel_bounded_raster_join(
                plan.table, plan.regions, plan.query, viewport,
                fragments=fragments, config=ctx.parallel)
        result = bounded_raster_join(plan.table, plan.regions, plan.query,
                                     viewport, fragments=fragments)
        result.stats["parallel"] = {"mode": "serial",
                                    "reason": decision["reason"]}
        return result


@register_backend
class AccurateRasterBackend(Backend):
    """Hybrid raster + exact boundary tests: exact answers at raster
    speed once the polygon pass is cached."""

    name = "accurate"
    capabilities = BackendCapabilities(exact=True, uses_canvas=True,
                                       parallelizable=True)

    def estimate_cost(self, table, regions, plan, ctx=None) -> float:
        pixels = planned_pixels(regions, plan, ctx)
        avg_vertices = regions.total_vertices / max(1, len(regions))
        units = _point_units(table, ctx)
        # The exact-PIP term is discounted relative to the pre-interval
        # implementation (was 0.2): interval classification confines
        # PIP tests to points in genuinely PARTIAL cells, a small
        # fraction of the old boundary-bucket population.
        return (2.0 * units + 0.05 * pixels
                + _fragment_cost(regions, plan, ctx, pixels)
                + 0.08 * units * avg_vertices)

    def run(self, ctx, plan):
        viewport = plan.viewport or ctx.plan_viewport(
            plan.regions, plan.resolution, plan.epsilon)
        fragments = ctx.fragments_for(plan.regions, viewport)
        decision = decision_for(ctx, plan)
        if decision["use"]:
            return parallel_accurate_raster_join(
                plan.table, plan.regions, plan.query, viewport,
                fragments=fragments, config=ctx.parallel)
        result = accurate_raster_join(plan.table, plan.regions, plan.query,
                                      viewport, fragments=fragments)
        result.stats["parallel"] = {"mode": "serial",
                                    "reason": decision["reason"]}
        return result


@register_backend
class TiledRasterBackend(Backend):
    """Bounded raster join over a virtual canvas beyond the texture cap.

    Rebuilds per-tile fragments every run (nothing cacheable across
    gestures), so the planner only reaches for it when the requested
    precision cannot fit one canvas.
    """

    name = "tiled"
    capabilities = BackendCapabilities(exact=False, bounded=True,
                                       uses_canvas=True,
                                       unbounded_canvas=True,
                                       parallelizable=True)

    def estimate_cost(self, table, regions, plan, ctx=None) -> float:
        pixels = planned_pixels(regions, plan, ctx)
        return (3.0 * _point_units(table, ctx) + 0.1 * pixels
                + 8.0 * regions.total_vertices * max(
                    1.0, math.sqrt(pixels) / 1024.0))

    def run(self, ctx, plan):
        if isinstance(plan.viewport, GridViewport):
            # Under a grid-snapped viewport the cache blocks *are* the
            # tiles: assembly runs the same per-block pixel partition
            # the tiled join would, with the partials cached across
            # gestures instead of recomputed.
            result = assembled_bounded_join(
                ctx, plan.table, plan.regions, plan.query, plan.viewport,
                fragments=ctx.fragments_for(plan.regions, plan.viewport))
            result.stats["parallel"] = {"mode": "serial",
                                        "reason": "pyramid assembly"}
            return result
        resolution = plan.resolution
        if resolution is None and plan.epsilon is not None:
            resolution = planned_resolution(plan.regions, plan, ctx,
                                            capped=False)
        decision = decision_for(ctx, plan)
        result = tiled_bounded_raster_join(
            plan.table, plan.regions, plan.query,
            resolution=resolution or ctx.default_resolution,
            config=ctx.parallel if decision["use"] else None,
            cancel=plan.cancel)
        if not decision["use"]:
            result.stats["parallel"] = {"mode": "serial",
                                        "reason": decision["reason"]}
        return result
