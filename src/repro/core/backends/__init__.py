"""Backend registry: every execution strategy behind one interface.

Importing this package registers the nine built-in backends —
``bounded``, ``accurate``, ``tiled`` (raster family), ``grid``,
``rtree``, ``quadtree``, ``naive`` (exact baselines), ``cube`` and
``tcube-raster`` (pre-aggregation).  Third-party and test backends plug
in with the same
:func:`register_backend` decorator; the executor resolves every method
name through :func:`get_backend`, so there is no dispatch ladder to
extend.
"""

from .base import Backend, BackendCapabilities, ExecutionPlan
from .registry import (
    backend_names,
    get_backend,
    has_backend,
    register_backend,
    unregister_backend,
)

# Importing the adapter modules triggers their registration.
from . import raster as _raster  # noqa: F401,E402
from . import baseline as _baseline  # noqa: F401,E402
from . import cube as _cube  # noqa: F401,E402
from . import tcube as _tcube  # noqa: F401,E402

__all__ = [
    "Backend",
    "BackendCapabilities",
    "ExecutionPlan",
    "backend_names",
    "get_backend",
    "has_backend",
    "register_backend",
    "unregister_backend",
]
