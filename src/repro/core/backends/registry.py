"""The backend registry.

Backends self-register at import time with the :func:`register_backend`
decorator; the executor and planner resolve them by name — there is no
if/elif dispatch anywhere on the execution path.  Third-party and test
backends use the same decorator:

    from repro.core.backends import Backend, register_backend

    @register_backend
    class MyBackend(Backend):
        name = "mine"
        ...

Registration order is preserved and breaks cost ties in the planner.
"""

from __future__ import annotations

from ...errors import QueryError
from .base import Backend

_REGISTRY: dict[str, Backend] = {}


def register_backend(cls: type[Backend]) -> type[Backend]:
    """Class decorator: instantiate and register a backend by its name."""
    if not isinstance(cls, type) or not issubclass(cls, Backend):
        raise QueryError("register_backend expects a Backend subclass")
    backend = cls()
    if not backend.name:
        raise QueryError(f"backend {cls.__name__} declares no name")
    if backend.name in _REGISTRY:
        raise QueryError(f"backend {backend.name!r} already registered")
    _REGISTRY[backend.name] = backend
    return cls


def unregister_backend(name: str) -> None:
    """Remove a backend (tests and plugins only)."""
    _REGISTRY.pop(name, None)


def has_backend(name: str) -> bool:
    return name in _REGISTRY


def get_backend(name: str) -> Backend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise QueryError(
            f"unknown method {name!r}; expected 'auto' or one of "
            f"{backend_names()}") from None


def backend_names() -> tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)
