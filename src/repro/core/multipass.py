"""One-pass evaluation of several aggregates (MRT analog).

The GPU Raster Join computes several aggregates in a single render pass
by blending into *multiple render targets*.  The software equivalent:
for queries that share a filter list, the filter mask, the point->pixel
projection and the fragment join are computed once, and only the
per-aggregate canvases differ.  Urbane's views are the consumer — a map
view showing COUNT while the exploration view wants AVG(fare) and
SUM(severity) over the same brushed window.
"""

from __future__ import annotations

import time

import numpy as np

from ..raster import FragmentTable, Viewport, build_fragment_table, scatter_sum
from ..table import PointTable
from .aggregates import BOUNDABLE_AGGREGATES, COUNT
from .bounded import _join_covered, blend_canvases
from .bounds import boundary_mass_bounds
from .query import SpatialAggregation
from .regions import RegionSet
from .result import AggregationResult


def _filter_signature(query: SpatialAggregation):
    """Hashable identity of a query's filter list (dataclass equality)."""
    return query.filters


def bounded_raster_join_multi(
    table: PointTable,
    regions: RegionSet,
    queries: list[SpatialAggregation],
    viewport: Viewport,
    fragments: FragmentTable | None = None,
) -> list[AggregationResult]:
    """Evaluate several bounded raster joins, sharing render passes.

    Queries are grouped by identical filter lists; each group performs
    one filter evaluation and one point projection, then blends one
    canvas per needed (aggregate, value-column) pair.  Results come back
    aligned with ``queries``.
    """
    t0 = time.perf_counter()
    if fragments is None:
        fragments = build_fragment_table(list(regions.geometries), viewport)

    results: list[AggregationResult | None] = [None] * len(queries)
    groups: dict[tuple, list[int]] = {}
    for i, query in enumerate(queries):
        groups.setdefault(_filter_signature(query), []).append(i)

    for indices in groups.values():
        rep = queries[indices[0]]
        mask = rep.filter_mask(table)
        x = table.x[mask]
        y = table.y[mask]
        pixel_ids, valid = viewport.pixel_ids_of(x, y)
        pixel_ids = pixel_ids[valid]

        # One canvas set per distinct (aggregate-kind, value column).
        canvas_cache: dict[tuple, dict[str, np.ndarray]] = {}
        values_cache: dict[str | None, np.ndarray | None] = {}

        def _values_for(query: SpatialAggregation):
            column = query.value_column
            if column not in values_cache:
                vals = query.values_for(table)
                if vals is not None:
                    vals = vals[mask][valid]
                values_cache[column] = vals
            return values_cache[column]

        for i in indices:
            query = queries[i]
            key = (query.agg, query.value_column)
            if key not in canvas_cache:
                canvas_cache[key] = blend_canvases(
                    pixel_ids, _values_for(query), query.agg,
                    viewport.num_pixels)
            canvases = canvas_cache[key]
            estimate = _join_covered(fragments, canvases, query.agg)

            lower = upper = None
            if query.agg in BOUNDABLE_AGGREGATES:
                if query.agg == COUNT:
                    mass = canvases["count"]
                else:
                    mass_key = ("__mass__", query.value_column)
                    if mass_key not in canvas_cache:
                        canvas_cache[mass_key] = {
                            "mass": scatter_sum(
                                pixel_ids,
                                np.abs(_values_for(query)),
                                viewport.num_pixels)
                        }
                    mass = canvas_cache[mass_key]["mass"]
                lower, upper = boundary_mass_bounds(fragments, estimate,
                                                    mass)
            results[i] = AggregationResult(
                regions=regions,
                values=estimate,
                method="bounded-raster-join-multi",
                lower=lower,
                upper=upper,
                exact=False,
                stats={
                    "points_after_filter": int(mask.sum()),
                    "shared_group_size": len(indices),
                },
            )

    elapsed = time.perf_counter() - t0
    for result in results:
        result.stats["time_multi_total_s"] = elapsed
        result.stats["queries_in_pass"] = len(queries)
    return results  # type: ignore[return-value]
