"""Aggregate functions of the spatial aggregation query.

The query's ``AGG`` is one of COUNT / SUM / AVG / MIN / MAX.  Each
aggregate is described by how it is computed from blended canvases and
how partial results (raster interior pass + exact boundary pass, or
per-tile results) merge — the merge rules are what make the accurate
variant and the tiled executor compositional.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import QueryError

COUNT = "count"
SUM = "sum"
AVG = "avg"
MIN = "min"
MAX = "max"

SUPPORTED_AGGREGATES = (COUNT, SUM, AVG, MIN, MAX)

# Aggregates whose bounded-variant error can be bounded a posteriori from
# boundary-pixel mass (additive aggregates).
BOUNDABLE_AGGREGATES = (COUNT, SUM)


def validate_aggregate(agg: str, value_column: str | None) -> None:
    """Check the aggregate name / value-column combination."""
    if agg not in SUPPORTED_AGGREGATES:
        raise QueryError(
            f"unsupported aggregate {agg!r}; expected one of "
            f"{SUPPORTED_AGGREGATES}"
        )
    if agg == COUNT and value_column is not None:
        raise QueryError("COUNT takes no value column")
    if agg != COUNT and value_column is None:
        raise QueryError(f"{agg.upper()} needs a value column")


@dataclass
class PartialAggregate:
    """Mergeable per-region partial state.

    ``sums``/``counts`` serve COUNT, SUM and AVG; ``mins``/``maxs`` serve
    MIN and MAX.  Only the fields the aggregate needs are populated.
    """

    agg: str
    counts: np.ndarray | None = None
    sums: np.ndarray | None = None
    mins: np.ndarray | None = None
    maxs: np.ndarray | None = None

    @classmethod
    def empty(cls, agg: str, num_regions: int) -> "PartialAggregate":
        part = cls(agg=agg)
        if agg in (COUNT, AVG):
            part.counts = np.zeros(num_regions, dtype=np.float64)
        if agg in (SUM, AVG):
            part.sums = np.zeros(num_regions, dtype=np.float64)
        if agg == MIN:
            part.mins = np.full(num_regions, np.inf, dtype=np.float64)
        if agg == MAX:
            part.maxs = np.full(num_regions, -np.inf, dtype=np.float64)
        return part

    def merge(self, other: "PartialAggregate") -> "PartialAggregate":
        """In-place merge of another partial into this one."""
        if other.agg != self.agg:
            raise QueryError(
                f"cannot merge partials of {self.agg!r} and {other.agg!r}")
        if self.counts is not None:
            self.counts += other.counts
        if self.sums is not None:
            self.sums += other.sums
        if self.mins is not None:
            np.minimum(self.mins, other.mins, out=self.mins)
        if self.maxs is not None:
            np.maximum(self.maxs, other.maxs, out=self.maxs)
        return self

    def finalize(self) -> np.ndarray:
        """The per-region aggregate values.

        Empty regions yield 0 for COUNT/SUM and NaN for AVG/MIN/MAX
        (SQL's NULL analog).
        """
        if self.agg == COUNT:
            return self.counts.copy()
        if self.agg == SUM:
            return self.sums.copy()
        if self.agg == AVG:
            with np.errstate(divide="ignore", invalid="ignore"):
                out = self.sums / self.counts
            out[self.counts == 0] = np.nan
            return out
        if self.agg == MIN:
            out = self.mins.copy()
            out[~np.isfinite(out)] = np.nan
            return out
        out = self.maxs.copy()
        out[~np.isfinite(out)] = np.nan
        return out


def accumulate_exact(part: PartialAggregate, region_id: int,
                     values: np.ndarray | None, count: int) -> None:
    """Fold exactly-tested points of one region into a partial.

    ``values`` is the value column of the matching points (None for
    COUNT); ``count`` is how many matched.
    """
    if part.counts is not None:
        part.counts[region_id] += count
    if part.sums is not None and values is not None and len(values):
        part.sums[region_id] += float(values.sum())
    if part.mins is not None and values is not None and len(values):
        part.mins[region_id] = min(part.mins[region_id], float(values.min()))
    if part.maxs is not None and values is not None and len(values):
        part.maxs[region_id] = max(part.maxs[region_id], float(values.max()))
